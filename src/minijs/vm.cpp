#include "minijs/vm.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

namespace edgstr::minijs {

namespace {

/// Numeric coercion with the tree-walker's exact failure behaviour: a
/// non-number raises the same std::logic_error JsValue::as_number does.
double vm_number(const VmValue& v) {
  if (v.is_number()) return v.as_number();
  return v.to_js().as_number();
}

bool vm_is_string(const VmValue& v) { return v.is_box() && v.boxed().is_string(); }

/// Compound-assignment combiner, mirroring eval_assign's `combined`.
JsValue vm_combined(const JsValue& current, const VmValue& rhs, AssignOp op) {
  switch (op) {
    case AssignOp::kAssign:
      return rhs.to_js();
    case AssignOp::kAddAssign: {
      if (current.is_number() && rhs.is_number()) {
        return JsValue(current.as_number() + rhs.as_number());
      }
      JsValue r = rhs.to_js();
      if (current.is_string() || r.is_string()) {
        return JsValue(current.to_display() + r.to_display());
      }
      return JsValue(current.as_number() + r.as_number());
    }
    case AssignOp::kSubAssign: {
      const double a = current.as_number();
      return JsValue(a - vm_number(rhs));
    }
  }
  return rhs.to_js();
}

}  // namespace

Vm::Vm(Interpreter& interp) : interp_(interp) {
  stack_.reserve(256);
  scopes_.reserve(64);
}

void Vm::run_toplevel() {
  const Chunk& chunk = *interp_.compiled_.toplevel;
  if (interp_.hooks_) {
    run<true>(chunk, interp_.globals_);
  } else {
    run<false>(chunk, interp_.globals_);
  }
}

template <bool WithHooks>
JsValue Vm::call_chunked(const std::shared_ptr<Closure>& closure, util::Symbol name,
                         std::vector<JsValue>& args) {
  return invoke_chunked<WithHooks>(closure, name, args).to_js();
}

template <bool WithHooks>
VmValue Vm::invoke_chunked(const std::shared_ptr<Closure>& closure, util::Symbol name,
                           std::vector<JsValue>& args) {
  interp_.tick();
  if (interp_.call_depth_ >= interp_.config_.max_call_depth) {
    throw JsError("maximum call depth exceeded (" +
                  std::to_string(interp_.config_.max_call_depth) + ") calling '" +
                  util::symbol_name(name) + "'");
  }
  ++interp_.call_depth_;
  struct DepthGuard {
    int* depth;
    ~DepthGuard() { --*depth; }
  } depth_guard{&interp_.call_depth_};

  auto frame = interp_.make_frame(closure->scope, closure->env);
  const std::vector<int>& param_slots = closure->scope->param_slots;
  for (std::size_t i = 0; i < param_slots.size(); ++i) {
    if (param_slots[i] >= 0) {
      frame->bind_slot(param_slots[i], i < args.size() ? args[i] : JsValue());
    }
  }
  VmValue result = run<WithHooks>(*closure->chunk, std::move(frame));
  if constexpr (WithHooks) {
    interp_.hooks_->on_invoke(interp_.current_stmt_, name, args, result.to_js());
  }
  return result;
}

template <bool WithHooks>
VmValue Vm::run(const Chunk& chunk, std::shared_ptr<Environment> env) {
  // Window the shared stacks and pin the hook-attribution statement id: on
  // every exit (return or unwinding exception) the caller sees its own
  // current_stmt_ again, exactly like the tree-walker's per-statement
  // restore guards.
  struct RunGuard {
    Vm& vm;
    std::size_t stack_base, scope_base, handler_base;
    int saved_stmt;
    ~RunGuard() {
      vm.stack_.resize(stack_base);
      vm.scopes_.resize(scope_base);
      vm.handlers_.resize(handler_base);
      vm.interp_.current_stmt_ = saved_stmt;
    }
  } guard{*this, stack_.size(), scopes_.size(), handlers_.size(), interp_.current_stmt_};
  scopes_.push_back(std::move(env));

  // Step accounting stays frame-local: ticks accumulate in a register and
  // flush to the interpreter's counter when this frame unwinds (normally
  // or via JsError), so the per-op cost is an increment and a compare.
  // Cumulative totals stay exact on every exit path; the runaway-loop
  // limit is enforced against this frame's remaining allowance.
  struct TickGuard {
    Interpreter& interp;
    std::uint64_t ticks = 0;
    ~TickGuard() { interp.steps_ += ticks; }
  } tg{interp_};
  const std::uint64_t tick_budget =
      interp_.config_.max_steps - std::min(interp_.steps_, interp_.config_.max_steps);
  const auto tick = [&]() {
    if (++tg.ticks > tick_budget) {
      throw JsError("step limit exceeded (possible infinite loop)");
    }
  };

  const std::uint8_t* code = chunk.code.data();
  std::size_t pc = 0;
  const auto rd_u8 = [&]() { return code[pc++]; };
  const auto rd_u16 = [&]() {
    std::uint16_t v;
    std::memcpy(&v, code + pc, 2);
    pc += 2;
    return v;
  };
  const auto rd_u32 = [&]() {
    std::uint32_t v;
    std::memcpy(&v, code + pc, 4);
    pc += 4;
    return v;
  };

  const auto compare = [&](auto cmp) {
    VmValue r = pop();
    VmValue l = pop();
    if (l.is_number() && r.is_number()) {
      push(VmValue::boolean(cmp(l.as_number(), r.as_number())));
      return;
    }
    JsValue lj = l.to_js();
    JsValue rj = r.to_js();
    if (lj.is_string() && rj.is_string()) {
      push(VmValue::boolean(cmp(lj.as_string(), rj.as_string())));
    } else {
      push(VmValue::boolean(cmp(lj.as_number(), rj.as_number())));
    }
  };
  const auto equal = [&]() {
    VmValue r = pop();
    VmValue l = pop();
    if (l.is_number() || r.is_number()) {
      return l.is_number() && r.is_number() && l.as_number() == r.as_number();
    }
    return l.to_js().equals(r.to_js());
  };

  // Shared property paths. The receiver is read in place (no value-stack
  // round trip), so the fused ident.member ops and the generic stack forms
  // behave identically.
  const auto member_get = [&](const JsValue& obj, util::Symbol sym, std::uint16_t ic) {
    if (obj.is_object()) {
      JsObject& o = *obj.as_object();
      PropCache& cache = chunk.prop_caches[ic];
      if (cache.index != kNoCacheEntry && o.sym_at(cache.index, sym)) {
        ++ic_hits_;
        push(VmValue::from_js(o.value_at(cache.index)));
        return;
      }
      ++ic_misses_;
      const int idx = o.find_index(sym);
      if (idx >= 0) {
        cache.index = static_cast<std::uint32_t>(idx);
        push(VmValue::from_js(o.value_at(static_cast<std::size_t>(idx))));
      } else {
        push(VmValue::null());
      }
      return;
    }
    if (obj.is_null()) {
      throw JsError("cannot read property '" + util::symbol_name(sym) + "' of null");
    }
    const std::string& text = util::symbol_name(sym);
    if (obj.is_array()) {
      push(text == "length" ? VmValue::number(static_cast<double>(obj.as_array()->size()))
                            : VmValue::null());
      return;
    }
    if (obj.is_string()) {
      push(text == "length" ? VmValue::number(static_cast<double>(obj.as_string().size()))
                            : VmValue::null());
      return;
    }
    if (obj.is_blob()) {
      if (text == "size") {
        push(VmValue::number(static_cast<double>(obj.as_blob().size)));
      } else if (text == "fingerprint") {
        push(VmValue::number(static_cast<double>(obj.as_blob().fingerprint)));
      } else {
        push(VmValue::null());
      }
      return;
    }
    push(VmValue::null());  // numbers / booleans / closures / natives
  };
  // Number-store fast path. The overwhelming majority of stores (loop
  // counters, accumulators, tallies) write a number over a number; for
  // those the write is a single in-place double, with no JsValue temp and
  // no variant destroy/reconstruct. Anything else falls back to the
  // generic vm_combined path, which preserves the tree-walker's coercions.
  const auto store_number = [](JsValue& binding, const VmValue& rhs, AssignOp aop,
                               double& out) {
    if (!rhs.is_number()) return false;
    double num = rhs.as_number();
    if (aop != AssignOp::kAssign) {
      if (!binding.is_number()) return false;
      num = aop == AssignOp::kAddAssign ? binding.as_number() + num
                                        : binding.as_number() - num;
    }
    if (!binding.set_number(num)) binding = JsValue(num);
    out = num;
    return true;
  };

  const auto member_set = [&](const JsValue& obj, util::Symbol sym, util::Symbol root,
                              std::uint16_t ic, AssignOp aop, VmValue& rhs, bool keep) {
    if (!obj.is_object()) throw JsError("cannot set property on non-object");
    JsObject& o = *obj.as_object();
    PropCache& cache = chunk.prop_caches[ic];
    JsValue* entry = nullptr;
    if (cache.index != kNoCacheEntry && o.sym_at(cache.index, sym)) {
      ++ic_hits_;
      entry = &o.value_at(cache.index);
    } else {
      ++ic_misses_;
      const int idx = o.find_index(sym);
      if (idx >= 0) {
        cache.index = static_cast<std::uint32_t>(idx);
        entry = &o.value_at(static_cast<std::size_t>(idx));
      }
    }
    if (entry) {
      double num;
      if (store_number(*entry, rhs, aop, num)) {
        if constexpr (WithHooks) {
          if (root != util::kNoSymbol) {
            interp_.hooks_->on_write(interp_.current_stmt_, root, obj);
          }
        }
        if (keep) push(VmValue::number(num));
        return;
      }
    }
    JsValue value;
    if (entry) {
      value = vm_combined(*entry, rhs, aop);
      *entry = value;
    } else {
      value = vm_combined(JsValue(), rhs, aop);
      o.set(sym, value);
    }
    if constexpr (WithHooks) {
      if (root != util::kNoSymbol) {
        interp_.hooks_->on_write(interp_.current_stmt_, root, obj);
      }
    }
    if (keep) push(VmValue::from_js(std::move(value)));
  };

  // Walks the property hops of a fused member chain. Intermediate hops
  // keep a reference into the current object (no boxing, no stack
  // traffic). One tick per hop — the tree walker ticks every member node.
  // Returns the final member by reference when the last receiver is a
  // plain object and the property exists (the hot case, nothing pushed);
  // otherwise routes the last hop through member_get, which pushes, and
  // returns nullptr. Callers push or consume the reference in place.
  const auto walk_chain = [&](const JsValue* cur, std::uint8_t hops) -> const JsValue* {
    static const JsValue null_value;
    JsValue tmp;
    for (std::uint8_t h = 0; h + 1 < hops; ++h) {
      tick();
      const auto sym = static_cast<util::Symbol>(rd_u32());
      const std::uint16_t ic = rd_u16();
      if (cur->is_object()) {
        JsObject& o = *cur->as_object();
        PropCache& cache = chunk.prop_caches[ic];
        if (cache.index != kNoCacheEntry && o.sym_at(cache.index, sym)) {
          ++ic_hits_;
          cur = &o.value_at(cache.index);
          continue;
        }
        ++ic_misses_;
        const int idx = o.find_index(sym);
        if (idx >= 0) {
          cache.index = static_cast<std::uint32_t>(idx);
          cur = &o.value_at(static_cast<std::size_t>(idx));
        } else {
          cur = &null_value;  // missing property: the next hop throws on null
        }
        continue;
      }
      // Arrays / strings / blobs / null: reuse the generic single-hop
      // path and re-anchor on its result.
      member_get(*cur, sym, ic);
      tmp = pop().to_js();
      cur = &tmp;
    }
    tick();
    const auto sym = static_cast<util::Symbol>(rd_u32());
    const std::uint16_t ic = rd_u16();
    if (cur->is_object()) {
      JsObject& o = *cur->as_object();
      PropCache& cache = chunk.prop_caches[ic];
      if (cache.index != kNoCacheEntry && o.sym_at(cache.index, sym)) {
        ++ic_hits_;
        return &o.value_at(cache.index);
      }
      ++ic_misses_;
      const int idx = o.find_index(sym);
      if (idx >= 0) {
        cache.index = static_cast<std::uint32_t>(idx);
        return &o.value_at(static_cast<std::size_t>(idx));
      }
      push(VmValue::null());
      return nullptr;
    }
    member_get(*cur, sym, ic);
    return nullptr;
  };

  // Decode + execute a fused member chain rooted at a local slot / a
  // global binding: resolves the receiver by reference (read counters and
  // hook exactly as kLoadSlot / kLoadGlobal), then walks the hops.
  // Forwards walk_chain's by-reference result.
  const auto member_chain_slot = [&]() -> const JsValue* {
    const std::uint8_t depth = rd_u8();
    const std::uint16_t slot = rd_u16();
    const auto obj_sym = static_cast<util::Symbol>(rd_u32());
    const std::uint8_t hops = rd_u8();
    Environment* frame = scopes_.back().get();
    for (int d = 0; d < depth; ++d) frame = frame->parent();
    const JsValue* obj;
    if (frame->slot_bound(slot)) {
      ++interp_.slot_reads_;
      obj = &frame->slot(slot);
    } else {
      ++interp_.named_reads_;
      obj = scopes_.back()->find(obj_sym);
      if (!obj) throw JsError("undefined variable: " + util::symbol_name(obj_sym));
    }
    if constexpr (WithHooks) {
      interp_.hooks_->on_read(interp_.current_stmt_, obj_sym, *obj);
    }
    return walk_chain(obj, hops);
  };
  const auto member_chain_global = [&]() -> const JsValue* {
    const auto obj_sym = static_cast<util::Symbol>(rd_u32());
    GlobalCache& gcache = chunk.global_caches[rd_u16()];
    const std::uint8_t hops = rd_u8();
    Environment* const globals = interp_.globals_.get();
    JsValue* obj;
    if (gcache.env == globals && gcache.globals_version == globals->version() &&
        gcache.builtins_version == interp_.builtins_->version()) {
      ++ic_hits_;
      obj = gcache.binding;
    } else {
      ++ic_misses_;
      obj = globals->find_local(obj_sym);
      if (!obj) obj = interp_.builtins_->find_local(obj_sym);
      if (!obj) throw JsError("undefined variable: " + util::symbol_name(obj_sym));
      gcache.env = globals;
      gcache.globals_version = globals->version();
      gcache.builtins_version = interp_.builtins_->version();
      gcache.binding = obj;
    }
    ++interp_.slot_reads_;
    if constexpr (WithHooks) {
      interp_.hooks_->on_read(interp_.current_stmt_, obj_sym, *obj);
    }
    return walk_chain(obj, hops);
  };

  // Addition with the tree-walker's coercions: number fast path, string
  // concatenation via display strings, as_number failure otherwise.
  const auto add_values = [&]() {
    VmValue r = pop();
    VmValue l = pop();
    if (l.is_number() && r.is_number()) {
      push(VmValue::number(l.as_number() + r.as_number()));
      return;
    }
    JsValue lj = l.to_js();
    JsValue rj = r.to_js();
    if (lj.is_string() || rj.is_string()) {
      push(VmValue::box(JsValue(lj.to_display() + rj.to_display())));
    } else {
      push(VmValue::number(lj.as_number() + rj.as_number()));
    }
  };
  // The kAddMember* tail: fold the by-reference member into the pending
  // lhs in place when both are numbers; otherwise materialize and reuse
  // add_values (walk_chain has already pushed when ref is null).
  const auto add_member_ref = [&](const JsValue* ref) {
    if (ref) {
      VmValue& l = stack_.back();
      if (l.is_number() && ref->is_number()) {
        l = VmValue::number(l.as_number() + ref->as_number());
        return;
      }
      push(VmValue::from_js(*ref));
    }
    add_values();
  };

  for (;;) {
    try {
      for (;;) {
        switch (static_cast<Op>(code[pc++])) {
          case Op::kConst:
            tick();
            push(VmValue::from_js(chunk.constants[rd_u16()]));
            break;
          case Op::kNull:
            push(VmValue::null());
            break;
          case Op::kTrue:
            tick();
            push(VmValue::boolean(true));
            break;
          case Op::kFalse:
            tick();
            push(VmValue::boolean(false));
            break;
          case Op::kPop:
            stack_.pop_back();
            break;

          case Op::kStmt:
            tick();
            interp_.current_stmt_ = static_cast<int>(rd_u32());
            break;
          case Op::kStmtId:
            interp_.current_stmt_ = static_cast<int>(rd_u32());
            break;
          case Op::kTick:
            tick();
            break;

          case Op::kLoadSlot: {
            tick();
            const std::uint8_t depth = rd_u8();
            const std::uint16_t slot = rd_u16();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            Environment* frame = scopes_.back().get();
            for (int d = 0; d < depth; ++d) frame = frame->parent();
            const JsValue* value;
            if (frame->slot_bound(slot)) {
              ++interp_.slot_reads_;
              value = &frame->slot(slot);
            } else {
              // Slot declared later in this scope and still unbound: the
              // binding (if any) is an outer one — dynamic walk.
              ++interp_.named_reads_;
              value = scopes_.back()->find(sym);
              if (!value) throw JsError("undefined variable: " + util::symbol_name(sym));
            }
            if constexpr (WithHooks) {
              interp_.hooks_->on_read(interp_.current_stmt_, sym, *value);
            }
            push(VmValue::from_js(*value));
            break;
          }
          case Op::kLoadGlobal: {
            tick();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            GlobalCache& cache = chunk.global_caches[rd_u16()];
            Environment* const globals = interp_.globals_.get();
            JsValue* value;
            if (cache.env == globals && cache.globals_version == globals->version() &&
                cache.builtins_version == interp_.builtins_->version()) {
              ++ic_hits_;
              value = cache.binding;
            } else {
              ++ic_misses_;
              value = globals->find_local(sym);
              if (!value) value = interp_.builtins_->find_local(sym);
              if (!value) throw JsError("undefined variable: " + util::symbol_name(sym));
              cache.env = globals;
              cache.globals_version = globals->version();
              cache.builtins_version = interp_.builtins_->version();
              cache.binding = value;
            }
            ++interp_.slot_reads_;
            if constexpr (WithHooks) {
              interp_.hooks_->on_read(interp_.current_stmt_, sym, *value);
            }
            push(VmValue::from_js(*value));
            break;
          }
          case Op::kLoadNamed: {
            tick();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            ++interp_.named_reads_;
            const JsValue* value = scopes_.back()->find(sym);
            if (!value) throw JsError("undefined variable: " + util::symbol_name(sym));
            if constexpr (WithHooks) {
              interp_.hooks_->on_read(interp_.current_stmt_, sym, *value);
            }
            push(VmValue::from_js(*value));
            break;
          }

          case Op::kStoreSlot: {
            tick();
            const std::uint8_t depth = rd_u8();
            const std::uint16_t slot = rd_u16();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            const std::uint8_t rawaop = rd_u8();
            const auto aop = static_cast<AssignOp>(rawaop & ~kAopDiscard);
            const bool keep = !(rawaop & kAopDiscard);
            VmValue rhs = pop();
            Environment* frame = scopes_.back().get();
            for (int d = 0; d < depth; ++d) frame = frame->parent();
            JsValue* binding;
            if (frame->slot_bound(slot)) {
              ++interp_.slot_writes_;
              binding = &frame->slot(slot);
            } else {
              ++interp_.named_writes_;
              binding = scopes_.back()->find_mutable(sym);
              if (!binding) {
                throw JsError("assignment to undeclared variable: " + util::symbol_name(sym));
              }
            }
            double num;
            if (store_number(*binding, rhs, aop, num)) {
              if constexpr (WithHooks) {
                interp_.hooks_->on_write(interp_.current_stmt_, sym, JsValue(num));
              }
              if (keep) push(VmValue::number(num));
              break;
            }
            JsValue value = vm_combined(*binding, rhs, aop);
            *binding = value;
            if constexpr (WithHooks) {
              interp_.hooks_->on_write(interp_.current_stmt_, sym, value);
            }
            if (keep) push(VmValue::from_js(std::move(value)));
            break;
          }
          case Op::kStoreGlobal: {
            tick();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            GlobalCache& cache = chunk.global_caches[rd_u16()];
            const std::uint8_t rawaop = rd_u8();
            const auto aop = static_cast<AssignOp>(rawaop & ~kAopDiscard);
            const bool keep = !(rawaop & kAopDiscard);
            VmValue rhs = pop();
            Environment* const globals = interp_.globals_.get();
            JsValue* binding;
            if (cache.env == globals && cache.globals_version == globals->version() &&
                cache.builtins_version == interp_.builtins_->version()) {
              ++ic_hits_;
              binding = cache.binding;
            } else {
              ++ic_misses_;
              binding = globals->find_local(sym);
              if (!binding) binding = interp_.builtins_->find_local(sym);
              if (!binding) {
                // Implicit global creation is rejected, same as the
                // tree-walker: plain assignment never declares.
                throw JsError("assignment to undeclared variable: " + util::symbol_name(sym));
              }
              cache.env = globals;
              cache.globals_version = globals->version();
              cache.builtins_version = interp_.builtins_->version();
              cache.binding = binding;
            }
            ++interp_.slot_writes_;
            double num;
            if (store_number(*binding, rhs, aop, num)) {
              if constexpr (WithHooks) {
                interp_.hooks_->on_write(interp_.current_stmt_, sym, JsValue(num));
              }
              if (keep) push(VmValue::number(num));
              break;
            }
            JsValue value = vm_combined(*binding, rhs, aop);
            *binding = value;
            if constexpr (WithHooks) {
              interp_.hooks_->on_write(interp_.current_stmt_, sym, value);
            }
            if (keep) push(VmValue::from_js(std::move(value)));
            break;
          }
          case Op::kStoreNamed: {
            tick();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            const std::uint8_t rawaop = rd_u8();
            const auto aop = static_cast<AssignOp>(rawaop & ~kAopDiscard);
            const bool keep = !(rawaop & kAopDiscard);
            VmValue rhs = pop();
            ++interp_.named_writes_;
            JsValue* binding = scopes_.back()->find_mutable(sym);
            if (!binding) {
              throw JsError("assignment to undeclared variable: " + util::symbol_name(sym));
            }
            double num;
            if (store_number(*binding, rhs, aop, num)) {
              if constexpr (WithHooks) {
                interp_.hooks_->on_write(interp_.current_stmt_, sym, JsValue(num));
              }
              if (keep) push(VmValue::number(num));
              break;
            }
            JsValue value = vm_combined(*binding, rhs, aop);
            *binding = value;
            if constexpr (WithHooks) {
              interp_.hooks_->on_write(interp_.current_stmt_, sym, value);
            }
            if (keep) push(VmValue::from_js(std::move(value)));
            break;
          }

          case Op::kGetMember: {
            tick();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            const std::uint16_t ic = rd_u16();
            VmValue objv = pop();
            if (objv.is_box()) {
              member_get(objv.boxed(), sym, ic);
              break;
            }
            if (objv.is_null()) {
              throw JsError("cannot read property '" + util::symbol_name(sym) + "' of null");
            }
            push(VmValue::null());  // numbers / booleans
            break;
          }
          case Op::kSetMember: {
            tick();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            const auto root = static_cast<util::Symbol>(rd_u32());
            const std::uint16_t ic = rd_u16();
            const std::uint8_t rawaop = rd_u8();
            const auto aop = static_cast<AssignOp>(rawaop & ~kAopDiscard);
            const bool keep = !(rawaop & kAopDiscard);
            VmValue objv = pop();
            VmValue rhs = pop();
            if (!objv.is_box()) throw JsError("cannot set property on non-object");
            member_set(objv.boxed(), sym, root, ic, aop, rhs, keep);
            break;
          }

          case Op::kGetMemberSlot: {
            // Fused ident.member chain: one step tick per expression node
            // (the root ident here, each member hop in walk_chain).
            tick();
            const JsValue* ref = member_chain_slot();
            if (ref) push(VmValue::from_js(*ref));
            break;
          }
          case Op::kGetMemberGlobal: {
            tick();
            const JsValue* ref = member_chain_global();
            if (ref) push(VmValue::from_js(*ref));
            break;
          }
          case Op::kAddMemberSlot:
            // Fused [get_member_chain][add]: the chain's ticks plus the
            // add node's own tick.
            tick();
            tick();
            add_member_ref(member_chain_slot());
            break;
          case Op::kAddMemberGlobal:
            tick();
            tick();
            add_member_ref(member_chain_global());
            break;
          case Op::kAddConst: {
            // Fused [const][add]: two expression nodes, two ticks.
            tick();
            tick();
            const JsValue& c = chunk.constants[rd_u16()];
            VmValue& l = stack_.back();
            if (l.is_number() && c.is_number()) {
              l = VmValue::number(l.as_number() + c.as_number());
              break;
            }
            push(VmValue::from_js(c));
            add_values();
            break;
          }
          case Op::kIncSlot: {
            // Statement-form `i = i + c` / `i += c` on a resolved local.
            // The plain form replays the ident read (counter + hook) and
            // ticks for ident, const, add, and assign; the compound form
            // ticks for const and assign only — exactly the unfused
            // sequences, minus the value-stack round trip (nothing is
            // pushed: the statement's kPop is folded away too).
            const std::uint8_t depth = rd_u8();
            const std::uint16_t slot = rd_u16();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            const JsValue& c = chunk.constants[rd_u16()];
            const auto aop = static_cast<AssignOp>(rd_u8());
            const bool plain = rd_u8() != 0;
            Environment* frame = scopes_.back().get();
            for (int d = 0; d < depth; ++d) frame = frame->parent();
            const bool bound = frame->slot_bound(slot);
            JsValue* binding =
                bound ? &frame->slot(slot) : scopes_.back()->find_mutable(sym);
            if (plain) {
              tick();  // the ident read
              if (bound) {
                ++interp_.slot_reads_;
              } else {
                ++interp_.named_reads_;
                if (!binding) {
                  throw JsError("undefined variable: " + util::symbol_name(sym));
                }
              }
              if constexpr (WithHooks) {
                interp_.hooks_->on_read(interp_.current_stmt_, sym, *binding);
              }
              tick();  // the constant
              tick();  // the add node
            } else {
              tick();  // the constant
            }
            tick();  // the assign
            if (bound) {
              ++interp_.slot_writes_;
            } else {
              ++interp_.named_writes_;
              if (!binding) {
                throw JsError("assignment to undeclared variable: " + util::symbol_name(sym));
              }
            }
            const VmValue rhs = VmValue::number(c.as_number());
            double num;
            if (store_number(*binding, rhs, aop, num)) {
              if constexpr (WithHooks) {
                interp_.hooks_->on_write(interp_.current_stmt_, sym, JsValue(num));
              }
              break;
            }
            JsValue value = vm_combined(*binding, rhs, aop);
            *binding = value;
            if constexpr (WithHooks) {
              interp_.hooks_->on_write(interp_.current_stmt_, sym, value);
            }
            break;
          }
          case Op::kJumpCmpSlots: {
            // Fused two-local comparison + conditional branch. Ticks,
            // read counters, and hooks land in the same order as the
            // unfused [load][load][cmp][jump_if_false] sequence; the
            // operands never touch the value stack.
            const std::uint8_t cmp = rd_u8();
            const auto read_slot = [&]() -> const JsValue* {
              tick();
              const std::uint8_t depth = rd_u8();
              const std::uint16_t slot = rd_u16();
              const auto sym = static_cast<util::Symbol>(rd_u32());
              Environment* frame = scopes_.back().get();
              for (int d = 0; d < depth; ++d) frame = frame->parent();
              const JsValue* value;
              if (frame->slot_bound(slot)) {
                ++interp_.slot_reads_;
                value = &frame->slot(slot);
              } else {
                ++interp_.named_reads_;
                value = scopes_.back()->find(sym);
                if (!value) throw JsError("undefined variable: " + util::symbol_name(sym));
              }
              if constexpr (WithHooks) {
                interp_.hooks_->on_read(interp_.current_stmt_, sym, *value);
              }
              return value;
            };
            const JsValue* a = read_slot();
            const JsValue* b = read_slot();
            const std::size_t target = rd_u32();
            tick();  // the comparison node
            bool res;
            if (cmp >= 4) {
              if (a->is_number() || b->is_number()) {
                res = a->is_number() && b->is_number() && a->as_number() == b->as_number();
              } else {
                res = a->equals(*b);
              }
              if (cmp == 5) res = !res;
            } else if (a->is_number() && b->is_number()) {
              const double x = a->as_number(), y = b->as_number();
              res = cmp == 0 ? x < y : cmp == 1 ? x <= y : cmp == 2 ? x > y : x >= y;
            } else if (a->is_string() && b->is_string()) {
              const std::string& x = a->as_string();
              const std::string& y = b->as_string();
              res = cmp == 0 ? x < y : cmp == 1 ? x <= y : cmp == 2 ? x > y : x >= y;
            } else {
              const double x = a->as_number(), y = b->as_number();
              res = cmp == 0 ? x < y : cmp == 1 ? x <= y : cmp == 2 ? x > y : x >= y;
            }
            if (!res) pc = target;
            break;
          }
          case Op::kSetMemberSlot: {
            tick();
            tick();
            const std::uint8_t depth = rd_u8();
            const std::uint16_t slot = rd_u16();
            const auto obj_sym = static_cast<util::Symbol>(rd_u32());
            const auto sym = static_cast<util::Symbol>(rd_u32());
            const std::uint16_t ic = rd_u16();
            const std::uint8_t rawaop = rd_u8();
            const auto aop = static_cast<AssignOp>(rawaop & ~kAopDiscard);
            const bool keep = !(rawaop & kAopDiscard);
            VmValue rhs = pop();
            Environment* frame = scopes_.back().get();
            for (int d = 0; d < depth; ++d) frame = frame->parent();
            const JsValue* obj;
            if (frame->slot_bound(slot)) {
              ++interp_.slot_reads_;
              obj = &frame->slot(slot);
            } else {
              ++interp_.named_reads_;
              obj = scopes_.back()->find(obj_sym);
              if (!obj) throw JsError("undefined variable: " + util::symbol_name(obj_sym));
            }
            if constexpr (WithHooks) {
              interp_.hooks_->on_read(interp_.current_stmt_, obj_sym, *obj);
            }
            member_set(*obj, sym, obj_sym, ic, aop, rhs, keep);
            break;
          }
          case Op::kSetMemberGlobal: {
            tick();
            tick();
            const auto obj_sym = static_cast<util::Symbol>(rd_u32());
            GlobalCache& gcache = chunk.global_caches[rd_u16()];
            const auto sym = static_cast<util::Symbol>(rd_u32());
            const std::uint16_t ic = rd_u16();
            const std::uint8_t rawaop = rd_u8();
            const auto aop = static_cast<AssignOp>(rawaop & ~kAopDiscard);
            const bool keep = !(rawaop & kAopDiscard);
            VmValue rhs = pop();
            Environment* const globals = interp_.globals_.get();
            JsValue* obj;
            if (gcache.env == globals && gcache.globals_version == globals->version() &&
                gcache.builtins_version == interp_.builtins_->version()) {
              ++ic_hits_;
              obj = gcache.binding;
            } else {
              ++ic_misses_;
              obj = globals->find_local(obj_sym);
              if (!obj) obj = interp_.builtins_->find_local(obj_sym);
              if (!obj) throw JsError("undefined variable: " + util::symbol_name(obj_sym));
              gcache.env = globals;
              gcache.globals_version = globals->version();
              gcache.builtins_version = interp_.builtins_->version();
              gcache.binding = obj;
            }
            ++interp_.slot_reads_;
            if constexpr (WithHooks) {
              interp_.hooks_->on_read(interp_.current_stmt_, obj_sym, *obj);
            }
            member_set(*obj, sym, obj_sym, ic, aop, rhs, keep);
            break;
          }
          case Op::kGetIndex: {
            tick();
            VmValue idxv = pop();
            VmValue objv = pop();
            if (objv.is_box()) {
              const JsValue& obj = objv.boxed();
              if (obj.is_array()) {
                const auto& arr = *obj.as_array();
                const auto i = static_cast<std::size_t>(vm_number(idxv));
                push(i >= arr.size() ? VmValue::null() : VmValue::from_js(arr[i]));
                break;
              }
              if (obj.is_object()) {
                push(VmValue::from_js(obj.as_object()->get(
                    vm_is_string(idxv) ? idxv.boxed().as_string() : idxv.to_js().to_display())));
                break;
              }
              if (obj.is_string()) {
                const std::string& s = obj.as_string();
                const auto i = static_cast<std::size_t>(vm_number(idxv));
                push(i >= s.size() ? VmValue::null() : VmValue::box(JsValue(std::string(1, s[i]))));
                break;
              }
            }
            throw JsError("cannot index a " + objv.to_js().to_display());
          }
          case Op::kSetIndex: {
            tick();
            const auto root = static_cast<util::Symbol>(rd_u32());
            const std::uint8_t rawaop = rd_u8();
            const auto aop = static_cast<AssignOp>(rawaop & ~kAopDiscard);
            const bool keep = !(rawaop & kAopDiscard);
            VmValue idxv = pop();
            VmValue objv = pop();
            VmValue rhs = pop();
            JsValue value;
            if (objv.is_box() && objv.boxed().is_array()) {
              auto& arr = *objv.boxed().as_array();
              const auto i = static_cast<std::size_t>(vm_number(idxv));
              if (i >= arr.size()) arr.resize(i + 1);
              value = vm_combined(arr[i], rhs, aop);
              arr[i] = value;
            } else if (objv.is_box() && objv.boxed().is_object()) {
              JsObject& o = *objv.boxed().as_object();
              const std::string key =
                  vm_is_string(idxv) ? idxv.boxed().as_string() : idxv.to_js().to_display();
              value = vm_combined(o.get(key), rhs, aop);
              o.set(key, value);
            } else {
              throw JsError("cannot index-assign a " + objv.to_js().to_display());
            }
            if constexpr (WithHooks) {
              if (root != util::kNoSymbol) {
                interp_.hooks_->on_write(interp_.current_stmt_, root, objv.boxed());
              }
            }
            if (keep) push(VmValue::from_js(std::move(value)));
            break;
          }

          case Op::kCall: {
            tick();
            const std::uint8_t argc = rd_u8();
            const auto name = static_cast<util::Symbol>(rd_u32());
            CallCache& cache = chunk.call_caches[rd_u16()];
            std::vector<JsValue> args;
            args.reserve(argc);
            for (std::size_t i = stack_.size() - argc; i < stack_.size(); ++i) {
              args.push_back(stack_[i].to_js());
            }
            stack_.resize(stack_.size() - argc);
            VmValue calleev = pop();
            if (calleev.is_box() && calleev.boxed().type() == JsValue::Type::kClosure) {
              const auto& closure = calleev.boxed().as_closure();
              if (closure->chunk) {
                if (cache.target == closure.get()) {
                  ++ic_hits_;
                } else {
                  ++ic_misses_;
                  cache.target = closure.get();
                }
                push(invoke_chunked<WithHooks>(closure, name, args));
                break;
              }
            }
            // Natives, chunk-less closures, and call-a-non-function errors
            // all route through the tree-walker's dispatcher.
            JsValue callee = calleev.to_js();
            push(VmValue::from_js(interp_.call_value<WithHooks>(callee, name, args)));
            break;
          }
          case Op::kCallMethod: {
            tick();
            const std::uint8_t argc = rd_u8();
            const auto method_sym = static_cast<util::Symbol>(rd_u32());
            const auto root = static_cast<util::Symbol>(rd_u32());
            const std::uint16_t ic = rd_u16();
            const bool mutating = rd_u8() != 0;
            std::vector<JsValue> args;
            args.reserve(argc);
            for (std::size_t i = stack_.size() - argc; i < stack_.size(); ++i) {
              args.push_back(stack_[i].to_js());
            }
            stack_.resize(stack_.size() - argc);
            JsValue receiver = pop().to_js();
            const std::string& method = util::symbol_name(method_sym);

            bool handled = false;
            JsValue result = interp_.builtin_method<WithHooks>(receiver, method, args, handled);
            if (handled) {
              if constexpr (WithHooks) {
                interp_.hooks_->on_invoke(interp_.current_stmt_, method_sym, args, result);
                if (mutating && root != util::kNoSymbol) {
                  interp_.hooks_->on_write(interp_.current_stmt_, root, receiver);
                }
              }
              push(VmValue::from_js(std::move(result)));
              break;
            }

            if (receiver.is_object()) {
              JsObject& o = *receiver.as_object();
              PropCache& cache = chunk.prop_caches[ic];
              JsValue fn;
              if (cache.index != kNoCacheEntry && o.sym_at(cache.index, method_sym)) {
                ++ic_hits_;
                fn = o.value_at(cache.index);
              } else {
                ++ic_misses_;
                const int idx = o.find_index(method_sym);
                if (idx >= 0) {
                  cache.index = static_cast<std::uint32_t>(idx);
                  fn = o.value_at(static_cast<std::size_t>(idx));
                }
              }
              if (fn.is_callable()) {
                push(VmValue::from_js(interp_.call_value<WithHooks>(fn, method_sym, args)));
                break;
              }
            }
            throw JsError("no such method '" + method + "' on " + receiver.to_display());
          }

          case Op::kAdd: {
            tick();
            VmValue r = pop();
            VmValue l = pop();
            if (l.is_number() && r.is_number()) {
              push(VmValue::number(l.as_number() + r.as_number()));
              break;
            }
            JsValue lj = l.to_js();
            JsValue rj = r.to_js();
            if (lj.is_string() || rj.is_string()) {
              push(VmValue::box(JsValue(lj.to_display() + rj.to_display())));
            } else {
              push(VmValue::number(lj.as_number() + rj.as_number()));
            }
            break;
          }
          case Op::kSub: {
            tick();
            VmValue r = pop();
            VmValue l = pop();
            const double a = vm_number(l);
            const double b = vm_number(r);
            push(VmValue::number(a - b));
            break;
          }
          case Op::kMul: {
            tick();
            VmValue r = pop();
            VmValue l = pop();
            const double a = vm_number(l);
            const double b = vm_number(r);
            push(VmValue::number(a * b));
            break;
          }
          case Op::kDiv: {
            tick();
            VmValue r = pop();
            VmValue l = pop();
            const double a = vm_number(l);
            const double b = vm_number(r);
            push(VmValue::number(a / b));
            break;
          }
          case Op::kMod: {
            tick();
            VmValue r = pop();
            VmValue l = pop();
            const double a = vm_number(l);
            const double b = vm_number(r);
            push(VmValue::number(std::fmod(a, b)));
            break;
          }
          case Op::kEq:
            tick();
            push(VmValue::boolean(equal()));
            break;
          case Op::kNe:
            tick();
            push(VmValue::boolean(!equal()));
            break;
          case Op::kLt:
            tick();
            compare([](const auto& a, const auto& b) { return a < b; });
            break;
          case Op::kLe:
            tick();
            compare([](const auto& a, const auto& b) { return a <= b; });
            break;
          case Op::kGt:
            tick();
            compare([](const auto& a, const auto& b) { return a > b; });
            break;
          case Op::kGe:
            tick();
            compare([](const auto& a, const auto& b) { return a >= b; });
            break;
          case Op::kNot:
            tick();
            push(VmValue::boolean(!pop().truthy()));
            break;
          case Op::kNeg: {
            tick();
            VmValue v = pop();
            push(VmValue::number(-vm_number(v)));
            break;
          }

          case Op::kJump:
            pc = rd_u32();
            break;
          case Op::kJumpIfFalse: {
            const std::size_t target = rd_u32();
            if (!pop().truthy()) pc = target;
            break;
          }
          case Op::kAndJump: {
            tick();
            const std::size_t target = rd_u32();
            if (!stack_.back().truthy()) {
              pc = target;
            } else {
              stack_.pop_back();
            }
            break;
          }
          case Op::kOrJump: {
            tick();
            const std::size_t target = rd_u32();
            if (stack_.back().truthy()) {
              pc = target;
            } else {
              stack_.pop_back();
            }
            break;
          }

          case Op::kMakeObject: {
            tick();
            const std::uint16_t count = rd_u16();
            const std::uint16_t base = rd_u16();
            auto obj = std::make_shared<JsObject>();
            const std::size_t first = stack_.size() - count;
            for (std::size_t i = 0; i < count; ++i) {
              obj->set(chunk.syms[base + i], stack_[first + i].to_js());
            }
            stack_.resize(first);
            push(VmValue::box(JsValue(std::move(obj))));
            break;
          }
          case Op::kMakeArray: {
            tick();
            const std::uint16_t count = rd_u16();
            auto arr = std::make_shared<JsArray>();
            arr->reserve(count);
            const std::size_t first = stack_.size() - count;
            for (std::size_t i = 0; i < count; ++i) arr->push_back(stack_[first + i].to_js());
            stack_.resize(first);
            push(VmValue::box(JsValue(std::move(arr))));
            break;
          }
          case Op::kMakeClosure: {
            const auto& fc = chunk.fn_chunks[rd_u16()];
            auto closure = std::make_shared<Closure>();
            closure->name = fc->name;
            closure->name_sym = fc->name_sym;
            closure->params = fc->params;
            closure->body = fc->body;
            closure->env = scopes_.back();
            closure->scope = fc->fn_scope;
            closure->chunk = fc;
            push(VmValue::box(JsValue(std::move(closure))));
            break;
          }

          case Op::kPushScope:
            scopes_.push_back(interp_.make_frame(chunk.scopes[rd_u16()], scopes_.back()));
            break;
          case Op::kPopScope:
            scopes_.pop_back();
            break;
          case Op::kPopScopeN:
            scopes_.resize(scopes_.size() - rd_u8());
            break;

          case Op::kDeclareSlot: {
            const std::uint16_t slot = rd_u16();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            Environment& e = *scopes_.back();
            e.bind_slot(slot, pop().to_js());
            if constexpr (WithHooks) {
              const JsValue& bound = e.slot(slot);
              interp_.hooks_->on_declare(interp_.current_stmt_, sym, bound);
              interp_.hooks_->on_write(interp_.current_stmt_, sym, bound);
            }
            break;
          }
          case Op::kDeclareNamed: {
            const auto sym = static_cast<util::Symbol>(rd_u32());
            Environment& e = *scopes_.back();
            e.define(sym, pop().to_js());
            if constexpr (WithHooks) {
              const JsValue* bound = e.find_local(sym);
              interp_.hooks_->on_declare(interp_.current_stmt_, sym, *bound);
              interp_.hooks_->on_write(interp_.current_stmt_, sym, *bound);
            }
            break;
          }
          case Op::kDeclareFnSlot: {
            const std::uint16_t slot = rd_u16();
            const auto sym = static_cast<util::Symbol>(rd_u32());
            Environment& e = *scopes_.back();
            e.bind_slot(slot, pop().to_js());
            if constexpr (WithHooks) {
              interp_.hooks_->on_declare(interp_.current_stmt_, sym, e.slot(slot));
            }
            break;
          }
          case Op::kDeclareFnNamed: {
            const auto sym = static_cast<util::Symbol>(rd_u32());
            Environment& e = *scopes_.back();
            e.define(sym, pop().to_js());
            if constexpr (WithHooks) {
              interp_.hooks_->on_declare(interp_.current_stmt_, sym, *e.find_local(sym));
            }
            break;
          }

          case Op::kTryPush:
            handlers_.push_back(Handler{rd_u32(), stack_.size(), scopes_.size()});
            break;
          case Op::kTryPop:
            handlers_.pop_back();
            break;
          case Op::kCatchBind: {
            const std::uint16_t scope_idx = rd_u16();
            const std::uint16_t slot = rd_u16();
            const auto catch_sym = static_cast<util::Symbol>(rd_u32());
            JsValue caught = pop().to_js();
            std::shared_ptr<Environment> cenv;
            if (scope_idx != 0xffff) {
              cenv = interp_.make_frame(chunk.scopes[scope_idx], scopes_.back());
              if (slot != 0xffff) {
                cenv->bind_slot(slot, std::move(caught));
              } else {
                cenv->define(catch_sym, std::move(caught));
              }
            } else {
              cenv = interp_.make_named(scopes_.back());
              cenv->define(catch_sym, std::move(caught));
            }
            scopes_.push_back(std::move(cenv));
            break;
          }

          case Op::kReturn: {
            VmValue result = pop();
            return result;
          }
          case Op::kThrow: {
            JsValue value = pop().to_js();
            std::string message = "minijs throw: " + value.to_display();
            throw JsError(message, std::move(value));
          }

          default:
            throw std::logic_error("minijs vm: corrupt bytecode");
        }
      }
    } catch (JsError& err) {
      if (handlers_.size() <= guard.handler_base) throw;
      const Handler h = handlers_.back();
      handlers_.pop_back();
      stack_.resize(h.stack_depth);
      scopes_.resize(h.scope_depth);
      JsValue caught = err.value();
      if (caught.is_null()) caught = JsValue(std::string(err.what()));
      push(VmValue::from_js(std::move(caught)));
      pc = h.target;
    }
  }
}

// The cross-TU bridge: interpreter.cpp calls call_chunked, this file calls
// the interpreter's templated dispatcher/builtins (instantiated there).
template JsValue Vm::call_chunked<true>(const std::shared_ptr<Closure>&, util::Symbol,
                                        std::vector<JsValue>&);
template JsValue Vm::call_chunked<false>(const std::shared_ptr<Closure>&, util::Symbol,
                                         std::vector<JsValue>&);

}  // namespace edgstr::minijs
