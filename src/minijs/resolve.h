// Static resolution pass: assigns every identifier a lexical address.
//
// The resolver runs after parsing/normalization, when the scope structure
// is final. It mirrors the interpreter's environment creation exactly —
// one ScopeInfo per runtime Environment — so a resolved identifier can be
// read as `frame(depth).slot(i)` instead of a hash lookup per scope in the
// chain. Names that bind at the REPL-ish toplevel (or in the builtins
// scope) resolve to kDepthGlobal and keep a two-probe named lookup.
//
// Correctness hinges on one invariant: frame slots start *unbound*, and an
// unbound slot is invisible to chain lookups. A statically resolved read
// whose slot is still unbound (use-before-declaration inside a block that
// shadows an outer name) falls back to the dynamic named walk, which makes
// the fast path observably identical to the slow one.
#pragma once

#include "minijs/ast.h"

namespace edgstr::minijs {

struct ResolveStats {
  int scopes = 0;    ///< frame layouts created
  int slots = 0;     ///< total slots across all layouts
  int resolved = 0;  ///< identifiers addressed as (depth, slot)
  int globals = 0;   ///< identifiers routed to the global/builtin path
};

/// Interns every name and annotates the program with scope layouts and
/// lexical addresses. Idempotent; recomputes from scratch each call.
ResolveStats resolve_program(Program& program);

/// Interns every name but clears all resolution annotations, forcing the
/// dynamic named path everywhere (the differential-testing baseline).
void strip_resolution(Program& program);

}  // namespace edgstr::minijs
