// Bytecode listing for golden tests and `edgstr_cli --dump-bytecode`.
//
// Output is deliberately stable: symbolic operands print as their interned
// names (never raw symbol ids, which depend on global intern order) and
// constants print through JsValue::to_display, so the same source always
// disassembles to the same text.
#include <cstdarg>
#include <cstdio>
#include <string>

#include "minijs/chunk.h"
#include "util/intern.h"

namespace edgstr::minijs {

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kNull: return "null";
    case Op::kTrue: return "true";
    case Op::kFalse: return "false";
    case Op::kPop: return "pop";
    case Op::kStmt: return "stmt";
    case Op::kStmtId: return "stmt_id";
    case Op::kTick: return "tick";
    case Op::kLoadSlot: return "load_slot";
    case Op::kLoadGlobal: return "load_global";
    case Op::kLoadNamed: return "load_named";
    case Op::kStoreSlot: return "store_slot";
    case Op::kStoreGlobal: return "store_global";
    case Op::kStoreNamed: return "store_named";
    case Op::kGetMember: return "get_member";
    case Op::kSetMember: return "set_member";
    case Op::kGetMemberSlot: return "get_member_slot";
    case Op::kGetMemberGlobal: return "get_member_global";
    case Op::kSetMemberSlot: return "set_member_slot";
    case Op::kSetMemberGlobal: return "set_member_global";
    case Op::kAddMemberSlot: return "add_member_slot";
    case Op::kAddMemberGlobal: return "add_member_global";
    case Op::kAddConst: return "add_const";
    case Op::kIncSlot: return "inc_slot";
    case Op::kJumpCmpSlots: return "jump_cmp_slots";
    case Op::kGetIndex: return "get_index";
    case Op::kSetIndex: return "set_index";
    case Op::kCall: return "call";
    case Op::kCallMethod: return "call_method";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kJump: return "jump";
    case Op::kJumpIfFalse: return "jump_if_false";
    case Op::kAndJump: return "and_jump";
    case Op::kOrJump: return "or_jump";
    case Op::kMakeObject: return "make_object";
    case Op::kMakeArray: return "make_array";
    case Op::kMakeClosure: return "make_closure";
    case Op::kPushScope: return "push_scope";
    case Op::kPopScope: return "pop_scope";
    case Op::kPopScopeN: return "pop_scope_n";
    case Op::kDeclareSlot: return "declare_slot";
    case Op::kDeclareNamed: return "declare_named";
    case Op::kDeclareFnSlot: return "declare_fn_slot";
    case Op::kDeclareFnNamed: return "declare_fn_named";
    case Op::kTryPush: return "try_push";
    case Op::kTryPop: return "try_pop";
    case Op::kCatchBind: return "catch_bind";
    case Op::kReturn: return "return";
    case Op::kThrow: return "throw";
  }
  return "??";
}

std::string aop_name(std::uint8_t aop) {
  std::string out;
  switch (static_cast<AssignOp>(aop & ~kAopDiscard)) {
    case AssignOp::kAssign: out = "="; break;
    case AssignOp::kAddAssign: out = "+="; break;
    case AssignOp::kSubAssign: out = "-="; break;
    default: out = "?"; break;
  }
  if (aop & kAopDiscard) out += " (stmt)";
  return out;
}

std::string const_repr(const JsValue& v) {
  if (v.is_string()) return "\"" + v.as_string() + "\"";
  return v.to_display();
}

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

void disassemble_into(const Chunk& chunk, std::string& out) {
  std::size_t pc = 0;
  while (pc < chunk.code.size()) {
    const std::size_t at = pc;
    const Op op = static_cast<Op>(chunk.code[pc++]);
    append(out, "%5zu  %-18s", at, op_name(op));
    switch (op) {
      case Op::kConst: {
        const std::uint16_t idx = chunk.read_u16(pc);
        pc += 2;
        append(out, "%u  ; %s", idx, const_repr(chunk.constants[idx]).c_str());
        break;
      }
      case Op::kStmt:
      case Op::kStmtId:
        append(out, "#%u", chunk.read_u32(pc));
        pc += 4;
        break;
      case Op::kLoadSlot:
      case Op::kStoreSlot: {
        const std::uint8_t depth = chunk.read_u8(pc);
        const std::uint16_t slot = chunk.read_u16(pc + 1);
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc + 3));
        pc += 7;
        append(out, "depth=%u slot=%u  ; %s", depth, slot, util::symbol_name(sym).c_str());
        if (op == Op::kStoreSlot) {
          append(out, " %s", aop_name(chunk.read_u8(pc)).c_str());
          pc += 1;
        }
        break;
      }
      case Op::kLoadGlobal: {
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc));
        const std::uint16_t ic = chunk.read_u16(pc + 4);
        pc += 6;
        append(out, "%s ic=%u", util::symbol_name(sym).c_str(), ic);
        break;
      }
      case Op::kStoreGlobal: {
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc));
        const std::uint16_t ic = chunk.read_u16(pc + 4);
        const std::uint8_t aop = chunk.read_u8(pc + 6);
        pc += 7;
        append(out, "%s ic=%u %s", util::symbol_name(sym).c_str(), ic, aop_name(aop).c_str());
        break;
      }
      case Op::kLoadNamed:
        append(out, "%s", util::symbol_name(chunk.read_u32(pc)).c_str());
        pc += 4;
        break;
      case Op::kStoreNamed: {
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc));
        const std::uint8_t aop = chunk.read_u8(pc + 4);
        pc += 5;
        append(out, "%s %s", util::symbol_name(sym).c_str(), aop_name(aop).c_str());
        break;
      }
      case Op::kGetMember: {
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc));
        const std::uint16_t ic = chunk.read_u16(pc + 4);
        pc += 6;
        append(out, ".%s ic=%u", util::symbol_name(sym).c_str(), ic);
        break;
      }
      case Op::kSetMember: {
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc));
        const auto root = static_cast<util::Symbol>(chunk.read_u32(pc + 4));
        const std::uint16_t ic = chunk.read_u16(pc + 8);
        const std::uint8_t aop = chunk.read_u8(pc + 10);
        pc += 11;
        append(out, ".%s root=%s ic=%u %s", util::symbol_name(sym).c_str(),
               util::symbol_name(root).c_str(), ic, aop_name(aop).c_str());
        break;
      }
      case Op::kGetMemberSlot:
      case Op::kAddMemberSlot: {
        const std::uint8_t depth = chunk.read_u8(pc);
        const std::uint16_t slot = chunk.read_u16(pc + 1);
        const auto obj = static_cast<util::Symbol>(chunk.read_u32(pc + 3));
        const std::uint8_t hops = chunk.read_u8(pc + 7);
        pc += 8;
        append(out, "depth=%u slot=%u %s", depth, slot, util::symbol_name(obj).c_str());
        for (std::uint8_t h = 0; h < hops; ++h) {
          const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc));
          const std::uint16_t ic = chunk.read_u16(pc + 4);
          pc += 6;
          append(out, ".%s[ic=%u]", util::symbol_name(sym).c_str(), ic);
        }
        break;
      }
      case Op::kGetMemberGlobal:
      case Op::kAddMemberGlobal: {
        const auto obj = static_cast<util::Symbol>(chunk.read_u32(pc));
        const std::uint16_t gic = chunk.read_u16(pc + 4);
        const std::uint8_t hops = chunk.read_u8(pc + 6);
        pc += 7;
        append(out, "%s gic=%u", util::symbol_name(obj).c_str(), gic);
        for (std::uint8_t h = 0; h < hops; ++h) {
          const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc));
          const std::uint16_t ic = chunk.read_u16(pc + 4);
          pc += 6;
          append(out, ".%s[ic=%u]", util::symbol_name(sym).c_str(), ic);
        }
        break;
      }
      case Op::kSetMemberSlot: {
        const std::uint8_t depth = chunk.read_u8(pc);
        const std::uint16_t slot = chunk.read_u16(pc + 1);
        const auto obj = static_cast<util::Symbol>(chunk.read_u32(pc + 3));
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc + 7));
        const std::uint16_t ic = chunk.read_u16(pc + 11);
        const std::uint8_t aop = chunk.read_u8(pc + 13);
        pc += 14;
        append(out, "depth=%u slot=%u .%s ic=%u %s  ; %s", depth, slot,
               util::symbol_name(sym).c_str(), ic, aop_name(aop).c_str(),
               util::symbol_name(obj).c_str());
        break;
      }
      case Op::kSetMemberGlobal: {
        const auto obj = static_cast<util::Symbol>(chunk.read_u32(pc));
        const std::uint16_t gic = chunk.read_u16(pc + 4);
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc + 6));
        const std::uint16_t ic = chunk.read_u16(pc + 10);
        const std::uint8_t aop = chunk.read_u8(pc + 12);
        pc += 13;
        append(out, "%s.%s gic=%u ic=%u %s", util::symbol_name(obj).c_str(),
               util::symbol_name(sym).c_str(), gic, ic, aop_name(aop).c_str());
        break;
      }
      case Op::kAddConst: {
        const std::uint16_t idx = chunk.read_u16(pc);
        pc += 2;
        append(out, "%u  ; %s", idx, const_repr(chunk.constants[idx]).c_str());
        break;
      }
      case Op::kIncSlot: {
        const std::uint8_t depth = chunk.read_u8(pc);
        const std::uint16_t slot = chunk.read_u16(pc + 1);
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc + 3));
        const std::uint16_t idx = chunk.read_u16(pc + 7);
        const std::uint8_t aop = chunk.read_u8(pc + 9);
        const std::uint8_t plain = chunk.read_u8(pc + 10);
        pc += 11;
        append(out, "depth=%u slot=%u %s %s  ; %s %s", depth, slot,
               aop_name(aop).c_str(), const_repr(chunk.constants[idx]).c_str(),
               util::symbol_name(sym).c_str(), plain ? "(plain)" : "(compound)");
        break;
      }
      case Op::kJumpCmpSlots: {
        static const char* kCmpNames[] = {"<", "<=", ">", ">=", "==", "!="};
        const std::uint8_t cmp = chunk.read_u8(pc);
        pc += 1;
        std::string sides[2];
        for (int s = 0; s < 2; ++s) {
          const std::uint8_t depth = chunk.read_u8(pc);
          const std::uint16_t slot = chunk.read_u16(pc + 1);
          const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc + 3));
          pc += 7;
          char buf[96];
          std::snprintf(buf, sizeof(buf), "%s(d%u:s%u)", util::symbol_name(sym).c_str(),
                        depth, slot);
          sides[s] = buf;
        }
        const std::uint32_t target = chunk.read_u32(pc);
        pc += 4;
        append(out, "%s %s %s -> %u", sides[0].c_str(), cmp <= 5 ? kCmpNames[cmp] : "?",
               sides[1].c_str(), target);
        break;
      }
      case Op::kSetIndex: {
        const auto root = static_cast<util::Symbol>(chunk.read_u32(pc));
        const std::uint8_t aop = chunk.read_u8(pc + 4);
        pc += 5;
        append(out, "root=%s %s", util::symbol_name(root).c_str(), aop_name(aop).c_str());
        break;
      }
      case Op::kCall: {
        const std::uint8_t argc = chunk.read_u8(pc);
        const auto name = static_cast<util::Symbol>(chunk.read_u32(pc + 1));
        const std::uint16_t ic = chunk.read_u16(pc + 5);
        pc += 7;
        append(out, "argc=%u ic=%u  ; %s", argc, ic, util::symbol_name(name).c_str());
        break;
      }
      case Op::kCallMethod: {
        const std::uint8_t argc = chunk.read_u8(pc);
        const auto method = static_cast<util::Symbol>(chunk.read_u32(pc + 1));
        const auto root = static_cast<util::Symbol>(chunk.read_u32(pc + 5));
        const std::uint16_t ic = chunk.read_u16(pc + 9);
        const std::uint8_t mutating = chunk.read_u8(pc + 11);
        pc += 12;
        append(out, ".%s argc=%u ic=%u%s  ; root=%s", util::symbol_name(method).c_str(), argc,
               ic, mutating ? " mut" : "", util::symbol_name(root).c_str());
        break;
      }
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kAndJump:
      case Op::kOrJump:
      case Op::kTryPush:
        append(out, "-> %u", chunk.read_u32(pc));
        pc += 4;
        break;
      case Op::kMakeObject: {
        const std::uint16_t count = chunk.read_u16(pc);
        const std::uint16_t base = chunk.read_u16(pc + 2);
        pc += 4;
        append(out, "n=%u  ;", count);
        for (std::uint16_t i = 0; i < count; ++i) {
          append(out, " %s", util::symbol_name(chunk.syms[base + i]).c_str());
        }
        break;
      }
      case Op::kMakeArray:
        append(out, "n=%u", chunk.read_u16(pc));
        pc += 2;
        break;
      case Op::kMakeClosure: {
        const std::uint16_t idx = chunk.read_u16(pc);
        pc += 2;
        const std::string& name = chunk.fn_chunks[idx]->name;
        append(out, "fn=%u  ; %s", idx, name.empty() ? "<anonymous>" : name.c_str());
        break;
      }
      case Op::kPushScope:
        append(out, "scope=%u", chunk.read_u16(pc));
        pc += 2;
        break;
      case Op::kPopScopeN:
        append(out, "n=%u", chunk.read_u8(pc));
        pc += 1;
        break;
      case Op::kDeclareSlot:
      case Op::kDeclareFnSlot: {
        const std::uint16_t slot = chunk.read_u16(pc);
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc + 2));
        pc += 6;
        append(out, "slot=%u  ; %s", slot, util::symbol_name(sym).c_str());
        break;
      }
      case Op::kDeclareNamed:
      case Op::kDeclareFnNamed:
        append(out, "%s", util::symbol_name(chunk.read_u32(pc)).c_str());
        pc += 4;
        break;
      case Op::kCatchBind: {
        const std::uint16_t scope = chunk.read_u16(pc);
        const std::uint16_t slot = chunk.read_u16(pc + 2);
        const auto sym = static_cast<util::Symbol>(chunk.read_u32(pc + 4));
        pc += 8;
        if (scope == 0xffff) {
          append(out, "named  ; %s", util::symbol_name(sym).c_str());
        } else {
          append(out, "scope=%u slot=%u  ; %s", scope, slot, util::symbol_name(sym).c_str());
        }
        break;
      }
      default:
        break;  // no operands
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  }
}

void disassemble_tree(const Chunk& chunk, std::string& out) {
  out += "== ";
  out += chunk.name.empty() ? "<anonymous>" : chunk.name;
  append(out, " ==  (%zu bytes, %zu consts, %zu ic)\n", chunk.code.size(),
         chunk.constants.size(),
         chunk.prop_caches.size() + chunk.global_caches.size() + chunk.call_caches.size());
  disassemble_into(chunk, out);
  for (const auto& fn : chunk.fn_chunks) disassemble_tree(*fn, out);
}

}  // namespace

std::string disassemble(const Chunk& chunk) {
  std::string out;
  disassemble_into(chunk, out);
  return out;
}

std::string disassemble_program(const CompiledProgram& program) {
  std::string out;
  disassemble_tree(*program.toplevel, out);
  return out;
}

}  // namespace edgstr::minijs
