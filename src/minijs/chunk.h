// MiniJS bytecode containers.
//
// A Chunk is one compiled function body (or the program top level): a flat
// byte-encoded instruction stream plus the pools it indexes — constants,
// interned symbols, resolver scope layouts, and nested function chunks.
// Inline-cache slots live alongside the code; they are mutable runtime
// state (monomorphic property / global-binding / call-target caches) owned
// by the chunk so a cache survives across invocations of the same site.
//
// The instruction encoding is a classic stack design: one opcode byte
// followed by fixed-width little-endian operands (u8/u16/u32, written and
// read with memcpy — no alignment assumptions). Jumps use absolute u32
// offsets into the code vector.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "minijs/ast.h"
#include "minijs/value.h"
#include "util/intern.h"

namespace edgstr::minijs {

enum class Op : std::uint8_t {
  // Literals / stack shuffling.
  kConst,         ///< u16 pool index: push constants[i]
  kNull,          ///< push null
  kTrue,          ///< push true
  kFalse,         ///< push false
  kPop,           ///< discard top

  // Hook attribution and step accounting. The VM's step counter must track
  // the tree-walker's exactly (one tick per statement entry, per loop
  // iteration, per expression node evaluated), so most value-producing ops
  // carry their expression node's tick themselves; kTick covers the nodes
  // whose ops are shared with non-ticking contexts (ternary conditions,
  // function expressions), and kStmtId re-establishes attribution without
  // ticking (for-loop condition/update re-entry).
  kStmt,          ///< u32 stmt id; sets attribution and ticks (statement entry)
  kStmtId,        ///< u32 stmt id; sets attribution only, no tick
  kTick,          ///< bare step tick

  // Variable access. Slot ops carry the symbol for the unbound-slot
  // fallback (forward reference before declaration) and for hooks/errors.
  kLoadSlot,      ///< u8 depth, u16 slot, u32 sym
  kLoadGlobal,    ///< u32 sym, u16 global-cache index
  kLoadNamed,     ///< u32 sym — unresolved: dynamic chain walk
  kStoreSlot,     ///< u8 depth, u16 slot, u32 sym, u8 assign-op
  kStoreGlobal,   ///< u32 sym, u16 global-cache index, u8 assign-op
  kStoreNamed,    ///< u32 sym, u8 assign-op

  // Property / index access.
  kGetMember,     ///< u32 sym, u16 prop-cache index
  kSetMember,     ///< u32 sym, u32 root sym, u16 prop-cache index, u8 assign-op
  kGetIndex,      ///< [obj idx] -> [value]
  kSetIndex,      ///< u32 root sym, u8 assign-op; [rhs obj idx] -> [value]

  // Fused `ident.member` forms. The hot property pattern is a member read
  // or write whose receiver is a plain resolved variable; routing the
  // receiver through the value stack costs a JsValue copy plus a VmBox
  // per access. These ops read the receiver by reference straight out of
  // the environment slot / global binding and do the property lookup in
  // place. They account for BOTH expression nodes: two step ticks, the
  // receiver's on_read hook and read counter, then the member cache probe.
  kGetMemberSlot,   ///< u8 depth, u16 slot, u32 root sym, u8 hops,
                    ///< hops x (u32 member sym, u16 prop-cache index)
  kGetMemberGlobal, ///< u32 root sym, u16 global-cache index, u8 hops,
                    ///< hops x (u32 member sym, u16 prop-cache index)
  kSetMemberSlot,   ///< u8 depth, u16 slot, u32 obj sym, u32 member sym,
                    ///< u16 prop-cache index, u8 assign-op; pops the rhs
  kAddMemberSlot,   ///< operands of kGetMemberSlot; pops the pending lhs and
                    ///< pushes lhs + member (fused [get_member][add])
  kAddMemberGlobal, ///< operands of kGetMemberGlobal; same add fusion
  kAddConst,        ///< u16 const index; TOS = TOS + const (fused [const][add])
  kIncSlot,         ///< u8 depth, u16 slot, u32 sym, u16 const index,
                    ///< u8 assign-op, u8 plain: statement-form `i = i + c` /
                    ///< `i += c` on a resolved local; pushes nothing
  kJumpCmpSlots,    ///< u8 cmp, 2 x (u8 depth, u16 slot, u32 sym), u32 target:
                    ///< fused compare-and-branch on two resolved locals
  kSetMemberGlobal, ///< u32 obj sym, u16 global-cache index, u32 member sym,
                    ///< u16 prop-cache index, u8 assign-op; pops the rhs

  // Calls. kCall pops [callee a0..aN]; kCallMethod pops [recv a0..aN].
  kCall,          ///< u8 argc, u32 callee name sym, u16 call-cache index
  kCallMethod,    ///< u8 argc, u32 method sym, u32 root sym, u16 prop-cache index,
                  ///< u8 mutating (receiver-write hook flag)

  // Operators (string-polymorphic where the tree-walker is).
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kNot, kNeg,

  // Control flow: absolute u32 targets.
  kJump,            ///< u32 target
  kJumpIfFalse,     ///< u32 target; pops the condition
  kAndJump,         ///< u32 target; falsy: jump keeping lhs, else pop
  kOrJump,          ///< u32 target; truthy: jump keeping lhs, else pop

  // Aggregates / closures.
  kMakeObject,    ///< u16 count, u16 base into syms (keys, in order)
  kMakeArray,     ///< u16 count
  kMakeClosure,   ///< u16 index into fn_chunks

  // Scope chain (only scopes the compiler materializes — see compile.cpp).
  kPushScope,     ///< u16 index into scopes
  kPopScope,
  kPopScopeN,     ///< u8 count (break/continue unwinding)

  // Declarations (value popped from the stack).
  kDeclareSlot,   ///< u16 slot, u32 sym — var decl: declare+write hooks
  kDeclareNamed,  ///< u32 sym — toplevel var decl
  kDeclareFnSlot, ///< u16 slot, u32 sym — function decl: declare hook only
  kDeclareFnNamed,///< u32 sym

  // Exceptions.
  kTryPush,       ///< u32 handler target
  kTryPop,
  kCatchBind,     ///< u16 scope index (0xffff named), u16 slot (0xffff named),
                  ///< u32 catch sym; pops the caught value, pushes a scope

  kReturn,        ///< pop return value, leave the chunk
  kThrow,         ///< pop value, raise as JsError
};

/// Sentinel for "no cached entry yet" in PropCache::index.
inline constexpr std::uint32_t kNoCacheEntry = 0xffffffffu;

/// High bit of a store op's assign-op operand: statement form. The store
/// discards its value instead of pushing it, and the compiler emits no
/// kPop — an assignment in statement position never touches the stack
/// with its result.
inline constexpr std::uint8_t kAopDiscard = 0x80;

/// Monomorphic property cache: the entry index `sym` resolved to last time
/// at this site. Valid iff the receiver still has `sym` at that index
/// (JsObject::sym_at), which holds across every same-layout object.
struct PropCache {
  std::uint32_t index = kNoCacheEntry;
};

/// Global-binding cache: raw pointer into the globals/builtins named map,
/// guarded by the environment identity and both binding-set versions.
struct GlobalCache {
  const void* env = nullptr;  ///< globals Environment this was filled against
  std::uint64_t globals_version = 0;
  std::uint64_t builtins_version = 0;
  JsValue* binding = nullptr;
};

/// Monomorphic call-target cache: identity of the last callee object seen
/// at this site (Closure* / NativeFunction*).
struct CallCache {
  const void* target = nullptr;
};

class Chunk {
 public:
  // Function metadata (empty/null for the toplevel chunk): everything
  // needed to build a Closure at kMakeClosure, mirroring the tree-walker's
  // closure construction so either engine can call the result.
  std::string name;
  util::Symbol name_sym = util::kNoSymbol;
  std::vector<std::string> params;
  ScopeInfoPtr fn_scope;
  StmtPtr body;

  std::vector<std::uint8_t> code;
  std::vector<JsValue> constants;
  std::vector<util::Symbol> syms;      ///< object-literal key tables
  std::vector<ScopeInfoPtr> scopes;    ///< kPushScope / kCatchBind layouts
  std::vector<std::shared_ptr<const Chunk>> fn_chunks;  ///< nested functions

  // Inline-cache slots (runtime state; chunks are per-interpreter).
  mutable std::vector<PropCache> prop_caches;
  mutable std::vector<GlobalCache> global_caches;
  mutable std::vector<CallCache> call_caches;

  // -- emit helpers (compiler) ------------------------------------------
  void emit(Op op) { code.push_back(static_cast<std::uint8_t>(op)); }
  void emit_u8(std::uint8_t v) { code.push_back(v); }
  void emit_u16(std::uint16_t v) {
    const std::size_t at = code.size();
    code.resize(at + 2);
    std::memcpy(code.data() + at, &v, 2);
  }
  void emit_u32(std::uint32_t v) {
    const std::size_t at = code.size();
    code.resize(at + 4);
    std::memcpy(code.data() + at, &v, 4);
  }
  void patch_u32(std::size_t at, std::uint32_t v) { std::memcpy(code.data() + at, &v, 4); }

  // -- decode helpers (VM / disassembler) -------------------------------
  std::uint8_t read_u8(std::size_t at) const { return code[at]; }
  std::uint16_t read_u16(std::size_t at) const {
    std::uint16_t v;
    std::memcpy(&v, code.data() + at, 2);
    return v;
  }
  std::uint32_t read_u32(std::size_t at) const {
    std::uint32_t v;
    std::memcpy(&v, code.data() + at, 4);
    return v;
  }
};

/// A compiled program: the toplevel chunk (function chunks hang off it via
/// fn_chunks, recursively) plus whole-program totals for telemetry.
struct CompiledProgram {
  std::shared_ptr<const Chunk> toplevel;
  std::size_t chunk_count = 0;     ///< toplevel + every nested function
  std::size_t constant_count = 0;  ///< summed constant-pool entries
  std::size_t code_bytes = 0;      ///< summed instruction bytes
};

/// Human-readable listing of one chunk (no nested functions).
std::string disassemble(const Chunk& chunk);

/// Listing of a whole program: the toplevel followed by every nested
/// function chunk, depth-first, each under a `== name ==` header.
std::string disassemble_program(const CompiledProgram& program);

}  // namespace edgstr::minijs
