// MiniJS bytecode VM.
//
// Executes chunks produced by minijs/compile.h against the *same* runtime
// state the tree-walker uses: the interpreter's environment chain, frame
// pool, step/depth budgets, counters, and instrumentation hooks. The two
// engines are interchangeable mid-program — a chunked closure called from
// tree-walked code runs on the VM, a chunk-less closure reached from
// bytecode falls back to the tree-walker — which is what lets the variant
// harness run the VM as a shadow against the AST engines and demand
// byte-identical RW logs.
//
// The operand stack holds NaN-boxed VmValues (minijs/vm_value.h); the
// heavyweight JsValue appears only at the boundaries (environment slots,
// hooks, native calls, constants). Monomorphic inline caches live in the
// chunks (property entry index / global binding pointer / call target) and
// feed the vm.ic.{hit,miss} telemetry counters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "minijs/chunk.h"
#include "minijs/interpreter.h"
#include "minijs/vm_value.h"

namespace edgstr::minijs {

class Vm {
 public:
  explicit Vm(Interpreter& interp);

  /// Runs the compiled toplevel chunk in the globals scope.
  void run_toplevel();

  /// Calls a chunked closure: tick, depth guard, frame setup, run, invoke
  /// hook — the VM half of Interpreter::call_value.
  template <bool WithHooks>
  JsValue call_chunked(const std::shared_ptr<Closure>& closure, util::Symbol name,
                       std::vector<JsValue>& args);

  std::uint64_t ic_hits() const { return ic_hits_; }
  std::uint64_t ic_misses() const { return ic_misses_; }

 private:
  /// An active try region: where to resume, and how much operand stack /
  /// scope chain to unwind when a JsError lands here.
  struct Handler {
    std::size_t target;
    std::size_t stack_depth;
    std::size_t scope_depth;
  };

  /// Executes one chunk in `env`; returns the kReturn value. Recursion
  /// depth is bounded by the interpreter's max_call_depth.
  template <bool WithHooks>
  VmValue run(const Chunk& chunk, std::shared_ptr<Environment> env);

  template <bool WithHooks>
  VmValue invoke_chunked(const std::shared_ptr<Closure>& closure, util::Symbol name,
                         std::vector<JsValue>& args);

  // Stack helpers.
  void push(VmValue v) { stack_.push_back(std::move(v)); }
  VmValue pop() {
    VmValue v = std::move(stack_.back());
    stack_.pop_back();
    return v;
  }

  Interpreter& interp_;
  std::vector<VmValue> stack_;  ///< shared operand stack; runs window it by base
  std::vector<std::shared_ptr<Environment>> scopes_;  ///< active scope chain
  std::vector<Handler> handlers_;
  std::uint64_t ic_hits_ = 0;
  std::uint64_t ic_misses_ = 0;
};

}  // namespace edgstr::minijs
