#include "minijs/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace edgstr::minijs {

namespace {

const std::map<std::string, TokenKind>& keywords() {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"var", TokenKind::kVar},       {"function", TokenKind::kFunction},
      {"return", TokenKind::kReturn}, {"if", TokenKind::kIf},
      {"else", TokenKind::kElse},     {"while", TokenKind::kWhile},
      {"for", TokenKind::kFor},       {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},   {"null", TokenKind::kNull},
      {"throw", TokenKind::kThrow},   {"try", TokenKind::kTry},
      {"catch", TokenKind::kCatch},   {"break", TokenKind::kBreak},
      {"continue", TokenKind::kContinue},
      // `let`/`const` are accepted as synonyms of `var`.
      {"let", TokenKind::kVar},       {"const", TokenKind::kVar},
  };
  return kKeywords;
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  int line = 1;
  int line_start = 0;

  auto column = [&]() { return static_cast<int>(pos) - line_start + 1; };
  auto push = [&](TokenKind kind, std::string text) {
    tokens.push_back(Token{kind, std::move(text), 0, line, column()});
  };

  while (pos < source.size()) {
    const char c = source[pos];

    if (c == '\n') {
      ++line;
      ++pos;
      line_start = static_cast<int>(pos);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    // Comments.
    if (c == '/' && pos + 1 < source.size()) {
      if (source[pos + 1] == '/') {
        while (pos < source.size() && source[pos] != '\n') ++pos;
        continue;
      }
      if (source[pos + 1] == '*') {
        pos += 2;
        while (pos + 1 < source.size() && !(source[pos] == '*' && source[pos + 1] == '/')) {
          if (source[pos] == '\n') {
            ++line;
            line_start = static_cast<int>(pos) + 1;
          }
          ++pos;
        }
        if (pos + 1 >= source.size()) throw LexError(line, "unterminated block comment");
        pos += 2;
        continue;
      }
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      const std::size_t start = pos;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[pos])) || source[pos] == '_' ||
              source[pos] == '$')) {
        ++pos;
      }
      std::string word = source.substr(start, pos - start);
      auto kw = keywords().find(word);
      if (kw != keywords().end()) {
        push(kw->second, std::move(word));
      } else {
        // Identifiers are interned at lex time: the same symbol ids flow
        // through the AST, interpreter, RW logs and Datalog facts.
        const util::Symbol sym = util::intern(word);
        push(TokenKind::kIdent, std::move(word));
        tokens.back().sym = sym;
      }
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = pos;
      while (pos < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[pos])) || source[pos] == '.')) {
        ++pos;
      }
      // Exponent part.
      if (pos < source.size() && (source[pos] == 'e' || source[pos] == 'E')) {
        ++pos;
        if (pos < source.size() && (source[pos] == '+' || source[pos] == '-')) ++pos;
        while (pos < source.size() && std::isdigit(static_cast<unsigned char>(source[pos]))) ++pos;
      }
      std::string text = source.substr(start, pos - start);
      Token tok{TokenKind::kNumber, text, std::strtod(text.c_str(), nullptr), line, column()};
      tokens.push_back(std::move(tok));
      continue;
    }
    // Strings.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos;
      std::string text;
      while (true) {
        if (pos >= source.size()) throw LexError(line, "unterminated string literal");
        const char s = source[pos++];
        if (s == quote) break;
        if (s == '\n') throw LexError(line, "newline in string literal");
        if (s == '\\') {
          if (pos >= source.size()) throw LexError(line, "dangling escape");
          const char esc = source[pos++];
          switch (esc) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case 'r': text.push_back('\r'); break;
            case '\\': text.push_back('\\'); break;
            case '\'': text.push_back('\''); break;
            case '"': text.push_back('"'); break;
            case '0': text.push_back('\0'); break;
            default: text.push_back(esc); break;
          }
        } else {
          text.push_back(s);
        }
      }
      push(TokenKind::kString, std::move(text));
      continue;
    }
    // Operators / punctuation.
    auto two = [&](char a, char b) {
      return c == a && pos + 1 < source.size() && source[pos + 1] == b;
    };
    auto three = [&](const char* s) {
      return pos + 2 < source.size() && source[pos] == s[0] && source[pos + 1] == s[1] &&
             source[pos + 2] == s[2];
    };

    if (three("===")) { push(TokenKind::kEq, "==="); pos += 3; continue; }
    if (three("!==")) { push(TokenKind::kNe, "!=="); pos += 3; continue; }
    if (two('=', '=')) { push(TokenKind::kEq, "=="); pos += 2; continue; }
    if (two('!', '=')) { push(TokenKind::kNe, "!="); pos += 2; continue; }
    if (two('<', '=')) { push(TokenKind::kLe, "<="); pos += 2; continue; }
    if (two('>', '=')) { push(TokenKind::kGe, ">="); pos += 2; continue; }
    if (two('&', '&')) { push(TokenKind::kAndAnd, "&&"); pos += 2; continue; }
    if (two('|', '|')) { push(TokenKind::kOrOr, "||"); pos += 2; continue; }
    if (two('+', '=')) { push(TokenKind::kPlusAssign, "+="); pos += 2; continue; }
    if (two('-', '=')) { push(TokenKind::kMinusAssign, "-="); pos += 2; continue; }
    if (two('+', '+')) { push(TokenKind::kPlusPlus, "++"); pos += 2; continue; }
    if (two('-', '-')) { push(TokenKind::kMinusMinus, "--"); pos += 2; continue; }

    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case ',': kind = TokenKind::kComma; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case ':': kind = TokenKind::kColon; break;
      case '.': kind = TokenKind::kDot; break;
      case '?': kind = TokenKind::kQuestion; break;
      case '=': kind = TokenKind::kAssign; break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      case '%': kind = TokenKind::kPercent; break;
      case '<': kind = TokenKind::kLt; break;
      case '>': kind = TokenKind::kGt; break;
      case '!': kind = TokenKind::kBang; break;
      default:
        throw LexError(line, std::string("unexpected character '") + c + "'");
    }
    push(kind, std::string(1, c));
    ++pos;
  }

  tokens.push_back(Token{TokenKind::kEnd, "", 0, line, column()});
  return tokens;
}

}  // namespace edgstr::minijs
