// Batched wire encoding for sync messages.
//
// The seed shipped one self-describing JSON object per Op —
//   {"origin":"edge0","seq":12,"stamp":{"c":34,"r":"edge0"},"payload":...}
// — repeating the origin and stamp structure for every op. A sync message
// instead groups ops into per-(doc, origin) runs that share one header:
//
//   {"from": "<sender>",
//    "v":    {"<doc>": {"<origin>": seq, ...}, ...},      // sender versions
//    "d":    {"<doc>": [run, run, ...], ...}}             // omitted if empty
//
//   run = {"o": "<origin>",          // shared by every op in the run
//          "s": <first seq>,         // seqs are contiguous: s, s+1, ...
//          "c": [c0, d1, d2, ...],   // delta-encoded Lamport counters
//          "p": [payload, ...]}      // one payload per op
//
// Within a run the per-origin sequence numbers are contiguous (OpLog
// enforces gap-free recording and compaction only trims prefixes), so only
// the first seq is carried; Lamport counters are strictly increasing per
// origin, so deltas stay small. A local op's stamp replica always equals
// its origin (OpLog::make_local), so it is not carried at all; the encoder
// verifies this and falls back to an explicit "r" array if it ever breaks.
//
// The seed's per-op encoding is kept as encode_message_per_op() purely for
// byte accounting: bench_fig10a_sync and Table II's W_AN_e column report
// the batched format's savings against it on identical messages.
//
// Besides op-bearing messages the wire carries two more kinds, selected by
// a "k" field (absent = ops):
//
//   digest    {"k":"dig", "from":..., "o":[origin,...], "g":{doc:[row]}}
//             A compact advertisement of the sender's per-doc version
//             vectors: one shared origin table for the whole message (the
//             same replica ids repeat across doc units), then per doc a row
//             of seqs aligned to that table. Like op runs, rows after the
//             first are delta-encoded against the previous row; a zero
//             (after delta reconstruction) means "origin absent here".
//   bootstrap {"k":"boot", "from":..., "v":..., "b":<full CRDT state>}
//             Full-state transfer for a peer behind the sender's
//             compaction horizon (rejoin only).
//   snapshot  {"k":"snap", "from":..., "v":..., "sn":{doc:<snapshot>},
//              "d":{doc:[run,...]}}
//             Per-doc state snapshot (crdt::Snapshot encoding: observable
//             state without the op log) plus optional tail-op runs past
//             each snapshot's covered version. The cheap bootstrap: a
//             joining or rebooted replica installs the snapshots and
//             applies the tail instead of replaying full history.
//
// Ops messages additionally carry "t" (truncated: the delta was split at a
// byte budget; the rest follows in later rounds) and "rj" (this message is
// a rejoin response addressed to a recovering endpoint).
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "crdt/change.h"
#include "json/value.h"

namespace edgstr::crdt {

/// Thrown by decode_message on malformed wire payloads: truncated run
/// headers, mismatched run lengths, non-integral or out-of-range sequence
/// numbers, and same-origin runs that are not gap-free. Decoding validates
/// structure up front so hostile input is rejected with this error instead
/// of corrupting an op log (or worse) deep inside apply.
struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Version vector per named doc unit, as carried in sync messages.
using DocVersions = std::map<std::string, VersionVector>;

json::Value doc_versions_to_json(const DocVersions& versions);
DocVersions doc_versions_from_json(const json::Value& v);

/// What a sync message is: an op delta, a version-vector digest, a
/// full-state bootstrap transfer, or a snapshot + tail-ops bootstrap.
enum class SyncKind { kOps, kDigest, kBootstrap, kSnapshot };

/// One sync exchange. For kOps: the sender's versions plus, per doc unit,
/// the ops the receiver lacks (doc units with no pending ops are simply
/// absent). For kDigest: `versions` alone — the sender's advertisement that
/// the responder answers with exactly the missing ranges. For kBootstrap:
/// `bootstrap` carries the sender's full CRDT state.
struct SyncMessage {
  SyncKind kind = SyncKind::kOps;
  std::string from;                          ///< sender endpoint id
  DocVersions versions;                      ///< sender's version per doc unit
  std::map<std::string, std::vector<Op>> ops;  ///< doc unit -> pending ops
  /// kOps only: the delta was cut at a byte budget; `versions` is capped to
  /// what the included ops actually deliver, and the remainder rides later
  /// rounds (the receiver's next digest resumes the range automatically).
  bool truncated = false;
  /// Response addressed to a *recovering* endpoint (rejoin delta or
  /// bootstrap); regular endpoints drop it, recovering ones complete their
  /// rejoin when the final (non-truncated) piece lands.
  bool rejoin = false;
  /// kBootstrap only: full CRDT state of every doc unit.
  json::Value bootstrap;
  /// kSnapshot only: per-doc crdt::Snapshot encodings (doc -> snapshot);
  /// `ops` carries the tail past each snapshot's covered version.
  json::Value snapshot;

  std::size_t op_count() const;
};

/// Batched run-length encoding (the wire format actually shipped).
json::Value encode_message(const SyncMessage& message);
SyncMessage decode_message(const json::Value& wire);

/// Reference per-op encoding (the seed's format), for byte accounting only.
json::Value encode_message_per_op(const SyncMessage& message);

}  // namespace edgstr::crdt
