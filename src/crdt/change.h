// Change (op) log shared by the CRDT document types.
//
// EdgStr's CRDT structures expose the automerge-style API the paper names
// (§III-G): initialize / getChanges / applyChanges. Concretely, every local
// mutation appends an Op — (origin replica, per-replica sequence number,
// Lamport stamp, JSON payload) — and getChanges(since) returns the ops a
// peer has not seen according to its version vector. Ops are designed to be
// commutative (LWW stamps / OR-set tags) and idempotent (dedup by
// origin+seq), which is what makes the merge conflict-free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crdt/vector_clock.h"
#include "json/value.h"

namespace edgstr::crdt {

/// Lamport timestamp with replica tie-break: total order on events.
struct Stamp {
  std::uint64_t counter = 0;
  std::string replica;

  bool operator<(const Stamp& other) const {
    if (counter != other.counter) return counter < other.counter;
    return replica < other.replica;
  }
  bool operator==(const Stamp& other) const {
    return counter == other.counter && replica == other.replica;
  }
  json::Value to_json() const {
    return json::Value::object({{"c", static_cast<double>(counter)}, {"r", replica}});
  }
  static Stamp from_json(const json::Value& v) {
    return Stamp{static_cast<std::uint64_t>(v["c"].as_number()), v["r"].as_string()};
  }
};

/// One replicated operation. Treated as immutable once fully constructed
/// (the fields are filled in and never touched again), which is what lets
/// wire_size() cache its result.
struct Op {
  std::string origin;      ///< replica that generated the op
  std::uint64_t seq = 0;   ///< contiguous per-origin sequence number
  Stamp stamp;             ///< Lamport stamp for LWW resolution
  json::Value payload;     ///< CRDT-type-specific content

  json::Value to_json() const;
  static Op from_json(const json::Value& v);

  /// Self-describing per-op JSON size, used by sync byte accounting on
  /// every shipped op. Serializing the op is much more expensive than the
  /// accounting it feeds, so the size is computed once and cached; debug
  /// builds re-verify the cache against a fresh serialization.
  std::uint64_t wire_size() const;

 private:
  mutable std::uint64_t cached_wire_size_ = 0;  ///< 0 = not yet computed
};

/// Version vector: highest contiguous seq applied per origin replica.
using VersionVector = std::map<std::string, std::uint64_t>;

json::Value version_to_json(const VersionVector& version);
VersionVector version_from_json(const json::Value& v);

/// Op storage + dedup + delta computation, embedded by each CRDT type.
class OpLog {
 public:
  explicit OpLog(std::string replica_id) : replica_(std::move(replica_id)) {}

  const std::string& replica() const { return replica_; }

  /// Re-identifies the origin future local ops are minted under (the
  /// version vector, log, and Lamport clock are untouched). Used when a
  /// replica is reborn after a crash: its seq counter restarts from the
  /// recovered state, so minting under the *old* origin would collide with
  /// any pre-crash op that survived only at a third party — two different
  /// ops sharing an (origin, seq) identity, invisible to version vectors.
  void set_origin(std::string origin) { replica_ = std::move(origin); }

  /// Creates a new local op with the next seq and a fresh Lamport stamp.
  Op make_local(json::Value payload);

  /// Records an op (local or remote). Returns false when it was already
  /// known (idempotent delivery).
  bool record(const Op& op);

  /// True if (origin, seq) has been recorded.
  bool seen(const std::string& origin, std::uint64_t seq) const;

  /// Ops the peer with `known` lacks, in (origin, seq) order.
  std::vector<Op> changes_since(const VersionVector& known) const;

  /// Drops ops every peer has already acknowledged: an op (origin, seq) is
  /// removable once seq <= acked[origin]. The CRDT state is unaffected —
  /// compaction only bounds the log's memory. After compacting past some
  /// version, changes_since() can no longer serve peers *behind* that
  /// version (a brand-new replica must bootstrap from a state snapshot
  /// instead); compact_floor() reports the serving horizon. Returns the
  /// number of ops removed.
  std::size_t compact(const VersionVector& acked);

  /// Per-origin floor below which ops have been compacted away.
  const VersionVector& compact_floor() const { return floor_; }

  /// True if changes_since(known) can fully serve a peer at `known`.
  bool can_serve(const VersionVector& known) const;

  /// This log's own version vector.
  const VersionVector& version() const { return version_; }

  const std::vector<Op>& all_ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  /// Advances the Lamport clock past an observed stamp.
  void observe(const Stamp& stamp);

  /// Current Lamport clock value (snapshots carry it so an installing
  /// replica resumes stamping past everything the snapshot covers).
  std::uint64_t lamport() const { return lamport_; }

  /// Adopts a snapshot horizon: drops every retained op and sets both the
  /// version vector and the compaction floor to `covered` — the snapshot
  /// state stands in for all ops at or below it, so this log can apply (and
  /// serve) ops strictly past `covered` but can never replay history below
  /// it. The Lamport clock only ratchets forward; identity is untouched.
  void reset_to(const VersionVector& covered, std::uint64_t lamport);

  /// Serializes ops + version + floor + lamport (the "replica" field is
  /// provenance only; restore() keeps this log's own identity so a peer's
  /// bootstrap payload cannot hijack the local origin).
  json::Value to_json() const;
  void restore(const json::Value& v);

 private:
  std::string replica_;
  std::vector<Op> ops_;
  VersionVector version_;
  VersionVector floor_;  ///< highest compacted seq per origin
  std::uint64_t lamport_ = 0;
};

/// Pointwise minimum of version vectors (missing components count as 0).
VersionVector version_min(const VersionVector& a, const VersionVector& b);

}  // namespace edgstr::crdt
