// Replicated Growable Array (RGA): a list CRDT.
//
// Automerge — the CRDT library EdgStr delegates to — merges lists and text
// with an RGA-family algorithm: every element carries a unique id, inserts
// anchor after the id of their left neighbour, deletes tombstone. Merge of
// any two replicas is conflict-free: concurrent inserts after the same
// anchor order by (stamp, replica), which is identical on every replica.
//
// The sync engine uses the RGA for append-merge files (see crdt/files.h);
// it is also exposed directly as a building block for list-valued state.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crdt/change.h"
#include "json/value.h"

namespace edgstr::crdt {

/// Unique element identifier: the stamp of the insert op.
struct ElementId {
  Stamp stamp;

  bool is_head() const { return stamp.counter == 0 && stamp.replica.empty(); }
  bool operator<(const ElementId& other) const { return stamp < other.stamp; }
  bool operator==(const ElementId& other) const { return stamp == other.stamp; }

  static ElementId head() { return ElementId{}; }
  json::Value to_json() const { return stamp.to_json(); }
  static ElementId from_json(const json::Value& v) { return ElementId{Stamp::from_json(v)}; }
};

class Rga {
 public:
  explicit Rga(std::string replica_id) : log_(std::move(replica_id)) {}

  const std::string& replica() const { return log_.replica(); }

  /// Inserts `value` after the element `anchor` (ElementId::head() for the
  /// front). Returns the new element's id.
  ElementId insert_after(const ElementId& anchor, json::Value value);

  /// Appends at the logical end.
  ElementId push_back(json::Value value);

  /// Tombstones an element. Idempotent; unknown ids are ignored.
  void erase(const ElementId& id);

  /// Live elements, in list order.
  std::vector<json::Value> values() const;
  /// Live (id, value) pairs in list order.
  std::vector<std::pair<ElementId, json::Value>> entries() const;
  std::size_t size() const;

  std::vector<Op> getChanges(const VersionVector& known) const {
    return log_.changes_since(known);
  }
  std::size_t applyChanges(const std::vector<Op>& ops);

  const VersionVector& version() const { return log_.version(); }

  /// Drops ops all peers have acknowledged (see OpLog::compact).
  std::size_t compact(const VersionVector& acked) { return log_.compact(acked); }
  std::size_t op_count() const { return log_.size(); }

  bool converged_with(const Rga& other) const { return values() == other.values(); }

  json::Value to_json() const;  ///< live values as a JSON array

 private:
  struct Element {
    ElementId id;
    json::Value value;
    bool tombstone = false;
    std::vector<Element> children;  ///< inserts anchored at this element
  };

  OpLog log_;
  Element root_{ElementId::head(), json::Value(), true, {}};
  std::map<Stamp, bool> known_elements_;  ///< insert dedup by element stamp

  Element* find(Element& node, const ElementId& id);
  void apply_insert(const ElementId& anchor, const ElementId& id, json::Value value);
  void apply_erase(Element& node, const ElementId& id);
  void collect(const Element& node, std::vector<std::pair<ElementId, json::Value>>& out) const;
  void apply_payload(const Op& op);
};

}  // namespace edgstr::crdt
