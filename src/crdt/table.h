// CRDT-Table: replicated database tables (§III-G).
//
// Bridges the MiniSQL Database's row-mutation log and the CRDT op stream.
// Rows are identified by a *global key* "origin:rid" so rows inserted
// concurrently at different replicas never collide even when their local
// rids do; a rid-translation map reconciles global keys with each replica's
// local storage. Concurrent updates to the same row resolve by LWW stamp.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crdt/change.h"
#include "crdt/lww.h"
#include "crdt/replicated_doc.h"
#include "sqldb/database.h"

namespace edgstr::crdt {

class CrdtTable : public ReplicatedDoc {
 public:
  /// `db` is the replica's local database (the materialized view).
  CrdtTable(std::string replica_id, sqldb::Database* db);

  const std::string& replica() const { return log_.replica(); }

  /// Restores the shared snapshot into the local database and keys every
  /// baseline row as "init:<rid>". Every replica must initialize from the
  /// same snapshot (the checkpointed init state of §III-B). Re-entrant:
  /// calling it again first discards all CRDT state (the crash/rebirth
  /// path of the simulation harness).
  void initialize(const json::Value& db_snapshot);

  /// Cloud-master variant: keys the *current* database contents as the
  /// baseline without restoring. The database must hold exactly the state
  /// the snapshot shipped to the edges (same tables, rows, and rids), which
  /// the deployment builder guarantees by snapshotting atomically.
  void attach_existing();

  /// Converts mutations the local service has committed (drained from the
  /// Database's mutation log) into CRDT ops. Call after each execution.
  /// Returns the number of ops generated.
  std::size_t record_local_mutations();

  std::vector<Op> getChanges(const VersionVector& known) const {
    return log_.changes_since(known);
  }
  /// Applies remote ops to the CRDT state and materializes the effect into
  /// the local database. Returns how many ops were new.
  std::size_t applyChanges(const std::vector<Op>& ops);

  const VersionVector& version() const override { return log_.version(); }

  /// Drops ops all peers have acknowledged (see OpLog::compact).
  std::size_t compact(const VersionVector& acked) override { return log_.compact(acked); }
  bool can_serve(const VersionVector& known) const override { return log_.can_serve(known); }
  std::size_t op_count() const override { return log_.size(); }

  // ReplicatedDoc life cycle (the generic sync path).
  std::size_t record_local() override { return record_local_mutations(); }
  std::vector<Op> changes_since(const VersionVector& known) const override {
    return getChanges(known);
  }
  std::size_t apply(const std::vector<Op>& ops) override { return applyChanges(ops); }
  std::string state_digest() const override { return rows_.digest(); }
  json::Value bootstrap_state() const override;
  void restore_bootstrap(const json::Value& v) override;
  Snapshot cut_snapshot() const override;
  void install_snapshot(const Snapshot& snap) override;
  void set_origin(const std::string& origin) override { log_.set_origin(origin); }

  /// Observable-state convergence: live rows by global key.
  bool converged_with(const CrdtTable& other) const { return rows_ == other.rows_; }

  /// Number of live replicated rows.
  std::size_t live_rows() const { return rows_.live_size(); }

 private:
  OpLog log_;
  sqldb::Database* db_;
  LwwMap rows_;  ///< global key -> {"table": ..., "cells": [...]}

  std::map<std::string, std::uint64_t> key_to_rid_;  ///< global key -> local rid
  std::map<std::string, std::map<std::uint64_t, std::string>> rid_to_key_;  ///< per table

  std::string key_for(const std::string& table, std::uint64_t rid);
  void materialize(const std::string& key);
};

}  // namespace edgstr::crdt
