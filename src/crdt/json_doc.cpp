#include "crdt/json_doc.h"

namespace edgstr::crdt {

void CrdtJson::initialize(const json::Value& snapshot) {
  // Self-clearing so re-initialization models a crashed replica reborn from
  // the checkpoint: all volatile CRDT state is lost, only identity survives.
  log_ = OpLog(log_.replica());
  state_ = LwwMap();
  // Baseline entries carry the zero stamp so any replicated op wins.
  for (const auto& [key, value] : snapshot.as_object()) {
    state_.put(key, value, Stamp{0, ""});
  }
}

void CrdtJson::set(const std::string& key, json::Value value) {
  Op op = log_.make_local(
      json::Value::object({{"type", "set"}, {"key", key}, {"value", value}}));
  log_.record(op);
  state_.put(key, std::move(value), op.stamp);
}

void CrdtJson::remove(const std::string& key) {
  Op op = log_.make_local(json::Value::object({{"type", "del"}, {"key", key}}));
  log_.record(op);
  state_.remove(key, op.stamp);
}

std::size_t CrdtJson::sync_from(const json::Value& current) {
  std::size_t ops = 0;
  // New or changed keys.
  for (const auto& [key, value] : current.as_object()) {
    const std::optional<json::Value> existing = state_.get(key);
    if (!existing || !(*existing == value)) {
      set(key, value);
      ++ops;
    }
  }
  // Keys removed from the live state.
  for (const std::string& key : state_.keys()) {
    if (!current.find(key)) {
      remove(key);
      ++ops;
    }
  }
  return ops;
}

void CrdtJson::apply_payload(const json::Value& payload, const Stamp& stamp) {
  const std::string& type = payload["type"].as_string();
  const std::string& key = payload["key"].as_string();
  if (type == "set") {
    state_.put(key, payload["value"], stamp);
  } else if (type == "del") {
    state_.remove(key, stamp);
  }
}

std::size_t CrdtJson::applyChanges(const std::vector<Op>& ops) {
  std::size_t applied = 0;
  for (const Op& op : ops) {
    // Dedup is purely seen-based: after a crash wipes the log, this replica
    // recovers its *own* earlier ops from peers through the same path.
    if (log_.seen(op.origin, op.seq)) continue;
    log_.record(op);
    apply_payload(op.payload, op.stamp);
    ++applied;
  }
  return applied;
}

json::Value CrdtJson::bootstrap_state() const {
  return json::Value::object({{"state", state_.to_json()}, {"log", log_.to_json()}});
}

void CrdtJson::restore_bootstrap(const json::Value& v) {
  state_ = LwwMap::from_json(v["state"]);
  log_.restore(v["log"]);
  // Live-state materialization (interpreter globals) is the owner's job:
  // ReplicaState re-seeds the interpreter from materialize() afterwards.
}

Snapshot CrdtJson::cut_snapshot() const {
  Snapshot snap;
  snap.state = json::Value::object({{"state", state_.to_json()}});
  snap.covered = log_.version();
  snap.lamport = log_.lamport();
  snap.digest = Snapshot::content_digest(snap.state);
  return snap;
}

void CrdtJson::install_snapshot(const Snapshot& snap) {
  state_ = LwwMap::from_json(snap.state["state"]);
  log_.reset_to(snap.covered, snap.lamport);
  // Live-state materialization (interpreter globals) is the owner's job,
  // exactly as for restore_bootstrap().
}

json::Value CrdtJson::materialize() const {
  json::Object obj;
  for (const std::string& key : state_.keys()) obj.set(key, *state_.get(key));
  return json::Value(std::move(obj));
}

}  // namespace edgstr::crdt
