// Vector clocks: causality tracking across replicas.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "json/value.h"

namespace edgstr::crdt {

enum class Ordering { kBefore, kAfter, kEqual, kConcurrent };

/// Classic vector clock keyed by replica id.
class VectorClock {
 public:
  std::uint64_t get(const std::string& replica) const;
  void set(const std::string& replica, std::uint64_t value);
  /// Bumps this replica's component by one and returns the new value.
  std::uint64_t increment(const std::string& replica);
  /// Pointwise maximum.
  void merge(const VectorClock& other);

  Ordering compare(const VectorClock& other) const;
  bool dominates(const VectorClock& other) const {
    const Ordering o = compare(other);
    return o == Ordering::kAfter || o == Ordering::kEqual;
  }
  bool concurrent_with(const VectorClock& other) const {
    return compare(other) == Ordering::kConcurrent;
  }

  const std::map<std::string, std::uint64_t>& components() const { return clock_; }
  bool operator==(const VectorClock& other) const { return clock_ == other.clock_; }

  json::Value to_json() const;
  static VectorClock from_json(const json::Value& v);

 private:
  std::map<std::string, std::uint64_t> clock_;
};

}  // namespace edgstr::crdt
