#include "crdt/change.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace edgstr::crdt {

json::Value Op::to_json() const {
  return json::Value::object({{"origin", origin},
                              {"seq", static_cast<double>(seq)},
                              {"stamp", stamp.to_json()},
                              {"payload", payload}});
}

std::uint64_t Op::wire_size() const {
  if (cached_wire_size_ == 0) cached_wire_size_ = to_json().wire_size();
  // Micro-assertion: an op must not change after its size was cached.
  assert(cached_wire_size_ == to_json().wire_size() && "Op mutated after wire_size()");
  return cached_wire_size_;
}

Op Op::from_json(const json::Value& v) {
  Op op;
  op.origin = v["origin"].as_string();
  op.seq = static_cast<std::uint64_t>(v["seq"].as_number());
  op.stamp = Stamp::from_json(v["stamp"]);
  op.payload = v["payload"];
  return op;
}

json::Value version_to_json(const VersionVector& version) {
  json::Object obj;
  for (const auto& [replica, seq] : version) obj.set(replica, static_cast<double>(seq));
  return json::Value(std::move(obj));
}

VersionVector version_from_json(const json::Value& v) {
  VersionVector version;
  for (const auto& [replica, seq] : v.as_object()) {
    version[replica] = static_cast<std::uint64_t>(seq.as_number());
  }
  return version;
}

Op OpLog::make_local(json::Value payload) {
  Op op;
  op.origin = replica_;
  op.seq = version_[replica_] + 1;
  op.stamp = Stamp{++lamport_, replica_};
  op.payload = std::move(payload);
  return op;
}

bool OpLog::seen(const std::string& origin, std::uint64_t seq) const {
  auto it = version_.find(origin);
  return it != version_.end() && seq <= it->second;
}

bool OpLog::record(const Op& op) {
  const std::uint64_t expected = version_[op.origin] + 1;
  if (op.seq < expected) return false;  // duplicate
  if (op.seq > expected) {
    // Ops from one origin are generated and shipped in order; a gap means
    // the transport reordered within a single batch, which the sync engine
    // never does. Fail loudly rather than corrupt causality.
    throw std::logic_error("OpLog: out-of-order op from " + op.origin + " (seq " +
                           std::to_string(op.seq) + ", expected " + std::to_string(expected) + ")");
  }
  version_[op.origin] = op.seq;
  ops_.push_back(op);
  observe(op.stamp);
  return true;
}

void OpLog::observe(const Stamp& stamp) {
  if (stamp.counter > lamport_) lamport_ = stamp.counter;
}

void OpLog::reset_to(const VersionVector& covered, std::uint64_t lamport) {
  ops_.clear();
  version_ = covered;
  floor_ = covered;
  if (lamport > lamport_) lamport_ = lamport;
}

VersionVector version_min(const VersionVector& a, const VersionVector& b) {
  VersionVector out;
  for (const auto& [origin, seq] : a) {
    auto it = b.find(origin);
    out[origin] = it == b.end() ? 0 : std::min(seq, it->second);
  }
  // Components present only in b floor to 0 and can be omitted entirely.
  return out;
}

std::size_t OpLog::compact(const VersionVector& acked) {
  const std::size_t before = ops_.size();
  ops_.erase(std::remove_if(ops_.begin(), ops_.end(),
                            [&](const Op& op) {
                              auto it = acked.find(op.origin);
                              return it != acked.end() && op.seq <= it->second;
                            }),
             ops_.end());
  for (const auto& [origin, seq] : acked) {
    auto it = floor_.find(origin);
    if (it == floor_.end() || it->second < seq) floor_[origin] = seq;
  }
  return before - ops_.size();
}

bool OpLog::can_serve(const VersionVector& known) const {
  for (const auto& [origin, compacted_to] : floor_) {
    auto it = known.find(origin);
    const std::uint64_t has = it == known.end() ? 0 : it->second;
    if (has < compacted_to) return false;  // would need compacted ops
  }
  return true;
}

std::vector<Op> OpLog::changes_since(const VersionVector& known) const {
  std::vector<Op> out;
  for (const Op& op : ops_) {
    auto it = known.find(op.origin);
    const std::uint64_t have = it == known.end() ? 0 : it->second;
    if (op.seq > have) out.push_back(op);
  }
  return out;
}

json::Value OpLog::to_json() const {
  json::Array ops;
  for (const Op& op : ops_) ops.push_back(op.to_json());
  // version and floor are carried explicitly: after compaction the retained
  // ops alone no longer determine either (a restored log must keep refusing
  // to serve peers behind the compaction horizon).
  return json::Value::object({{"replica", replica_},
                              {"ops", json::Value(std::move(ops))},
                              {"version", version_to_json(version_)},
                              {"floor", version_to_json(floor_)},
                              {"lamport", static_cast<double>(lamport_)}});
}

void OpLog::restore(const json::Value& v) {
  // replica_ is deliberately NOT restored: a bootstrap payload comes from a
  // peer, and adopting its identity would make this log mint ops under the
  // peer's origin. The serialized "replica" field is provenance only.
  lamport_ = static_cast<std::uint64_t>(v["lamport"].as_number());
  ops_.clear();
  version_.clear();
  floor_.clear();
  for (const json::Value& op : v["ops"].as_array()) {
    const Op parsed = Op::from_json(op);
    version_[parsed.origin] = parsed.seq;
    ops_.push_back(parsed);
  }
  // Older serializations carried only the ops; derive what we can.
  if (const json::Value* version = v.find("version")) version_ = version_from_json(*version);
  if (const json::Value* floor = v.find("floor")) floor_ = version_from_json(*floor);
}

}  // namespace edgstr::crdt
