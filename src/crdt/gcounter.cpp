#include "crdt/gcounter.h"

namespace edgstr::crdt {

void GCounter::increment(const std::string& replica, std::uint64_t by) {
  tallies_[replica] += by;
}

std::uint64_t GCounter::value() const {
  std::uint64_t total = 0;
  for (const auto& [replica, tally] : tallies_) total += tally;
  return total;
}

std::uint64_t GCounter::local(const std::string& replica) const {
  auto it = tallies_.find(replica);
  return it == tallies_.end() ? 0 : it->second;
}

void GCounter::merge(const GCounter& other) {
  for (const auto& [replica, tally] : other.tallies_) {
    auto it = tallies_.find(replica);
    if (it == tallies_.end() || it->second < tally) tallies_[replica] = tally;
  }
}

json::Value GCounter::to_json() const {
  json::Object obj;
  for (const auto& [replica, tally] : tallies_) obj.set(replica, static_cast<double>(tally));
  return json::Value(std::move(obj));
}

GCounter GCounter::from_json(const json::Value& v) {
  GCounter c;
  for (const auto& [replica, tally] : v.as_object()) {
    c.tallies_[replica] = static_cast<std::uint64_t>(tally.as_number());
  }
  return c;
}

}  // namespace edgstr::crdt
