#include "crdt/snapshot.h"

#include <stdexcept>

#include "util/strings.h"

namespace edgstr::crdt {

namespace {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string Snapshot::content_digest(const json::Value& state) {
  return hex64(util::fnv1a(state.dump()));
}

json::Value Snapshot::to_json() const {
  return json::Value::object({{"state", state},
                              {"v", version_to_json(covered)},
                              {"lam", static_cast<double>(lamport)},
                              {"dig", digest.empty() ? content_digest(state) : digest}});
}

Snapshot Snapshot::from_json(const json::Value& v) {
  Snapshot snap;
  snap.state = v["state"];
  snap.covered = version_from_json(v["v"]);
  snap.lamport = static_cast<std::uint64_t>(v["lam"].as_number());
  snap.digest = v["dig"].as_string();
  if (snap.digest != content_digest(snap.state)) {
    throw std::runtime_error("Snapshot: content digest mismatch (corrupt snapshot)");
  }
  return snap;
}

}  // namespace edgstr::crdt
