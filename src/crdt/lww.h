// State-based Last-Writer-Wins register and map.
//
// These are the foundational convergent types: merge is join (max by
// stamp), which is commutative, associative, and idempotent — the property
// suite verifies all three under random interleavings.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crdt/change.h"
#include "json/value.h"

namespace edgstr::crdt {

/// A single replicated cell resolved by latest Stamp.
class LwwRegister {
 public:
  LwwRegister() = default;

  const json::Value& value() const { return value_; }
  const Stamp& stamp() const { return stamp_; }
  bool assigned() const { return stamp_.counter > 0; }

  /// Local write with an explicit stamp (stamps come from the OpLog's
  /// Lamport clock so cross-replica writes are totally ordered).
  void set(json::Value value, Stamp stamp);

  /// Join: keeps the entry with the larger stamp.
  void merge(const LwwRegister& other);

  bool operator==(const LwwRegister& other) const {
    return value_ == other.value_ && stamp_ == other.stamp_;
  }

  json::Value to_json() const;
  static LwwRegister from_json(const json::Value& v);

 private:
  json::Value value_;
  Stamp stamp_;
};

/// Keyed LWW entries with tombstoned removal.
class LwwMap {
 public:
  /// Non-deleted value for a key, if any.
  std::optional<json::Value> get(const std::string& key) const;
  bool contains(const std::string& key) const { return get(key).has_value(); }

  void put(const std::string& key, json::Value value, Stamp stamp);
  void remove(const std::string& key, Stamp stamp);

  /// Join: pointwise LWW merge (delete vs write also resolves by stamp).
  void merge(const LwwMap& other);

  /// Live (non-tombstoned) keys.
  std::vector<std::string> keys() const;
  /// Every key ever written, including tombstoned ones — what a restored
  /// replica must re-materialize (tombstones drive local deletions).
  std::vector<std::string> all_keys() const;
  std::size_t live_size() const { return keys().size(); }

  bool operator==(const LwwMap& other) const;

  /// Deterministic serialization of the *observable* state (live keys and
  /// values, no stamps or tombstones) — equal digests iff operator== holds.
  std::string digest() const;

  json::Value to_json() const;
  static LwwMap from_json(const json::Value& v);

 private:
  struct Entry {
    json::Value value;
    Stamp stamp;
    bool deleted = false;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace edgstr::crdt
