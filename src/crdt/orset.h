// Observed-Remove Set (OR-Set).
//
// Add wins over concurrent remove: each add carries a unique tag; remove
// tombstones only the tags it has observed. Used for replicated collections
// where concurrent insertion of the same logical element must survive.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "json/value.h"

namespace edgstr::crdt {

class OrSet {
 public:
  /// Adds the element with a fresh unique tag (replica + counter).
  void add(const std::string& element, const std::string& replica);

  /// Removes all currently-observed tags of the element.
  void remove(const std::string& element);

  bool contains(const std::string& element) const;
  std::vector<std::string> elements() const;
  std::size_t size() const { return elements().size(); }

  /// Join: union of adds and removes.
  void merge(const OrSet& other);

  bool operator==(const OrSet& other) const { return elements() == other.elements(); }

  json::Value to_json() const;
  static OrSet from_json(const json::Value& v);

 private:
  // element -> live tags; removed tags move to tombstones_.
  std::map<std::string, std::set<std::string>> adds_;
  std::set<std::string> tombstones_;
  std::map<std::string, std::uint64_t> tag_counters_;  ///< per-replica tag uniqueness
};

}  // namespace edgstr::crdt
