// CRDT-JSON: replicated key/value document for "global variables" (§III-G).
//
// Each replicated global variable is one top-level key. Local state changes
// become LWW put/del ops in the embedded OpLog; the automerge-style API —
// initialize / getChanges / applyChanges — is what the generated replica
// code calls.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crdt/change.h"
#include "crdt/lww.h"

namespace edgstr::crdt {

class CrdtJson {
 public:
  explicit CrdtJson(std::string replica_id) : log_(std::move(replica_id)) {}

  const std::string& replica() const { return log_.replica(); }

  /// Seeds the document with a shared snapshot (an object of key->value).
  /// All replicas must initialize from the same snapshot; the baseline is
  /// not itself replicated as ops.
  void initialize(const json::Value& snapshot);

  /// Local write/remove; generates one op.
  void set(const std::string& key, json::Value value);
  void remove(const std::string& key);

  std::optional<json::Value> get(const std::string& key) const { return state_.get(key); }
  std::vector<std::string> keys() const { return state_.keys(); }

  /// Diffs `current` (an object of key->value) against the replicated
  /// state and emits set/remove ops for every difference. This is the hook
  /// the generated service code calls after each execution to connect
  /// "service state changes to CRDT update operations".
  /// Returns the number of ops generated.
  std::size_t sync_from(const json::Value& current);

  /// Ops the peer lacks.
  std::vector<Op> getChanges(const VersionVector& known) const {
    return log_.changes_since(known);
  }
  /// Applies remote ops (idempotent); returns how many were new.
  std::size_t applyChanges(const std::vector<Op>& ops);

  const VersionVector& version() const { return log_.version(); }

  /// Drops ops all peers have acknowledged (see OpLog::compact).
  std::size_t compact(const VersionVector& acked) { return log_.compact(acked); }
  std::size_t op_count() const { return log_.size(); }

  /// Live document as a JSON object.
  json::Value materialize() const;

  /// Observable-state equality (convergence check).
  bool converged_with(const CrdtJson& other) const { return state_ == other.state_; }

 private:
  OpLog log_;
  LwwMap state_;

  void apply_payload(const json::Value& payload, const Stamp& stamp);
};

}  // namespace edgstr::crdt
