// CRDT-JSON: replicated key/value document for "global variables" (§III-G).
//
// Each replicated global variable is one top-level key. Local state changes
// become LWW put/del ops in the embedded OpLog; the automerge-style API —
// initialize / getChanges / applyChanges — is what the generated replica
// code calls.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "crdt/change.h"
#include "crdt/lww.h"
#include "crdt/replicated_doc.h"

namespace edgstr::crdt {

class CrdtJson : public ReplicatedDoc {
 public:
  explicit CrdtJson(std::string replica_id) : log_(std::move(replica_id)) {}

  /// Hook returning the live local document (e.g. the interpreter's
  /// replicated globals); record_local() diffs against it via sync_from().
  void set_local_source(std::function<json::Value()> source) { source_ = std::move(source); }

  /// Hook invoked after apply() with the applied ops, so the owner can
  /// materialize remote writes back into the live state (e.g. interpreter
  /// globals). Not called for the manual applyChanges() path.
  void set_apply_hook(std::function<void(const std::vector<Op>&)> hook) {
    apply_hook_ = std::move(hook);
  }

  const std::string& replica() const { return log_.replica(); }

  /// Seeds the document with a shared snapshot (an object of key->value).
  /// All replicas must initialize from the same snapshot; the baseline is
  /// not itself replicated as ops. Re-entrant: calling it again first
  /// discards all CRDT state (crash/rebirth).
  void initialize(const json::Value& snapshot);

  /// Local write/remove; generates one op.
  void set(const std::string& key, json::Value value);
  void remove(const std::string& key);

  std::optional<json::Value> get(const std::string& key) const { return state_.get(key); }
  std::vector<std::string> keys() const { return state_.keys(); }

  /// Diffs `current` (an object of key->value) against the replicated
  /// state and emits set/remove ops for every difference. This is the hook
  /// the generated service code calls after each execution to connect
  /// "service state changes to CRDT update operations".
  /// Returns the number of ops generated.
  std::size_t sync_from(const json::Value& current);

  /// Ops the peer lacks.
  std::vector<Op> getChanges(const VersionVector& known) const {
    return log_.changes_since(known);
  }
  /// Applies remote ops (idempotent); returns how many were new.
  std::size_t applyChanges(const std::vector<Op>& ops);

  const VersionVector& version() const override { return log_.version(); }

  /// Drops ops all peers have acknowledged (see OpLog::compact).
  std::size_t compact(const VersionVector& acked) override { return log_.compact(acked); }
  bool can_serve(const VersionVector& known) const override { return log_.can_serve(known); }
  std::size_t op_count() const override { return log_.size(); }

  // ReplicatedDoc life cycle (the generic sync path).
  std::size_t record_local() override { return source_ ? sync_from(source_()) : 0; }
  std::vector<Op> changes_since(const VersionVector& known) const override {
    return getChanges(known);
  }
  std::size_t apply(const std::vector<Op>& ops) override {
    const std::size_t applied = applyChanges(ops);
    if (apply_hook_) apply_hook_(ops);
    return applied;
  }
  std::string state_digest() const override { return state_.digest(); }
  json::Value bootstrap_state() const override;
  void restore_bootstrap(const json::Value& v) override;
  Snapshot cut_snapshot() const override;
  void install_snapshot(const Snapshot& snap) override;
  void set_origin(const std::string& origin) override { log_.set_origin(origin); }

  /// Live document as a JSON object.
  json::Value materialize() const;

  /// Observable-state equality (convergence check).
  bool converged_with(const CrdtJson& other) const { return state_ == other.state_; }

 private:
  OpLog log_;
  LwwMap state_;
  std::function<json::Value()> source_;
  std::function<void(const std::vector<Op>&)> apply_hook_;

  void apply_payload(const json::Value& payload, const Stamp& stamp);
};

}  // namespace edgstr::crdt
