// Consistent per-doc state snapshots for cold-start bootstrap.
//
// A Snapshot is the observable CRDT state of one doc unit — rows, files,
// key/value entries — WITHOUT the retained op log, plus the version vector
// the state covers. That split is the whole point: a doc that has seen 10^5
// ops over 10^3 keys serializes to ~10^3 entries, so shipping a snapshot
// and the op tail past `covered` is an order of magnitude cheaper than
// replaying history (bench_bootstrap quantifies it). The same encoding is
// what the durable op log checkpoints to disk, so a rebooted replica can
// reload the snapshot and replay only the durable tail.
//
// Encoding is deterministic: the state payloads come from std::map-backed
// structures serialized in key order, so equal states produce byte-equal
// encodings and the content digest doubles as an end-to-end integrity and
// equivalence check (install verifies it before adopting anything).
#pragma once

#include <cstdint>
#include <string>

#include "crdt/change.h"
#include "json/value.h"

namespace edgstr::crdt {

struct Snapshot {
  json::Value state;      ///< doc-type-specific observable state (no ops)
  VersionVector covered;  ///< version vector the state accounts for
  std::uint64_t lamport = 0;  ///< Lamport clock at the cut (installers resume past it)
  std::string digest;     ///< content digest of `state` (fnv1a over the encoding)

  /// Digest of a state payload; to_json() stamps it, install verifies it.
  static std::string content_digest(const json::Value& state);

  /// Deterministic encoding: {"state":..., "v":..., "lam":..., "dig":...}.
  json::Value to_json() const;

  /// Parses and verifies the content digest; throws std::runtime_error on
  /// a digest mismatch (a torn or tampered snapshot must never install).
  static Snapshot from_json(const json::Value& v);
};

}  // namespace edgstr::crdt
