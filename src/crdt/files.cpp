#include "crdt/files.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace edgstr::crdt {

CrdtFiles::CrdtFiles(std::string replica_id, vfs::Vfs* fs)
    : log_(std::move(replica_id)), fs_(fs) {
  if (!fs_) throw std::invalid_argument("CrdtFiles: null vfs");
}

bool CrdtFiles::is_append_merge(const std::string& path) const {
  for (const std::string& suffix : append_suffixes_) {
    if (util::ends_with(path, suffix)) return true;
  }
  return false;
}

void CrdtFiles::seed_baseline() {
  known_versions_.clear();
  last_contents_.clear();
  for (const std::string& path : fs_->list()) {
    known_versions_[path] = fs_->version(path);
    if (is_replicated(path)) {
      const std::string& contents = fs_->read(path);
      files_.put(path, json::Value(contents), Stamp{0, ""});
      last_contents_[path] = contents;
    }
  }
}

void CrdtFiles::initialize(const json::Value& vfs_snapshot,
                           std::set<std::string> replicated_paths) {
  // Self-clearing so re-initialization models a crashed replica reborn from
  // the checkpoint: all volatile CRDT state is lost, only identity survives.
  log_ = OpLog(log_.replica());
  files_ = LwwMap();
  appends_.clear();
  fs_->restore(vfs_snapshot);
  attach_existing(std::move(replicated_paths));
}

void CrdtFiles::attach_existing(std::set<std::string> replicated_paths) {
  replicated_paths_ = std::move(replicated_paths);
  seed_baseline();
}

bool CrdtFiles::materialize_path(const std::string& path, std::string* out) const {
  const std::optional<json::Value> base = files_.get(path);
  if (!base) return false;
  std::string content = base->as_string();
  auto it = appends_.find(path);
  if (it != appends_.end()) {
    // Appends older than the winning base write were superseded by it.
    // The base stamp is not directly exposed by LwwMap, so appends carry
    // responsibility: a put clears the path's local tail at apply time;
    // tails only hold appends at-or-after the last observed base.
    for (const AppendEntry& entry : it->second) content += entry.data;
  }
  *out = std::move(content);
  return true;
}

void CrdtFiles::sync_local_file(const std::string& path) {
  std::string content;
  if (materialize_path(path, &content)) {
    if (!fs_->exists(path) || fs_->read(path) != content) {
      fs_->write(path, content);
    }
    last_contents_[path] = content;
    known_versions_[path] = fs_->version(path);
  } else {
    if (fs_->exists(path)) fs_->remove(path);
    known_versions_.erase(path);
    last_contents_.erase(path);
  }
}

std::size_t CrdtFiles::record_local_changes() {
  std::size_t count = 0;
  std::set<std::string> current;
  for (const std::string& path : fs_->list()) {
    current.insert(path);
    if (!is_replicated(path)) continue;
    const std::uint64_t version = fs_->version(path);
    auto it = known_versions_.find(path);
    if (it != known_versions_.end() && it->second == version) continue;
    known_versions_[path] = version;

    const std::string& contents = fs_->read(path);
    const auto last = last_contents_.find(path);
    const bool pure_append = is_append_merge(path) && last != last_contents_.end() &&
                             contents.size() > last->second.size() &&
                             util::starts_with(contents, last->second);
    if (pure_append) {
      const std::string suffix = contents.substr(last->second.size());
      Op op = log_.make_local(
          json::Value::object({{"type", "append"}, {"path", path}, {"data", suffix}}));
      log_.record(op);
      appends_[path].push_back(AppendEntry{op.stamp, suffix});
    } else {
      Op op = log_.make_local(json::Value::object(
          {{"type", "put"}, {"path", path}, {"contents", contents}}));
      log_.record(op);
      files_.put(path, json::Value(contents), op.stamp);
      appends_[path].clear();  // rewrite supersedes the tail
    }
    last_contents_[path] = contents;
    ++count;
  }
  // Removed files.
  for (auto it = known_versions_.begin(); it != known_versions_.end();) {
    if (!current.count(it->first)) {
      if (is_replicated(it->first)) {
        Op op = log_.make_local(
            json::Value::object({{"type", "del"}, {"path", it->first}}));
        log_.record(op);
        files_.remove(it->first, op.stamp);
        appends_[it->first].clear();
        ++count;
      }
      last_contents_.erase(it->first);
      it = known_versions_.erase(it);
    } else {
      ++it;
    }
  }
  return count;
}

std::size_t CrdtFiles::applyChanges(const std::vector<Op>& ops) {
  std::size_t applied = 0;
  for (const Op& op : ops) {
    // Dedup is purely seen-based: after a crash wipes the log, this replica
    // recovers its *own* earlier ops from peers through the same path.
    if (log_.seen(op.origin, op.seq)) continue;
    log_.record(op);
    const std::string& type = op.payload["type"].as_string();
    const std::string& path = op.payload["path"].as_string();
    if (type == "put") {
      // A rewrite wins over the base by stamp; it also supersedes every
      // append older than it. Appends concurrent-or-newer survive on top.
      files_.put(path, op.payload["contents"], op.stamp);
      auto& tail = appends_[path];
      tail.erase(std::remove_if(tail.begin(), tail.end(),
                                [&](const AppendEntry& e) { return e.stamp < op.stamp; }),
                 tail.end());
    } else if (type == "append") {
      auto& tail = appends_[path];
      const AppendEntry entry{op.stamp, op.payload["data"].as_string()};
      tail.insert(std::upper_bound(tail.begin(), tail.end(), entry), entry);
    } else {  // del
      files_.remove(path, op.stamp);
      auto& tail = appends_[path];
      tail.erase(std::remove_if(tail.begin(), tail.end(),
                                [&](const AppendEntry& e) { return e.stamp < op.stamp; }),
                 tail.end());
    }
    sync_local_file(path);
    ++applied;
  }
  return applied;
}

json::Value CrdtFiles::bootstrap_state() const {
  json::Object appends;
  for (const auto& [path, tail] : appends_) {
    json::Array entries;
    for (const AppendEntry& entry : tail) {
      entries.push_back(
          json::Value::object({{"stamp", entry.stamp.to_json()}, {"data", entry.data}}));
    }
    appends.set(path, json::Value(std::move(entries)));
  }
  return json::Value::object({{"files", files_.to_json()},
                              {"appends", json::Value(std::move(appends))},
                              {"log", log_.to_json()}});
}

void CrdtFiles::restore_bootstrap(const json::Value& v) {
  files_ = LwwMap::from_json(v["files"]);
  appends_.clear();
  for (const auto& [path, entries] : v["appends"].as_object()) {
    std::vector<AppendEntry>& tail = appends_[path];
    for (const json::Value& entry : entries.as_array()) {
      tail.push_back(AppendEntry{Stamp::from_json(entry["stamp"]), entry["data"].as_string()});
    }
  }
  // Re-materialize everything, tombstones included (they delete baseline
  // files the snapshot restore resurrected).
  log_.restore(v["log"]);
  std::set<std::string> paths;
  for (const std::string& path : files_.all_keys()) paths.insert(path);
  for (const auto& [path, tail] : appends_) paths.insert(path);
  for (const std::string& path : paths) sync_local_file(path);
}

Snapshot CrdtFiles::cut_snapshot() const {
  json::Object appends;
  for (const auto& [path, tail] : appends_) {
    json::Array entries;
    for (const AppendEntry& entry : tail) {
      entries.push_back(
          json::Value::object({{"stamp", entry.stamp.to_json()}, {"data", entry.data}}));
    }
    appends.set(path, json::Value(std::move(entries)));
  }
  Snapshot snap;
  snap.state = json::Value::object(
      {{"files", files_.to_json()}, {"appends", json::Value(std::move(appends))}});
  snap.covered = log_.version();
  snap.lamport = log_.lamport();
  snap.digest = Snapshot::content_digest(snap.state);
  return snap;
}

void CrdtFiles::install_snapshot(const Snapshot& snap) {
  files_ = LwwMap::from_json(snap.state["files"]);
  appends_.clear();
  for (const auto& [path, entries] : snap.state["appends"].as_object()) {
    std::vector<AppendEntry>& tail = appends_[path];
    for (const json::Value& entry : entries.as_array()) {
      tail.push_back(AppendEntry{Stamp::from_json(entry["stamp"]), entry["data"].as_string()});
    }
  }
  log_.reset_to(snap.covered, snap.lamport);
  std::set<std::string> paths;
  for (const std::string& path : files_.all_keys()) paths.insert(path);
  for (const auto& [path, tail] : appends_) paths.insert(path);
  for (const std::string& path : paths) sync_local_file(path);
}

std::set<std::string> CrdtFiles::live_paths() const {
  std::set<std::string> out;
  for (const std::string& path : files_.keys()) out.insert(path);
  return out;
}

std::string CrdtFiles::state_digest() const {
  json::Object view;
  for (const std::string& path : live_paths()) {
    std::string content;
    if (materialize_path(path, &content)) view.set(path, json::Value(std::move(content)));
  }
  return json::Value(std::move(view)).dump();
}

bool CrdtFiles::converged_with(const CrdtFiles& other) const {
  const std::set<std::string> mine = live_paths();
  if (mine != other.live_paths()) return false;
  for (const std::string& path : mine) {
    std::string a, b;
    if (!materialize_path(path, &a) || !other.materialize_path(path, &b)) return false;
    if (a != b) return false;
  }
  return true;
}

}  // namespace edgstr::crdt
