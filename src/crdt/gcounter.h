// Grow-only and positive-negative counters.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "json/value.h"

namespace edgstr::crdt {

/// Grow-only counter: per-replica tallies joined by pointwise max.
class GCounter {
 public:
  void increment(const std::string& replica, std::uint64_t by = 1);
  std::uint64_t value() const;
  std::uint64_t local(const std::string& replica) const;
  void merge(const GCounter& other);
  bool operator==(const GCounter& other) const { return tallies_ == other.tallies_; }

  json::Value to_json() const;
  static GCounter from_json(const json::Value& v);

 private:
  std::map<std::string, std::uint64_t> tallies_;
};

/// Counter supporting decrement, as a pair of GCounters.
class PnCounter {
 public:
  void increment(const std::string& replica, std::uint64_t by = 1) { inc_.increment(replica, by); }
  void decrement(const std::string& replica, std::uint64_t by = 1) { dec_.increment(replica, by); }
  std::int64_t value() const {
    return static_cast<std::int64_t>(inc_.value()) - static_cast<std::int64_t>(dec_.value());
  }
  void merge(const PnCounter& other) {
    inc_.merge(other.inc_);
    dec_.merge(other.dec_);
  }
  bool operator==(const PnCounter& other) const {
    return inc_ == other.inc_ && dec_ == other.dec_;
  }

  json::Value to_json() const {
    return json::Value::object({{"inc", inc_.to_json()}, {"dec", dec_.to_json()}});
  }
  static PnCounter from_json(const json::Value& v) {
    PnCounter c;
    c.inc_ = GCounter::from_json(v["inc"]);
    c.dec_ = GCounter::from_json(v["dec"]);
    return c;
  }

 private:
  GCounter inc_;
  GCounter dec_;
};

}  // namespace edgstr::crdt
