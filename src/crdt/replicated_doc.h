// ReplicatedDoc: the common interface of EdgStr's CRDT document types.
//
// CRDT-Table, CRDT-Files, and CRDT-JSON all follow the same automerge-style
// life cycle — harvest local state changes into ops, ship the ops a peer
// lacks, apply remote ops idempotently, compact acknowledged ops — and the
// replication plane only ever needs that life cycle. ReplicaState holds a
// vector of named ReplicatedDoc units instead of a hardcoded triplet, so
// adding a fourth document type (a replicated metrics doc, per-service doc
// sets, ...) is one registration line, not another copy of the sync logic.
#pragma once

#include <string>
#include <vector>

#include "crdt/change.h"
#include "crdt/snapshot.h"

namespace edgstr::crdt {

class ReplicatedDoc {
 public:
  virtual ~ReplicatedDoc() = default;

  /// Harvests local state changes into CRDT ops (call after executions).
  /// Returns the number of ops generated.
  virtual std::size_t record_local() = 0;

  /// Ops the peer with `known` lacks, in log order.
  virtual std::vector<Op> changes_since(const VersionVector& known) const = 0;

  /// Applies remote ops (idempotent); returns how many were new.
  virtual std::size_t apply(const std::vector<Op>& ops) = 0;

  /// This document's version vector.
  virtual const VersionVector& version() const = 0;

  /// Drops ops every peer has acknowledged (see OpLog::compact).
  virtual std::size_t compact(const VersionVector& acked) = 0;

  /// True if changes_since(known) can fully serve a peer at `known` — false
  /// once compaction has dropped ops the peer still needs.
  virtual bool can_serve(const VersionVector& known) const = 0;

  /// Ops currently retained in the log.
  virtual std::size_t op_count() const = 0;

  /// Deterministic fingerprint of the observable state: two replicas of the
  /// same doc are converged iff their digests are equal.
  virtual std::string state_digest() const = 0;

  /// Full replicated-state serialization for peer bootstrap: the CRDT state
  /// plus the retained op log, version vector, and compaction floor —
  /// everything a replica that compaction can no longer serve with a delta
  /// needs to adopt this doc's state. NOT the materialized view: restoring
  /// it preserves global row/path/key identities, so digests match.
  virtual json::Value bootstrap_state() const = 0;

  /// Adopts a bootstrap payload produced by a peer's bootstrap_state() and
  /// re-materializes the local view. Only safe on a freshly re-initialized
  /// replica (it overwrites, it does not merge); the log keeps this
  /// replica's own identity, never the serializing peer's.
  virtual void restore_bootstrap(const json::Value& v) = 0;

  /// Cuts a consistent state snapshot: the observable CRDT state WITHOUT
  /// the retained op log, covering this doc's full version vector. Far
  /// smaller than bootstrap_state() once history outgrows live state; a
  /// peer installs it and then needs only the ops past `covered`.
  virtual Snapshot cut_snapshot() const = 0;

  /// Adopts a peer's snapshot wholesale: overwrites the CRDT state,
  /// re-materializes the local view, and resets the op log to the covered
  /// version (see OpLog::reset_to). Overwrites, does not merge — callers
  /// that may hold ops past the snapshot (a durable replica that recovered
  /// its log) must save and re-apply them around the install.
  virtual void install_snapshot(const Snapshot& snap) = 0;

  /// Re-identifies the origin future local ops are minted under (see
  /// OpLog::set_origin). A replica reborn after a crash must mint under a
  /// fresh origin or risk silent (origin, seq) collisions with its past
  /// life's surviving ops.
  virtual void set_origin(const std::string& origin) = 0;
};

}  // namespace edgstr::crdt
