#include "crdt/vector_clock.h"

namespace edgstr::crdt {

std::uint64_t VectorClock::get(const std::string& replica) const {
  auto it = clock_.find(replica);
  return it == clock_.end() ? 0 : it->second;
}

void VectorClock::set(const std::string& replica, std::uint64_t value) {
  clock_[replica] = value;
}

std::uint64_t VectorClock::increment(const std::string& replica) { return ++clock_[replica]; }

void VectorClock::merge(const VectorClock& other) {
  for (const auto& [replica, value] : other.clock_) {
    auto it = clock_.find(replica);
    if (it == clock_.end() || it->second < value) clock_[replica] = value;
  }
}

Ordering VectorClock::compare(const VectorClock& other) const {
  bool less = false;    // some component strictly smaller
  bool greater = false;

  auto scan = [&](const VectorClock& a, const VectorClock& b, bool& a_greater) {
    for (const auto& [replica, value] : a.clock_) {
      const std::uint64_t bv = b.get(replica);
      if (value > bv) a_greater = true;
    }
  };
  scan(*this, other, greater);
  scan(other, *this, less);

  if (less && greater) return Ordering::kConcurrent;
  if (greater) return Ordering::kAfter;
  if (less) return Ordering::kBefore;
  return Ordering::kEqual;
}

json::Value VectorClock::to_json() const {
  json::Object obj;
  for (const auto& [replica, value] : clock_) obj.set(replica, static_cast<double>(value));
  return json::Value(std::move(obj));
}

VectorClock VectorClock::from_json(const json::Value& v) {
  VectorClock clock;
  for (const auto& [replica, value] : v.as_object()) {
    clock.set(replica, static_cast<std::uint64_t>(value.as_number()));
  }
  return clock;
}

}  // namespace edgstr::crdt
