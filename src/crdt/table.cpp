#include "crdt/table.h"

#include <stdexcept>

namespace edgstr::crdt {

namespace {

json::Value cells_to_json(const std::vector<sqldb::SqlValue>& cells) {
  json::Array arr;
  arr.reserve(cells.size());
  for (const sqldb::SqlValue& cell : cells) arr.push_back(cell.to_json());
  return json::Value(std::move(arr));
}

std::vector<sqldb::SqlValue> cells_from_json(const json::Value& v) {
  std::vector<sqldb::SqlValue> cells;
  cells.reserve(v.as_array().size());
  for (const json::Value& cell : v.as_array()) cells.push_back(sqldb::SqlValue::from_json(cell));
  return cells;
}

}  // namespace

CrdtTable::CrdtTable(std::string replica_id, sqldb::Database* db)
    : log_(std::move(replica_id)), db_(db) {
  if (!db_) throw std::invalid_argument("CrdtTable: null database");
}

void CrdtTable::initialize(const json::Value& db_snapshot) {
  // Self-clearing so re-initialization models a crashed replica reborn from
  // the checkpoint: all volatile CRDT state is lost, only identity survives.
  log_ = OpLog(log_.replica());
  rows_ = LwwMap();
  key_to_rid_.clear();
  rid_to_key_.clear();
  db_->restore(db_snapshot);
  attach_existing();
}

void CrdtTable::attach_existing() {
  for (const std::string& table : db_->table_names()) {
    for (const sqldb::Row& row : db_->table(table).rows()) {
      const std::string key = "init:" + table + ":" + std::to_string(row.rid);
      key_to_rid_[key] = row.rid;
      rid_to_key_[table][row.rid] = key;
      rows_.put(key,
                json::Value::object({{"table", table}, {"cells", cells_to_json(row.cells)}}),
                Stamp{0, ""});
    }
  }
}

std::string CrdtTable::key_for(const std::string& table, std::uint64_t rid) {
  auto table_it = rid_to_key_.find(table);
  if (table_it != rid_to_key_.end()) {
    auto it = table_it->second.find(rid);
    if (it != table_it->second.end()) return it->second;
  }
  // Locally-originated row: mint a globally unique key.
  const std::string key = log_.replica() + ":" + table + ":" + std::to_string(rid);
  key_to_rid_[key] = rid;
  rid_to_key_[table][rid] = key;
  return key;
}

std::size_t CrdtTable::record_local_mutations() {
  std::size_t count = 0;
  for (const sqldb::RowMutation& m : db_->drain_mutations()) {
    const std::string key = key_for(m.table, m.rid);
    json::Value payload;
    if (m.kind == sqldb::RowMutation::Kind::kDelete) {
      payload = json::Value::object({{"type", "del"}, {"key", key}, {"table", m.table}});
    } else {
      payload = json::Value::object({{"type", "put"},
                                     {"key", key},
                                     {"table", m.table},
                                     {"cells", cells_to_json(m.cells)}});
    }
    Op op = log_.make_local(std::move(payload));
    log_.record(op);
    if (op.payload["type"].as_string() == "del") {
      rows_.remove(key, op.stamp);
      // Local DB already reflects the delete.
      auto rid_it = key_to_rid_.find(key);
      if (rid_it != key_to_rid_.end()) {
        rid_to_key_[m.table].erase(rid_it->second);
        key_to_rid_.erase(rid_it);
      }
    } else {
      rows_.put(key, op.payload, op.stamp);
    }
    ++count;
  }
  return count;
}

void CrdtTable::materialize(const std::string& key) {
  const std::optional<json::Value> row = rows_.get(key);
  if (!row) {
    // Deleted: remove the local row if we track it.
    auto it = key_to_rid_.find(key);
    if (it != key_to_rid_.end()) {
      // Table name is embedded in the key between the first and last ':'.
      // We stored it in rid_to_key_, so scan; cheap at our scale.
      for (auto& [table, rid_map] : rid_to_key_) {
        auto rid_it = rid_map.find(it->second);
        if (rid_it != rid_map.end() && rid_it->second == key) {
          if (db_->has_table(table)) {
            const std::uint64_t rid = it->second;
            db_->table(table).delete_where(
                [rid](const sqldb::Row& r) { return r.rid == rid; });
          }
          rid_map.erase(rid_it);
          break;
        }
      }
      key_to_rid_.erase(it);
    }
    return;
  }
  const std::string& table = (*row)["table"].as_string();
  if (!db_->has_table(table)) return;  // schema not present locally
  std::vector<sqldb::SqlValue> cells = cells_from_json((*row)["cells"]);

  auto it = key_to_rid_.find(key);
  if (it != key_to_rid_.end()) {
    if (sqldb::Row* local = db_->table(table).find(it->second)) {
      local->cells = std::move(cells);
      return;
    }
    // Row vanished locally (shouldn't happen); fall through to re-insert.
  }
  const std::uint64_t rid = db_->table(table).insert(std::move(cells));
  key_to_rid_[key] = rid;
  rid_to_key_[table][rid] = key;
}

std::size_t CrdtTable::applyChanges(const std::vector<Op>& ops) {
  std::size_t applied = 0;
  for (const Op& op : ops) {
    // Dedup is purely seen-based: after a crash wipes the log, this replica
    // recovers its *own* earlier ops from peers through the same path.
    if (log_.seen(op.origin, op.seq)) continue;
    log_.record(op);
    const std::string& type = op.payload["type"].as_string();
    const std::string& key = op.payload["key"].as_string();
    if (type == "del") {
      rows_.remove(key, op.stamp);
    } else {
      rows_.put(key, op.payload, op.stamp);
    }
    materialize(key);
    ++applied;
  }
  // Note: materialize() writes through the Table API, which bypasses the
  // Database mutation log, so replicated rows are never re-broadcast as
  // local edits.
  return applied;
}

json::Value CrdtTable::bootstrap_state() const {
  return json::Value::object({{"rows", rows_.to_json()}, {"log", log_.to_json()}});
}

void CrdtTable::restore_bootstrap(const json::Value& v) {
  rows_ = LwwMap::from_json(v["rows"]);
  log_.restore(v["log"]);
  // Re-materialize everything, tombstones included (they delete baseline
  // rows the snapshot restore resurrected).
  for (const std::string& key : rows_.all_keys()) materialize(key);
}

Snapshot CrdtTable::cut_snapshot() const {
  Snapshot snap;
  snap.state = json::Value::object({{"rows", rows_.to_json()}});
  snap.covered = log_.version();
  snap.lamport = log_.lamport();
  snap.digest = Snapshot::content_digest(snap.state);
  return snap;
}

void CrdtTable::install_snapshot(const Snapshot& snap) {
  rows_ = LwwMap::from_json(snap.state["rows"]);
  log_.reset_to(snap.covered, snap.lamport);
  for (const std::string& key : rows_.all_keys()) materialize(key);
}

}  // namespace edgstr::crdt
