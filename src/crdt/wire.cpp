#include "crdt/wire.h"

namespace edgstr::crdt {

json::Value doc_versions_to_json(const DocVersions& versions) {
  json::Object out;
  for (const auto& [doc, version] : versions) out.set(doc, version_to_json(version));
  return json::Value(std::move(out));
}

DocVersions doc_versions_from_json(const json::Value& v) {
  DocVersions out;
  for (const auto& [doc, version] : v.as_object()) out[doc] = version_from_json(version);
  return out;
}

std::size_t SyncMessage::op_count() const {
  std::size_t total = 0;
  for (const auto& [doc, doc_ops] : ops) total += doc_ops.size();
  return total;
}

namespace {

/// Encodes one doc's ops as maximal same-origin runs with contiguous seqs.
json::Value encode_runs(const std::vector<Op>& ops) {
  json::Array runs;
  std::size_t i = 0;
  while (i < ops.size()) {
    const std::string& origin = ops[i].origin;
    // Extend the run while origin matches and seqs stay contiguous.
    std::size_t j = i + 1;
    while (j < ops.size() && ops[j].origin == origin && ops[j].seq == ops[j - 1].seq + 1) ++j;

    json::Array counters;  // [c0, delta, delta, ...]
    json::Array payloads;
    bool stamps_match_origin = true;
    double prev_counter = 0;
    for (std::size_t k = i; k < j; ++k) {
      const double counter = double(ops[k].stamp.counter);
      const double encoded = (k == i) ? counter : counter - prev_counter;
      prev_counter = counter;
      counters.push_back(json::Value(encoded));
      payloads.push_back(ops[k].payload);
      stamps_match_origin = stamps_match_origin && ops[k].stamp.replica == origin;
    }
    json::Object run;
    run.set("o", json::Value(origin));
    run.set("s", json::Value(double(ops[i].seq)));
    run.set("c", json::Value(std::move(counters)));
    run.set("p", json::Value(std::move(payloads)));
    if (!stamps_match_origin) {
      // Never produced by OpLog::make_local; kept so the codec stays total.
      json::Array replicas;
      for (std::size_t k = i; k < j; ++k) replicas.push_back(ops[k].stamp.replica);
      run.set("r", json::Value(std::move(replicas)));
    }
    runs.push_back(json::Value(std::move(run)));
    i = j;
  }
  return json::Value(std::move(runs));
}

/// Doubles that survive an exact round-trip through uint64 sequence
/// arithmetic. 2^53 is the integer-precision limit; anything past it (or
/// negative, or fractional) is an attack or a corrupted frame, not a seq.
bool valid_seq(double v) {
  return v >= 1 && v <= 9007199254740992.0 && v == double(std::uint64_t(v));
}

std::vector<Op> decode_runs(const json::Value& runs) {
  std::vector<Op> ops;
  // Where each origin's next run must resume: the encoder emits per-origin
  // seqs gap-free across a message, so anything else is malformed.
  std::map<std::string, std::uint64_t> next_seq;
  for (const json::Value& run : runs.as_array()) {
    const json::Value* o = run.find("o");
    const json::Value* s = run.find("s");
    const json::Value* c = run.find("c");
    const json::Value* p = run.find("p");
    if (!o || !s || !c || !p) throw WireError("wire: truncated run header");
    const std::string& origin = o->as_string();
    if (!valid_seq(s->as_number())) throw WireError("wire: bad first seq in run");
    const std::uint64_t first_seq = std::uint64_t(s->as_number());
    const json::Array& counters = c->as_array();
    const json::Array& payloads = p->as_array();
    if (counters.size() != payloads.size()) {
      throw WireError("wire: run length mismatch (" + std::to_string(counters.size()) +
                      " counters, " + std::to_string(payloads.size()) + " payloads)");
    }
    const json::Value* replicas = run.find("r");
    if (replicas && replicas->as_array().size() != payloads.size()) {
      throw WireError("wire: run length mismatch (stamp replicas)");
    }
    const auto expected = next_seq.find(origin);
    if (expected != next_seq.end() && first_seq != expected->second) {
      throw WireError("wire: non-gap-free seq runs for origin '" + origin + "'");
    }
    double counter = 0;
    for (std::size_t k = 0; k < payloads.size(); ++k) {
      counter += counters[k].as_number();  // c0 then deltas
      if (!(counter >= 0 && counter <= 9007199254740992.0)) {
        throw WireError("wire: lamport counter out of range");
      }
      Op op;
      op.origin = origin;
      op.seq = first_seq + k;
      op.stamp.counter = std::uint64_t(counter);
      op.stamp.replica = replicas ? (*replicas)[k].as_string() : origin;
      op.payload = payloads[k];
      ops.push_back(std::move(op));
    }
    next_seq[origin] = first_seq + payloads.size();
  }
  return ops;
}

/// Digest payload: one shared origin table, one seq row per doc unit.
/// Rows after the first are delta-encoded against the previous row, the
/// same trick op runs use for Lamport counters.
void encode_digest(const DocVersions& versions, json::Object& out) {
  std::map<std::string, std::size_t> origin_index;
  json::Array origins;
  for (const auto& [doc, vector] : versions) {
    for (const auto& [origin, seq] : vector) {
      (void)seq;
      if (origin_index.emplace(origin, origin_index.size()).second) {
        origins.push_back(json::Value(origin));
      }
    }
  }
  json::Object rows;
  std::vector<double> prev(origin_index.size(), 0.0);
  for (const auto& [doc, vector] : versions) {
    std::vector<double> row(origin_index.size(), 0.0);
    for (const auto& [origin, seq] : vector) row[origin_index[origin]] = double(seq);
    json::Array encoded;
    for (std::size_t i = 0; i < row.size(); ++i) encoded.push_back(json::Value(row[i] - prev[i]));
    prev = row;
    rows.set(doc, json::Value(std::move(encoded)));
  }
  out.set("o", json::Value(std::move(origins)));
  out.set("g", json::Value(std::move(rows)));
}

DocVersions decode_digest(const json::Value& wire) {
  const json::Array& origins = wire["o"].as_array();
  std::vector<std::string> table;
  table.reserve(origins.size());
  for (const json::Value& origin : origins) table.push_back(origin.as_string());
  DocVersions out;
  std::vector<double> prev(table.size(), 0.0);
  for (const auto& [doc, row] : wire["g"].as_object()) {
    const json::Array& deltas = row.as_array();
    if (deltas.size() != table.size()) {
      throw WireError("wire: digest row length mismatch for doc '" + doc + "'");
    }
    VersionVector vector;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      const double seq = prev[i] + deltas[i].as_number();
      if (!(seq >= 0 && seq <= 9007199254740992.0 && seq == double(std::uint64_t(seq)))) {
        throw WireError("wire: digest seq out of range for origin '" + table[i] + "'");
      }
      prev[i] = seq;
      if (seq > 0) vector[table[i]] = std::uint64_t(seq);
    }
    out[doc] = std::move(vector);
  }
  return out;
}

}  // namespace

json::Value encode_message(const SyncMessage& message) {
  json::Object out;
  out.set("from", json::Value(message.from));
  if (message.kind == SyncKind::kDigest) {
    out.set("k", json::Value("dig"));
    encode_digest(message.versions, out);
    if (message.rejoin) out.set("rj", json::Value(true));
    return json::Value(std::move(out));
  }
  if (message.kind == SyncKind::kBootstrap) {
    out.set("k", json::Value("boot"));
    out.set("v", doc_versions_to_json(message.versions));
    out.set("b", message.bootstrap);
    if (message.rejoin) out.set("rj", json::Value(true));
    return json::Value(std::move(out));
  }
  if (message.kind == SyncKind::kSnapshot) {
    out.set("k", json::Value("snap"));
    out.set("v", doc_versions_to_json(message.versions));
    out.set("sn", message.snapshot);
    json::Object docs;
    for (const auto& [doc, doc_ops] : message.ops) {
      if (!doc_ops.empty()) docs.set(doc, encode_runs(doc_ops));
    }
    if (!docs.empty()) out.set("d", json::Value(std::move(docs)));
    if (message.rejoin) out.set("rj", json::Value(true));
    return json::Value(std::move(out));
  }
  // An absent doc decodes as an empty vector, so empty ones are skipped.
  json::Object versions;
  for (const auto& [doc, version] : message.versions) {
    if (!version.empty()) versions.set(doc, version_to_json(version));
  }
  out.set("v", json::Value(std::move(versions)));
  json::Object docs;
  for (const auto& [doc, doc_ops] : message.ops) {
    if (!doc_ops.empty()) docs.set(doc, encode_runs(doc_ops));
  }
  if (!docs.empty()) out.set("d", json::Value(std::move(docs)));
  if (message.truncated) out.set("t", json::Value(true));
  if (message.rejoin) out.set("rj", json::Value(true));
  return json::Value(std::move(out));
}

SyncMessage decode_message(const json::Value& wire) {
  try {
    SyncMessage out;
    out.from = wire["from"].as_string();
    const json::Value* kind = wire.find("k");
    if (kind) {
      const std::string& k = kind->as_string();
      // A kind-tagged message carrying another kind's payload is corrupt
      // or hostile (digest-kind confusion): reject before touching it.
      if (k == "dig") {
        if (wire.find("d") || wire.find("b") || wire.find("sn")) {
          throw WireError("wire: digest carrying a payload");
        }
        out.kind = SyncKind::kDigest;
        out.versions = decode_digest(wire);
        if (const json::Value* rejoin = wire.find("rj")) out.rejoin = rejoin->as_bool();
        return out;
      }
      if (k == "boot") {
        if (wire.find("d") || wire.find("sn")) {
          throw WireError("wire: bootstrap carrying another kind's payload");
        }
        out.kind = SyncKind::kBootstrap;
        out.versions = doc_versions_from_json(wire["v"]);
        out.bootstrap = wire["b"];
        if (!out.bootstrap.is_object()) throw WireError("wire: bootstrap state must be an object");
        if (const json::Value* rejoin = wire.find("rj")) out.rejoin = rejoin->as_bool();
        return out;
      }
      if (k == "snap") {
        if (wire.find("b")) throw WireError("wire: snapshot carrying a bootstrap payload");
        out.kind = SyncKind::kSnapshot;
        out.versions = doc_versions_from_json(wire["v"]);
        out.snapshot = wire["sn"];
        if (!out.snapshot.is_object()) throw WireError("wire: snapshot payload must be an object");
        // Structural validation up front: every per-doc entry must look like
        // a crdt::Snapshot encoding. Content digests are verified at install.
        for (const auto& [doc, snap] : out.snapshot.as_object()) {
          if (!snap.is_object() || !snap.find("state") || !snap.find("v") ||
              !snap.find("lam") || !snap.find("dig")) {
            throw WireError("wire: malformed snapshot for doc '" + doc + "'");
          }
          if (!(*snap.find("v")).is_object()) {
            throw WireError("wire: snapshot version must be an object for doc '" + doc + "'");
          }
        }
        if (const json::Value* docs = wire.find("d")) {
          for (const auto& [doc, runs] : docs->as_object()) out.ops[doc] = decode_runs(runs);
        }
        if (const json::Value* rejoin = wire.find("rj")) out.rejoin = rejoin->as_bool();
        return out;
      }
      throw WireError("wire: unknown message kind '" + k + "'");
    }
    if (wire.find("b") || wire.find("g") || wire.find("sn")) {
      throw WireError("wire: ops message carrying digest/bootstrap fields");
    }
    out.versions = doc_versions_from_json(wire["v"]);
    if (const json::Value* docs = wire.find("d")) {
      for (const auto& [doc, runs] : docs->as_object()) out.ops[doc] = decode_runs(runs);
    }
    if (const json::Value* truncated = wire.find("t")) out.truncated = truncated->as_bool();
    if (const json::Value* rejoin = wire.find("rj")) out.rejoin = rejoin->as_bool();
    return out;
  } catch (const WireError&) {
    throw;
  } catch (const std::logic_error& e) {
    // json::Value type/missing-key errors (out_of_range included) become
    // one uniform, catchable rejection.
    throw WireError(std::string("wire: malformed sync message: ") + e.what());
  }
}

json::Value encode_message_per_op(const SyncMessage& message) {
  json::Object out;
  out.set("from", json::Value(message.from));
  json::Object docs;
  // The seed carried every doc unit in every message, empty or not.
  for (const auto& [doc, version] : message.versions) {
    (void)version;
    json::Array arr;
    auto it = message.ops.find(doc);
    if (it != message.ops.end()) {
      arr.reserve(it->second.size());
      for (const Op& op : it->second) arr.push_back(op.to_json());
    }
    docs.set(doc, json::Value(std::move(arr)));
  }
  for (const auto& [doc, doc_ops] : message.ops) {
    if (!message.versions.count(doc)) {
      json::Array arr;
      arr.reserve(doc_ops.size());
      for (const Op& op : doc_ops) arr.push_back(op.to_json());
      docs.set(doc, json::Value(std::move(arr)));
    }
  }
  out.set("docs", json::Value(std::move(docs)));
  out.set("version", doc_versions_to_json(message.versions));
  return json::Value(std::move(out));
}

}  // namespace edgstr::crdt
