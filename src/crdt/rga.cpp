#include "crdt/rga.h"

#include <algorithm>

namespace edgstr::crdt {

Rga::Element* Rga::find(Element& node, const ElementId& id) {
  if (node.id == id) return &node;
  for (Element& child : node.children) {
    if (Element* found = find(child, id)) return found;
  }
  return nullptr;
}

void Rga::apply_insert(const ElementId& anchor, const ElementId& id, json::Value value) {
  if (known_elements_.count(id.stamp)) return;  // duplicate insert
  Element* parent = find(root_, anchor);
  if (!parent) parent = &root_;  // anchor tombstoned & pruned: degrade to front
  Element element{id, std::move(value), false, {}};
  // Classic RGA sibling order: descending by id, so a newer insert lands
  // immediately after its anchor (intention preservation) and every
  // replica computes the identical order for concurrent inserts.
  auto it = std::upper_bound(parent->children.begin(), parent->children.end(), element,
                             [](const Element& a, const Element& b) { return b.id < a.id; });
  parent->children.insert(it, std::move(element));
  known_elements_[id.stamp] = true;
}

void Rga::apply_erase(Element& node, const ElementId& id) {
  if (Element* element = find(node, id)) element->tombstone = true;
}

ElementId Rga::insert_after(const ElementId& anchor, json::Value value) {
  Op op = log_.make_local(json::Value::object(
      {{"type", "ins"}, {"anchor", anchor.to_json()}, {"value", value}}));
  log_.record(op);
  const ElementId id{op.stamp};
  apply_insert(anchor, id, std::move(value));
  return id;
}

ElementId Rga::push_back(json::Value value) {
  const auto live = entries();
  const ElementId anchor = live.empty() ? ElementId::head() : live.back().first;
  return insert_after(anchor, std::move(value));
}

void Rga::erase(const ElementId& id) {
  Op op = log_.make_local(json::Value::object({{"type", "del"}, {"id", id.to_json()}}));
  log_.record(op);
  apply_erase(root_, id);
}

void Rga::collect(const Element& node,
                  std::vector<std::pair<ElementId, json::Value>>& out) const {
  if (!node.tombstone) out.emplace_back(node.id, node.value);
  for (const Element& child : node.children) collect(child, out);
}

std::vector<std::pair<ElementId, json::Value>> Rga::entries() const {
  std::vector<std::pair<ElementId, json::Value>> out;
  collect(root_, out);
  return out;
}

std::vector<json::Value> Rga::values() const {
  std::vector<json::Value> out;
  for (const auto& [id, value] : entries()) out.push_back(value);
  return out;
}

std::size_t Rga::size() const { return entries().size(); }

void Rga::apply_payload(const Op& op) {
  const std::string& type = op.payload["type"].as_string();
  if (type == "ins") {
    apply_insert(ElementId::from_json(op.payload["anchor"]), ElementId{op.stamp},
                 op.payload["value"]);
  } else if (type == "del") {
    apply_erase(root_, ElementId::from_json(op.payload["id"]));
  }
}

std::size_t Rga::applyChanges(const std::vector<Op>& ops) {
  std::size_t applied = 0;
  for (const Op& op : ops) {
    if (op.origin == log_.replica()) continue;
    if (log_.seen(op.origin, op.seq)) continue;
    log_.record(op);
    apply_payload(op);
    ++applied;
  }
  return applied;
}

json::Value Rga::to_json() const {
  json::Array arr;
  for (const json::Value& v : values()) arr.push_back(v);
  return json::Value(std::move(arr));
}

}  // namespace edgstr::crdt
