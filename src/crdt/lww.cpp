#include "crdt/lww.h"

namespace edgstr::crdt {

void LwwRegister::set(json::Value value, Stamp stamp) {
  if (stamp_ < stamp || stamp_ == stamp) {
    value_ = std::move(value);
    stamp_ = stamp;
  }
}

void LwwRegister::merge(const LwwRegister& other) {
  if (stamp_ < other.stamp_) {
    value_ = other.value_;
    stamp_ = other.stamp_;
  }
}

json::Value LwwRegister::to_json() const {
  return json::Value::object({{"value", value_}, {"stamp", stamp_.to_json()}});
}

LwwRegister LwwRegister::from_json(const json::Value& v) {
  LwwRegister reg;
  reg.value_ = v["value"];
  reg.stamp_ = Stamp::from_json(v["stamp"]);
  return reg;
}

std::optional<json::Value> LwwMap::get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.deleted) return std::nullopt;
  return it->second.value;
}

void LwwMap::put(const std::string& key, json::Value value, Stamp stamp) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.stamp < stamp) {
    entries_[key] = Entry{std::move(value), stamp, false};
  }
}

void LwwMap::remove(const std::string& key, Stamp stamp) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.stamp < stamp) {
    entries_[key] = Entry{json::Value(), stamp, true};
  }
}

void LwwMap::merge(const LwwMap& other) {
  for (const auto& [key, entry] : other.entries_) {
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.stamp < entry.stamp) {
      entries_[key] = entry;
    }
  }
}

std::vector<std::string> LwwMap::keys() const {
  std::vector<std::string> out;
  for (const auto& [key, entry] : entries_) {
    if (!entry.deleted) out.push_back(key);
  }
  return out;
}

std::vector<std::string> LwwMap::all_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

bool LwwMap::operator==(const LwwMap& other) const {
  // Convergence equality: same live keys with same values. Tombstone
  // metadata may differ in stamps without affecting observable state.
  if (keys() != other.keys()) return false;
  for (const std::string& key : keys()) {
    if (!(*get(key) == *other.get(key))) return false;
  }
  return true;
}

std::string LwwMap::digest() const {
  json::Object live;
  for (const auto& [key, entry] : entries_) {
    if (!entry.deleted) live.set(key, entry.value);
  }
  return json::Value(std::move(live)).dump();
}

json::Value LwwMap::to_json() const {
  json::Object obj;
  for (const auto& [key, entry] : entries_) {
    obj.set(key, json::Value::object({{"value", entry.value},
                                      {"stamp", entry.stamp.to_json()},
                                      {"deleted", entry.deleted}}));
  }
  return json::Value(std::move(obj));
}

LwwMap LwwMap::from_json(const json::Value& v) {
  LwwMap map;
  for (const auto& [key, entry] : v.as_object()) {
    map.entries_[key] = Entry{entry["value"], Stamp::from_json(entry["stamp"]),
                              entry["deleted"].as_bool()};
  }
  return map;
}

}  // namespace edgstr::crdt
