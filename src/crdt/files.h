// CRDT-Files: replicated file trees (§III-G).
//
// Bridges a replica's VFS and the CRDT op stream. Two merge modes:
//
//   whole-file LWW  — concurrent writers: the later stamp's full content
//                     wins (the replication granularity automerge applies
//                     to binary files).
//   append-merge    — for log-style paths (default: "*.log"), an appended
//                     suffix becomes its own op; concurrent appends from
//                     different replicas MERGE in stamp order instead of
//                     one overwriting the other — list-CRDT semantics, so
//                     no replica's log entries are ever lost.
//
// Local changes are detected by version-counter scan, so the service code
// needs no modification to have its fs writes replicated.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "crdt/change.h"
#include "crdt/lww.h"
#include "crdt/replicated_doc.h"
#include "vfs/vfs.h"

namespace edgstr::crdt {

class CrdtFiles : public ReplicatedDoc {
 public:
  CrdtFiles(std::string replica_id, vfs::Vfs* fs);

  const std::string& replica() const { return log_.replica(); }

  /// Restores the shared VFS snapshot and records baseline versions. Only
  /// the paths the analysis identified as service state are replicated; an
  /// empty set means "replicate everything" (used by tests). Re-entrant:
  /// calling it again first discards all CRDT state (crash/rebirth).
  void initialize(const json::Value& vfs_snapshot, std::set<std::string> replicated_paths = {});

  /// Cloud-master variant: keys the current VFS contents as the baseline
  /// without restoring (see CrdtTable::attach_existing).
  void attach_existing(std::set<std::string> replicated_paths = {});

  /// Paths with these suffixes use append-merge instead of whole-file LWW.
  void set_append_merge_suffixes(std::set<std::string> suffixes) {
    append_suffixes_ = std::move(suffixes);
  }

  /// Scans the VFS for changed/removed files and emits ops. Returns the
  /// number of ops generated.
  std::size_t record_local_changes();

  std::vector<Op> getChanges(const VersionVector& known) const {
    return log_.changes_since(known);
  }
  std::size_t applyChanges(const std::vector<Op>& ops);

  const VersionVector& version() const override { return log_.version(); }

  /// Drops ops all peers have acknowledged (see OpLog::compact).
  std::size_t compact(const VersionVector& acked) override { return log_.compact(acked); }
  bool can_serve(const VersionVector& known) const override { return log_.can_serve(known); }
  std::size_t op_count() const override { return log_.size(); }

  // ReplicatedDoc life cycle (the generic sync path).
  std::size_t record_local() override { return record_local_changes(); }
  std::vector<Op> changes_since(const VersionVector& known) const override {
    return getChanges(known);
  }
  std::size_t apply(const std::vector<Op>& ops) override { return applyChanges(ops); }
  /// Digest over the *materialized* view (base + merged append tails), the
  /// same observable the convergence check always used for files.
  std::string state_digest() const override;
  json::Value bootstrap_state() const override;
  void restore_bootstrap(const json::Value& v) override;
  Snapshot cut_snapshot() const override;
  void install_snapshot(const Snapshot& snap) override;
  void set_origin(const std::string& origin) override { log_.set_origin(origin); }

  bool converged_with(const CrdtFiles& other) const;

 private:
  struct AppendEntry {
    Stamp stamp;
    std::string data;
    bool operator<(const AppendEntry& other) const { return stamp < other.stamp; }
  };

  OpLog log_;
  vfs::Vfs* fs_;
  LwwMap files_;  ///< path -> base contents (LWW)
  std::map<std::string, std::vector<AppendEntry>> appends_;  ///< append-merge tails
  std::map<std::string, std::uint64_t> known_versions_;
  std::map<std::string, std::string> last_contents_;  ///< for append detection
  std::set<std::string> replicated_paths_;  ///< empty = all
  std::set<std::string> append_suffixes_ = {".log"};

  bool is_replicated(const std::string& path) const {
    return replicated_paths_.empty() || replicated_paths_.count(path) > 0;
  }
  bool is_append_merge(const std::string& path) const;

  /// Converged view of one path (base + stamp-ordered surviving appends).
  /// Returns false if the path is deleted.
  bool materialize_path(const std::string& path, std::string* out) const;
  /// Writes the materialized view into the local VFS and refreshes the
  /// change-detection bookkeeping.
  void sync_local_file(const std::string& path);

  /// Live replicated paths (union of base map and append tails).
  std::set<std::string> live_paths() const;

  void seed_baseline();
};

}  // namespace edgstr::crdt
