#include "crdt/orset.h"

namespace edgstr::crdt {

void OrSet::add(const std::string& element, const std::string& replica) {
  const std::uint64_t n = ++tag_counters_[replica];
  adds_[element].insert(replica + "#" + std::to_string(n));
}

void OrSet::remove(const std::string& element) {
  auto it = adds_.find(element);
  if (it == adds_.end()) return;
  for (const std::string& tag : it->second) tombstones_.insert(tag);
  adds_.erase(it);
}

bool OrSet::contains(const std::string& element) const {
  auto it = adds_.find(element);
  return it != adds_.end() && !it->second.empty();
}

std::vector<std::string> OrSet::elements() const {
  std::vector<std::string> out;
  for (const auto& [element, tags] : adds_) {
    if (!tags.empty()) out.push_back(element);
  }
  return out;
}

void OrSet::merge(const OrSet& other) {
  // Union removes.
  for (const std::string& tag : other.tombstones_) tombstones_.insert(tag);
  // Union adds, then drop tombstoned tags.
  for (const auto& [element, tags] : other.adds_) {
    auto& mine = adds_[element];
    for (const std::string& tag : tags) mine.insert(tag);
  }
  for (auto it = adds_.begin(); it != adds_.end();) {
    auto& tags = it->second;
    for (auto tag_it = tags.begin(); tag_it != tags.end();) {
      if (tombstones_.count(*tag_it)) tag_it = tags.erase(tag_it);
      else ++tag_it;
    }
    if (tags.empty()) it = adds_.erase(it);
    else ++it;
  }
  // Keep tag counters fresh so future local adds stay unique.
  for (const auto& [replica, counter] : other.tag_counters_) {
    auto it = tag_counters_.find(replica);
    if (it == tag_counters_.end() || it->second < counter) tag_counters_[replica] = counter;
  }
}

json::Value OrSet::to_json() const {
  json::Object adds;
  for (const auto& [element, tags] : adds_) {
    json::Array arr;
    for (const std::string& tag : tags) arr.emplace_back(tag);
    adds.set(element, json::Value(std::move(arr)));
  }
  json::Array tombs;
  for (const std::string& tag : tombstones_) tombs.emplace_back(tag);
  json::Object counters;
  for (const auto& [replica, counter] : tag_counters_) {
    counters.set(replica, static_cast<double>(counter));
  }
  return json::Value::object({{"adds", json::Value(std::move(adds))},
                              {"tombstones", json::Value(std::move(tombs))},
                              {"counters", json::Value(std::move(counters))}});
}

OrSet OrSet::from_json(const json::Value& v) {
  OrSet set;
  for (const auto& [element, tags] : v["adds"].as_object()) {
    for (const json::Value& tag : tags.as_array()) {
      set.adds_[element].insert(tag.as_string());
    }
  }
  for (const json::Value& tag : v["tombstones"].as_array()) {
    set.tombstones_.insert(tag.as_string());
  }
  for (const auto& [replica, counter] : v["counters"].as_object()) {
    set.tag_counters_[replica] = static_cast<std::uint64_t>(counter.as_number());
  }
  return set;
}

}  // namespace edgstr::crdt
