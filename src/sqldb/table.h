// In-memory table: ordered columns, rows with stable hidden row ids.
//
// Row ids are what CRDT-Table keys on: each row maps to one LWW-map entry,
// so concurrent edits to *different* rows never conflict and edits to the
// same row resolve by timestamp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "json/value.h"
#include "sqldb/value.h"

namespace edgstr::sqldb {

struct Row {
  std::uint64_t rid = 0;          ///< stable per-table row id
  std::vector<SqlValue> cells;    ///< aligned with Table::columns()
};

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<std::string> columns);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  /// Index of a column; throws std::out_of_range if unknown.
  std::size_t column_index(const std::string& column) const;
  bool has_column(const std::string& column) const;

  const std::vector<Row>& rows() const { return rows_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Appends a row (cells must match the column count); returns its rid.
  std::uint64_t insert(std::vector<SqlValue> cells);
  /// Inserts a row preserving a specific rid (replication path). Advances
  /// the internal rid counter past it.
  void insert_with_rid(std::uint64_t rid, std::vector<SqlValue> cells);

  /// Applies `update` to rows matching `pred`; returns affected count.
  std::size_t update_where(const std::function<bool(const Row&)>& pred,
                           const std::function<void(Row&)>& update);
  /// Deletes rows matching `pred`; returns deleted count.
  std::size_t delete_where(const std::function<bool(const Row&)>& pred);

  /// Finds a row by rid; nullptr if absent.
  const Row* find(std::uint64_t rid) const;
  Row* find(std::uint64_t rid);

  /// Full-state JSON snapshot (schema + rows + rid counter).
  json::Value snapshot() const;
  static Table from_snapshot(const json::Value& snap);

  /// Change stamp maintained by the owning Database: every committed
  /// content change re-stamps the table from the database's monotonic
  /// counter, so epoch equality implies content equality for tables that
  /// share a Database lineage. 0 = never stamped. Direct Table mutation
  /// outside Database does not update it — the copy-on-write snapshot
  /// machinery only reads epochs on Database-owned tables.
  std::uint64_t epoch() const { return epoch_; }
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }

  bool operator==(const Table& other) const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  std::uint64_t next_rid_ = 1;
  std::uint64_t epoch_ = 0;
};

}  // namespace edgstr::sqldb
