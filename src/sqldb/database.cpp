#include "sqldb/database.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

namespace edgstr::sqldb {

json::Value ResultSet::to_json() const {
  json::Array out;
  for (const auto& row : rows) {
    json::Object obj;
    for (std::size_t i = 0; i < columns.size() && i < row.size(); ++i) {
      obj.set(columns[i], row[i].to_json());
    }
    out.emplace_back(std::move(obj));
  }
  return json::Value(std::move(out));
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw SqlError("no such table: " + name);
  return it->second;
}

Table& Database::table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw SqlError("no such table: " + name);
  return it->second;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

SqlValue Database::resolve(const SqlExpr& expr, const std::vector<SqlValue>& params) {
  if (!expr.is_placeholder) return expr.literal;
  if (expr.placeholder_index >= params.size()) {
    throw SqlError("missing bind parameter #" + std::to_string(expr.placeholder_index + 1));
  }
  return params[expr.placeholder_index];
}

std::function<bool(const Row&)> Database::compile_where(
    const Table& table, const std::vector<Condition>& conds,
    const std::vector<SqlValue>& params) const {
  struct Compiled {
    std::size_t column;
    CompareOp op;
    SqlValue value;
  };
  std::vector<Compiled> compiled;
  compiled.reserve(conds.size());
  for (const Condition& cond : conds) {
    compiled.push_back(Compiled{table.column_index(cond.column), cond.op,
                                resolve(cond.value, params)});
  }
  return [compiled = std::move(compiled)](const Row& row) {
    for (const Compiled& c : compiled) {
      const SqlValue& cell = row.cells[c.column];
      bool pass = false;
      switch (c.op) {
        case CompareOp::kEq: pass = cell == c.value; break;
        case CompareOp::kNe: pass = !(cell == c.value); break;
        case CompareOp::kLt: pass = cell.compare(c.value) < 0; break;
        case CompareOp::kLe: pass = cell.compare(c.value) <= 0; break;
        case CompareOp::kGt: pass = cell.compare(c.value) > 0; break;
        case CompareOp::kGe: pass = cell.compare(c.value) >= 0; break;
        case CompareOp::kLike: pass = c.value.is_text() && cell.like(c.value.as_text()); break;
      }
      if (!pass) return false;
    }
    return true;
  };
}

ResultSet Database::execute(const std::string& sql, const std::vector<SqlValue>& params) {
  return execute(parse_sql(sql), params);
}

ResultSet Database::execute(const Statement& stmt, const std::vector<SqlValue>& params) {
  ResultSet result;

  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    if (tables_.count(create->table)) throw SqlError("table already exists: " + create->table);
    auto [it, inserted] = tables_.emplace(create->table, Table(create->table, create->columns));
    touch(it->second);
    return result;
  }
  if (const auto* drop = std::get_if<DropTableStmt>(&stmt)) {
    if (!tables_.erase(drop->table)) throw SqlError("no such table: " + drop->table);
    return result;
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    Table& t = table(insert->table);
    std::vector<SqlValue> cells(t.columns().size());
    if (insert->columns.empty()) {
      if (insert->values.size() != cells.size()) throw SqlError("INSERT value count mismatch");
      for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = resolve(insert->values[i], params);
    } else {
      if (insert->columns.size() != insert->values.size()) {
        throw SqlError("INSERT column/value count mismatch");
      }
      for (std::size_t i = 0; i < insert->columns.size(); ++i) {
        cells[t.column_index(insert->columns[i])] = resolve(insert->values[i], params);
      }
    }
    const std::uint64_t rid = t.insert(cells);
    touch(t);
    mutation_log_.push_back(
        RowMutation{RowMutation::Kind::kInsert, insert->table, rid, std::move(cells)});
    result.affected = 1;
    return result;
  }
  if (const auto* select = std::get_if<SelectStmt>(&stmt)) {
    const Table& t = table(select->table);
    auto pred = compile_where(t, select->where, params);

    std::vector<const Row*> matched;
    for (const Row& row : t.rows()) {
      if (pred(row)) matched.push_back(&row);
    }
    if (select->order_by) {
      const std::size_t col = t.column_index(*select->order_by);
      std::stable_sort(matched.begin(), matched.end(), [&](const Row* a, const Row* b) {
        const int cmp = a->cells[col].compare(b->cells[col]);
        return select->order_desc ? cmp > 0 : cmp < 0;
      });
    }
    if (select->limit && matched.size() > *select->limit) matched.resize(*select->limit);

    std::vector<std::size_t> proj;
    if (select->columns.empty()) {
      result.columns = t.columns();
      for (std::size_t i = 0; i < t.columns().size(); ++i) proj.push_back(i);
    } else {
      for (const std::string& c : select->columns) {
        result.columns.push_back(c);
        proj.push_back(t.column_index(c));
      }
    }
    for (const Row* row : matched) {
      std::vector<SqlValue> cells;
      cells.reserve(proj.size());
      for (std::size_t c : proj) cells.push_back(row->cells[c]);
      result.rows.push_back(std::move(cells));
      result.rids.push_back(row->rid);
    }
    return result;
  }
  if (const auto* update = std::get_if<UpdateStmt>(&stmt)) {
    Table& t = table(update->table);
    auto pred = compile_where(t, update->where, params);
    std::vector<std::pair<std::size_t, SqlValue>> sets;
    for (const auto& [column, expr] : update->assignments) {
      sets.emplace_back(t.column_index(column), resolve(expr, params));
    }
    std::vector<RowMutation> staged;
    result.affected = t.update_where(pred, [&](Row& row) {
      for (const auto& [col, value] : sets) row.cells[col] = value;
      staged.push_back(
          RowMutation{RowMutation::Kind::kUpdate, update->table, row.rid, row.cells});
    });
    if (result.affected > 0) touch(t);
    for (auto& m : staged) mutation_log_.push_back(std::move(m));
    return result;
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    Table& t = table(del->table);
    auto pred = compile_where(t, del->where, params);
    // Log before physically removing so we know the rids.
    for (const Row& row : t.rows()) {
      if (pred(row)) {
        mutation_log_.push_back(RowMutation{RowMutation::Kind::kDelete, del->table, row.rid, {}});
      }
    }
    result.affected = t.delete_where(pred);
    if (result.affected > 0) touch(t);
    return result;
  }
  if (std::holds_alternative<BeginStmt>(stmt)) {
    begin();
    return result;
  }
  if (std::holds_alternative<CommitStmt>(stmt)) {
    commit();
    return result;
  }
  if (std::holds_alternative<RollbackStmt>(stmt)) {
    rollback();
    return result;
  }
  throw SqlError("unhandled statement kind");
}

void Database::begin() {
  if (in_transaction()) throw SqlError("nested transactions are not supported");
  transaction_backup_ = tables_;
  transaction_log_mark_ = mutation_log_.size();
}

void Database::commit() {
  if (!in_transaction()) throw SqlError("COMMIT outside a transaction");
  transaction_backup_.reset();
}

void Database::rollback() {
  if (!in_transaction()) throw SqlError("ROLLBACK outside a transaction");
  tables_ = std::move(*transaction_backup_);
  transaction_backup_.reset();
  mutation_log_.resize(transaction_log_mark_);
}

json::Value Database::snapshot() const {
  json::Array tables;
  for (const auto& [name, t] : tables_) tables.push_back(t.snapshot());
  return json::Value::object({{"tables", json::Value(std::move(tables))}});
}

void Database::restore(const json::Value& snap) {
  if (in_transaction()) throw SqlError("cannot restore inside a transaction");
  tables_.clear();
  for (const json::Value& t : snap["tables"].as_array()) {
    Table table = Table::from_snapshot(t);
    const std::string name = table.name();
    auto [it, inserted] = tables_.emplace(name, std::move(table));
    touch(it->second);  // foreign content: stamp fresh
  }
  mutation_log_.clear();
}

std::vector<TableComponent> Database::component_snapshots() const {
  std::vector<TableComponent> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) {
    auto it = snapshot_cache_.find(name);
    if (it == snapshot_cache_.end() || it->second.epoch != t.epoch()) {
      auto value = std::make_shared<const json::Value>(t.snapshot());
      const std::uint64_t bytes = value->wire_size();
      it = snapshot_cache_.insert_or_assign(name, CachedTable{t.epoch(), value, bytes}).first;
    }
    out.push_back(TableComponent{name, it->second.epoch, it->second.value, it->second.bytes});
  }
  // Drop cache entries for tables that no longer exist.
  for (auto it = snapshot_cache_.begin(); it != snapshot_cache_.end();) {
    it = tables_.count(it->first) ? std::next(it) : snapshot_cache_.erase(it);
  }
  return out;
}

std::uint64_t Database::table_epoch(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? 0 : it->second.epoch();
}

void Database::restore_table(const json::Value& table_snap, std::uint64_t epoch) {
  if (in_transaction()) throw SqlError("cannot restore inside a transaction");
  Table table = Table::from_snapshot(table_snap);
  const std::string name = table.name();
  auto [it, inserted] = tables_.insert_or_assign(name, std::move(table));
  if (epoch != 0) {
    // Same-lineage content: reinstate the stamp it carried at capture time.
    // The monotonic counter never re-issues it, so stamp equality keeps
    // implying content equality.
    it->second.set_epoch(epoch);
  } else {
    touch(it->second);
  }
}

bool Database::erase_table(const std::string& name) {
  if (in_transaction()) throw SqlError("cannot restore inside a transaction");
  return tables_.erase(name) > 0;
}

void Database::clear_mutation_log() { mutation_log_.clear(); }

std::uint64_t Database::state_size_bytes() const { return snapshot().wire_size(); }

std::vector<RowMutation> Database::drain_mutations() {
  if (in_transaction()) {
    // Only the committed prefix is visible.
    std::vector<RowMutation> committed(mutation_log_.begin(),
                                       mutation_log_.begin() +
                                           static_cast<std::ptrdiff_t>(transaction_log_mark_));
    mutation_log_.erase(mutation_log_.begin(),
                        mutation_log_.begin() + static_cast<std::ptrdiff_t>(transaction_log_mark_));
    transaction_log_mark_ = 0;
    return committed;
  }
  std::vector<RowMutation> out = std::move(mutation_log_);
  mutation_log_.clear();
  return out;
}

void Database::apply_replicated(const RowMutation& mutation) {
  Table& t = table(mutation.table);
  touch(t);
  switch (mutation.kind) {
    case RowMutation::Kind::kInsert:
      if (!t.find(mutation.rid)) t.insert_with_rid(mutation.rid, mutation.cells);
      break;
    case RowMutation::Kind::kUpdate:
      if (Row* row = t.find(mutation.rid)) {
        row->cells = mutation.cells;
      } else {
        t.insert_with_rid(mutation.rid, mutation.cells);  // update-wins resurrect
      }
      break;
    case RowMutation::Kind::kDelete:
      t.delete_where([&](const Row& row) { return row.rid == mutation.rid; });
      break;
  }
}

bool Database::operator==(const Database& other) const { return tables_ == other.tables_; }

}  // namespace edgstr::sqldb
