// In-memory SQL database with transactions, snapshots and a mutation log.
//
// This is the substrate behind the paper's "Database Tables" replication
// unit (§III-C): EdgStr's shadow execution wraps SQL commands in
// START TRANSACTION / ROLLBACK to keep tables unchanged during profiling,
// and snapshots the whole database to capture the service init state.
// The mutation log feeds CRDT-Table so each committed row change becomes a
// CRDT update operation (§III-G).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sqldb/parser.h"
#include "sqldb/table.h"

namespace edgstr::sqldb {

/// A query result: column names plus rows of cells.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<SqlValue>> rows;
  std::vector<std::uint64_t> rids;  ///< aligned with rows (SELECT only)
  std::size_t affected = 0;         ///< rows touched by a mutation

  bool empty() const { return rows.empty(); }
  json::Value to_json() const;
};

/// One committed row-level change, consumed by CRDT-Table.
struct RowMutation {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind;
  std::string table;
  std::uint64_t rid;
  std::vector<SqlValue> cells;  ///< post-image (empty for deletes)
};

/// One table's serialized state plus its change stamp — the unit the
/// copy-on-write checkpointing layer shares between snapshots.
struct TableComponent {
  std::string name;
  std::uint64_t epoch = 0;                    ///< Table::epoch() at serialization time
  std::shared_ptr<const json::Value> value;   ///< Table::snapshot() JSON
  std::uint64_t bytes = 0;                    ///< cached wire size of `value`
};

class Database {
 public:
  Database() = default;

  /// Parses and executes one SQL statement. `params` bind `?` placeholders
  /// in order. Throws SqlError on parse/binding errors or unknown tables.
  ResultSet execute(const std::string& sql, const std::vector<SqlValue>& params = {});

  /// Executes a pre-parsed statement.
  ResultSet execute(const Statement& stmt, const std::vector<SqlValue>& params = {});

  bool has_table(const std::string& name) const { return tables_.count(name) > 0; }
  const Table& table(const std::string& name) const;
  Table& table(const std::string& name);
  std::vector<std::string> table_names() const;

  /// Transaction control (single level; BEGIN inside a transaction throws).
  void begin();
  void commit();
  void rollback();
  bool in_transaction() const { return transaction_backup_.has_value(); }

  /// Whole-database snapshot/restore — the `save "init"` / `restore "init"`
  /// operations of §III-B.
  json::Value snapshot() const;
  void restore(const json::Value& snap);

  /// Copy-on-write snapshot surface. component_snapshots() serializes only
  /// tables whose epoch moved since the last call; untouched tables return
  /// the same shared JSON value (structural sharing across snapshots).
  std::vector<TableComponent> component_snapshots() const;
  /// Current change stamp of a table; 0 if the table does not exist.
  std::uint64_t table_epoch(const std::string& name) const;
  /// Replaces (or creates) one table from a per-table snapshot. A nonzero
  /// `epoch` reinstates the stamp the content carried when it was captured
  /// from *this* database; 0 means foreign content and stamps fresh.
  void restore_table(const json::Value& table_snap, std::uint64_t epoch);
  /// Drops a table without going through SQL; returns whether it existed.
  bool erase_table(const std::string& name);
  /// Forgets pending mutations (a restore resets the delta baseline).
  void clear_mutation_log();

  /// Approximate state size in bytes (serialized snapshot size); used for
  /// the cross-ISA S_app comparison in Figure 10(a).
  std::uint64_t state_size_bytes() const;

  /// Committed row mutations since the last drain. Mutations made inside a
  /// rolled-back transaction never appear.
  std::vector<RowMutation> drain_mutations();
  const std::vector<RowMutation>& pending_mutations() const { return mutation_log_; }

  /// Applies a replicated mutation (CRDT delivery path) without re-logging.
  void apply_replicated(const RowMutation& mutation);

  bool operator==(const Database& other) const;

 private:
  struct CachedTable {
    std::uint64_t epoch = 0;
    std::shared_ptr<const json::Value> value;
    std::uint64_t bytes = 0;
  };

  std::map<std::string, Table> tables_;
  std::vector<RowMutation> mutation_log_;
  std::optional<std::map<std::string, Table>> transaction_backup_;
  std::size_t transaction_log_mark_ = 0;
  std::uint64_t epoch_counter_ = 0;  ///< monotonic; epoch equality => content equality
  mutable std::map<std::string, CachedTable> snapshot_cache_;

  /// Stamps a table with a fresh epoch after a committed content change.
  void touch(Table& table) { table.set_epoch(++epoch_counter_); }

  static SqlValue resolve(const SqlExpr& expr, const std::vector<SqlValue>& params);
  std::function<bool(const Row&)> compile_where(const Table& table,
                                                const std::vector<Condition>& conds,
                                                const std::vector<SqlValue>& params) const;
};

}  // namespace edgstr::sqldb
