// In-memory SQL database with transactions, snapshots and a mutation log.
//
// This is the substrate behind the paper's "Database Tables" replication
// unit (§III-C): EdgStr's shadow execution wraps SQL commands in
// START TRANSACTION / ROLLBACK to keep tables unchanged during profiling,
// and snapshots the whole database to capture the service init state.
// The mutation log feeds CRDT-Table so each committed row change becomes a
// CRDT update operation (§III-G).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sqldb/parser.h"
#include "sqldb/table.h"

namespace edgstr::sqldb {

/// A query result: column names plus rows of cells.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<SqlValue>> rows;
  std::vector<std::uint64_t> rids;  ///< aligned with rows (SELECT only)
  std::size_t affected = 0;         ///< rows touched by a mutation

  bool empty() const { return rows.empty(); }
  json::Value to_json() const;
};

/// One committed row-level change, consumed by CRDT-Table.
struct RowMutation {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind;
  std::string table;
  std::uint64_t rid;
  std::vector<SqlValue> cells;  ///< post-image (empty for deletes)
};

class Database {
 public:
  Database() = default;

  /// Parses and executes one SQL statement. `params` bind `?` placeholders
  /// in order. Throws SqlError on parse/binding errors or unknown tables.
  ResultSet execute(const std::string& sql, const std::vector<SqlValue>& params = {});

  /// Executes a pre-parsed statement.
  ResultSet execute(const Statement& stmt, const std::vector<SqlValue>& params = {});

  bool has_table(const std::string& name) const { return tables_.count(name) > 0; }
  const Table& table(const std::string& name) const;
  Table& table(const std::string& name);
  std::vector<std::string> table_names() const;

  /// Transaction control (single level; BEGIN inside a transaction throws).
  void begin();
  void commit();
  void rollback();
  bool in_transaction() const { return transaction_backup_.has_value(); }

  /// Whole-database snapshot/restore — the `save "init"` / `restore "init"`
  /// operations of §III-B.
  json::Value snapshot() const;
  void restore(const json::Value& snap);

  /// Approximate state size in bytes (serialized snapshot size); used for
  /// the cross-ISA S_app comparison in Figure 10(a).
  std::uint64_t state_size_bytes() const;

  /// Committed row mutations since the last drain. Mutations made inside a
  /// rolled-back transaction never appear.
  std::vector<RowMutation> drain_mutations();
  const std::vector<RowMutation>& pending_mutations() const { return mutation_log_; }

  /// Applies a replicated mutation (CRDT delivery path) without re-logging.
  void apply_replicated(const RowMutation& mutation);

  bool operator==(const Database& other) const;

 private:
  std::map<std::string, Table> tables_;
  std::vector<RowMutation> mutation_log_;
  std::optional<std::map<std::string, Table>> transaction_backup_;
  std::size_t transaction_log_mark_ = 0;

  static SqlValue resolve(const SqlExpr& expr, const std::vector<SqlValue>& params);
  std::function<bool(const Row&)> compile_where(const Table& table,
                                                const std::vector<Condition>& conds,
                                                const std::vector<SqlValue>& params) const;
};

}  // namespace edgstr::sqldb
