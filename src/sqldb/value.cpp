#include "sqldb/value.h"

#include <cmath>
#include <stdexcept>

namespace edgstr::sqldb {

std::int64_t SqlValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) return static_cast<std::int64_t>(*d);
  throw std::logic_error("SqlValue: not an integer");
}

double SqlValue::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  throw std::logic_error("SqlValue: not numeric");
}

const std::string& SqlValue::as_text() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  throw std::logic_error("SqlValue: not text");
}

int SqlValue::compare(const SqlValue& other) const {
  // NULLs order first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  if (is_numeric() && other.is_numeric()) {
    const double a = as_double();
    const double b = other.as_double();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_text() && other.is_text()) {
    return as_text().compare(other.as_text());
  }
  // Mixed type: numbers order before text (SQLite-style type ordering).
  return is_numeric() ? -1 : 1;
}

namespace {
bool like_match(const std::string& text, std::size_t ti, const std::string& pat,
                std::size_t pi) {
  while (pi < pat.size()) {
    if (pat[pi] == '%') {
      // Collapse consecutive %.
      while (pi < pat.size() && pat[pi] == '%') ++pi;
      if (pi == pat.size()) return true;
      for (std::size_t k = ti; k <= text.size(); ++k) {
        if (like_match(text, k, pat, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pat[pi] != '_' && pat[pi] != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}
}  // namespace

bool SqlValue::like(const std::string& pattern) const {
  if (!is_text()) return false;
  return like_match(as_text(), 0, pattern, 0);
}

json::Value SqlValue::to_json() const {
  if (is_null()) return json::Value(nullptr);
  if (is_int()) return json::Value(static_cast<double>(std::get<std::int64_t>(data_)));
  if (is_double()) return json::Value(std::get<double>(data_));
  return json::Value(std::get<std::string>(data_));
}

SqlValue SqlValue::from_json(const json::Value& v) {
  switch (v.type()) {
    case json::Value::Type::kNull: return SqlValue();
    case json::Value::Type::kNumber: {
      const double d = v.as_number();
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return SqlValue(static_cast<std::int64_t>(d));
      }
      return SqlValue(d);
    }
    case json::Value::Type::kString: return SqlValue(v.as_string());
    case json::Value::Type::kBool: return SqlValue(static_cast<std::int64_t>(v.as_bool()));
    default:
      throw std::invalid_argument("SqlValue::from_json: unsupported JSON type");
  }
}

std::string SqlValue::to_string() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<std::int64_t>(data_));
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
    return buf;
  }
  return "'" + std::get<std::string>(data_) + "'";
}

}  // namespace edgstr::sqldb
