// Dynamically-typed SQL cell values.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "json/value.h"

namespace edgstr::sqldb {

/// A cell: NULL, 64-bit integer, double, or text.
class SqlValue {
 public:
  SqlValue() : data_(nullptr) {}
  SqlValue(std::nullptr_t) : data_(nullptr) {}
  SqlValue(std::int64_t i) : data_(i) {}
  SqlValue(int i) : data_(static_cast<std::int64_t>(i)) {}
  SqlValue(double d) : data_(d) {}
  SqlValue(std::string s) : data_(std::move(s)) {}
  SqlValue(const char* s) : data_(std::string(s)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_text() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  std::int64_t as_int() const;
  double as_double() const;  ///< also converts ints
  const std::string& as_text() const;

  /// SQL comparison; NULL compares equal only to NULL and is ordered first.
  /// Returns <0, 0, >0.
  int compare(const SqlValue& other) const;
  bool operator==(const SqlValue& other) const { return compare(other) == 0; }
  bool operator<(const SqlValue& other) const { return compare(other) < 0; }

  /// SQL LIKE with % (any run) and _ (single char) wildcards.
  bool like(const std::string& pattern) const;

  /// Lossless JSON round trip used by snapshots and CRDT-Table payloads.
  json::Value to_json() const;
  static SqlValue from_json(const json::Value& v);

  std::string to_string() const;  ///< debug/printing form

 private:
  std::variant<std::nullptr_t, std::int64_t, double, std::string> data_;
};

}  // namespace edgstr::sqldb
