#include "sqldb/table.h"

#include <algorithm>
#include <stdexcept>

#include "sqldb/parser.h"

namespace edgstr::sqldb {

Table::Table(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: needs at least one column");
}

std::size_t Table::column_index(const std::string& column) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return i;
  }
  throw SqlError("Table '" + name_ + "': unknown column '" + column + "'");
}

bool Table::has_column(const std::string& column) const {
  return std::find(columns_.begin(), columns_.end(), column) != columns_.end();
}

std::uint64_t Table::insert(std::vector<SqlValue> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table '" + name_ + "': cell count mismatch");
  }
  const std::uint64_t rid = next_rid_++;
  rows_.push_back(Row{rid, std::move(cells)});
  return rid;
}

void Table::insert_with_rid(std::uint64_t rid, std::vector<SqlValue> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table '" + name_ + "': cell count mismatch");
  }
  if (find(rid)) throw std::invalid_argument("Table '" + name_ + "': duplicate rid");
  rows_.push_back(Row{rid, std::move(cells)});
  next_rid_ = std::max(next_rid_, rid + 1);
}

std::size_t Table::update_where(const std::function<bool(const Row&)>& pred,
                                const std::function<void(Row&)>& update) {
  std::size_t affected = 0;
  for (Row& row : rows_) {
    if (pred(row)) {
      update(row);
      ++affected;
    }
  }
  return affected;
}

std::size_t Table::delete_where(const std::function<bool(const Row&)>& pred) {
  const std::size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(), pred), rows_.end());
  return before - rows_.size();
}

const Row* Table::find(std::uint64_t rid) const {
  for (const Row& row : rows_) {
    if (row.rid == rid) return &row;
  }
  return nullptr;
}

Row* Table::find(std::uint64_t rid) {
  for (Row& row : rows_) {
    if (row.rid == rid) return &row;
  }
  return nullptr;
}

json::Value Table::snapshot() const {
  json::Array cols;
  for (const std::string& c : columns_) cols.emplace_back(c);
  json::Array rows;
  for (const Row& row : rows_) {
    json::Array cells;
    for (const SqlValue& cell : row.cells) cells.push_back(cell.to_json());
    rows.push_back(json::Value::object(
        {{"rid", static_cast<double>(row.rid)}, {"cells", json::Value(std::move(cells))}}));
  }
  return json::Value::object({{"name", name_},
                              {"columns", json::Value(std::move(cols))},
                              {"rows", json::Value(std::move(rows))},
                              {"next_rid", static_cast<double>(next_rid_)}});
}

Table Table::from_snapshot(const json::Value& snap) {
  std::vector<std::string> columns;
  for (const json::Value& c : snap["columns"].as_array()) columns.push_back(c.as_string());
  Table table(snap["name"].as_string(), std::move(columns));
  for (const json::Value& r : snap["rows"].as_array()) {
    std::vector<SqlValue> cells;
    for (const json::Value& cell : r["cells"].as_array()) cells.push_back(SqlValue::from_json(cell));
    table.insert_with_rid(static_cast<std::uint64_t>(r["rid"].as_number()), std::move(cells));
  }
  table.next_rid_ = static_cast<std::uint64_t>(snap["next_rid"].as_number());
  return table;
}

bool Table::operator==(const Table& other) const {
  if (name_ != other.name_ || columns_ != other.columns_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  // Row order is storage order; compare as sets keyed by rid.
  for (const Row& row : rows_) {
    const Row* match = other.find(row.rid);
    if (!match) return false;
    if (row.cells.size() != match->cells.size()) return false;
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      if (!(row.cells[i] == match->cells[i])) return false;
    }
  }
  return true;
}

}  // namespace edgstr::sqldb
