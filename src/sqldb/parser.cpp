#include "sqldb/parser.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace edgstr::sqldb {

namespace {

struct Token {
  enum class Kind { kWord, kNumber, kString, kSymbol, kPlaceholder, kEnd };
  Kind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Token next() {
    skip_ws();
    if (pos_ >= sql_.size()) return {Token::Kind::kEnd, ""};
    const char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return word();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      return number();
    }
    if (c == '\'') return string_lit();
    if (c == '?') {
      ++pos_;
      return {Token::Kind::kPlaceholder, "?"};
    }
    return symbol();
  }

 private:
  const std::string& sql_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < sql_.size() && std::isspace(static_cast<unsigned char>(sql_[pos_]))) ++pos_;
  }

  Token word() {
    const std::size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) || sql_[pos_] == '_')) {
      ++pos_;
    }
    return {Token::Kind::kWord, sql_.substr(start, pos_ - start)};
  }

  Token number() {
    const std::size_t start = pos_;
    if (sql_[pos_] == '-') ++pos_;
    while (pos_ < sql_.size() &&
           (std::isdigit(static_cast<unsigned char>(sql_[pos_])) || sql_[pos_] == '.')) {
      ++pos_;
    }
    return {Token::Kind::kNumber, sql_.substr(start, pos_ - start)};
  }

  Token string_lit() {
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < sql_.size()) {
      const char c = sql_[pos_++];
      if (c == '\'') {
        if (pos_ < sql_.size() && sql_[pos_] == '\'') {
          text.push_back('\'');
          ++pos_;
          continue;
        }
        return {Token::Kind::kString, text};
      }
      text.push_back(c);
    }
    throw SqlError("unterminated string literal");
  }

  Token symbol() {
    // Multi-char operators first.
    static const char* kTwoChar[] = {"!=", "<>", "<=", ">="};
    for (const char* op : kTwoChar) {
      if (sql_.compare(pos_, 2, op) == 0) {
        pos_ += 2;
        return {Token::Kind::kSymbol, op};
      }
    }
    const char c = sql_[pos_++];
    return {Token::Kind::kSymbol, std::string(1, c)};
  }
};

class Parser {
 public:
  explicit Parser(const std::string& sql) : lexer_(sql) { advance(); }

  Statement parse() {
    const std::string head = expect_word();
    const std::string kw = util::to_lower(head);
    if (kw == "create") return parse_create();
    if (kw == "drop") return parse_drop();
    if (kw == "insert") return parse_insert();
    if (kw == "select") return parse_select();
    if (kw == "update") return parse_update();
    if (kw == "delete") return parse_delete();
    if (kw == "start") {
      expect_keyword("transaction");
      expect_end();
      return BeginStmt{};
    }
    if (kw == "begin") {
      expect_end();
      return BeginStmt{};
    }
    if (kw == "commit") {
      expect_end();
      return CommitStmt{};
    }
    if (kw == "rollback") {
      expect_end();
      return RollbackStmt{};
    }
    throw SqlError("unsupported SQL statement: " + head);
  }

 private:
  Lexer lexer_;
  Token current_;
  std::size_t placeholder_count_ = 0;

  void advance() { current_ = lexer_.next(); }

  bool at_end() const { return current_.kind == Token::Kind::kEnd; }

  void expect_end() {
    if (current_.kind == Token::Kind::kSymbol && current_.text == ";") advance();
    if (!at_end()) throw SqlError("unexpected trailing tokens near '" + current_.text + "'");
  }

  std::string expect_word() {
    if (current_.kind != Token::Kind::kWord) {
      throw SqlError("expected identifier, got '" + current_.text + "'");
    }
    std::string text = current_.text;
    advance();
    return text;
  }

  void expect_keyword(const std::string& kw) {
    const std::string word = expect_word();
    if (util::to_lower(word) != kw) throw SqlError("expected '" + kw + "', got '" + word + "'");
  }

  bool peek_keyword(const std::string& kw) const {
    return current_.kind == Token::Kind::kWord && util::to_lower(current_.text) == kw;
  }

  bool accept_keyword(const std::string& kw) {
    if (peek_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_symbol(const std::string& sym) {
    if (current_.kind != Token::Kind::kSymbol || current_.text != sym) {
      throw SqlError("expected '" + sym + "', got '" + current_.text + "'");
    }
    advance();
  }

  bool accept_symbol(const std::string& sym) {
    if (current_.kind == Token::Kind::kSymbol && current_.text == sym) {
      advance();
      return true;
    }
    return false;
  }

  SqlExpr parse_expr() {
    SqlExpr expr;
    switch (current_.kind) {
      case Token::Kind::kPlaceholder:
        expr.is_placeholder = true;
        expr.placeholder_index = placeholder_count_++;
        advance();
        return expr;
      case Token::Kind::kNumber: {
        const std::string text = current_.text;
        advance();
        if (text.find('.') != std::string::npos) {
          expr.literal = SqlValue(std::strtod(text.c_str(), nullptr));
        } else {
          expr.literal = SqlValue(static_cast<std::int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
        }
        return expr;
      }
      case Token::Kind::kString:
        expr.literal = SqlValue(current_.text);
        advance();
        return expr;
      case Token::Kind::kWord:
        if (accept_keyword("null")) {
          expr.literal = SqlValue();
          return expr;
        }
        [[fallthrough]];
      default:
        throw SqlError("expected value, got '" + current_.text + "'");
    }
  }

  std::vector<Condition> parse_where() {
    std::vector<Condition> conds;
    if (!accept_keyword("where")) return conds;
    while (true) {
      Condition cond;
      cond.column = expect_word();
      if (accept_keyword("like")) {
        cond.op = CompareOp::kLike;
      } else if (current_.kind == Token::Kind::kSymbol) {
        const std::string op = current_.text;
        advance();
        if (op == "=") cond.op = CompareOp::kEq;
        else if (op == "!=" || op == "<>") cond.op = CompareOp::kNe;
        else if (op == "<") cond.op = CompareOp::kLt;
        else if (op == "<=") cond.op = CompareOp::kLe;
        else if (op == ">") cond.op = CompareOp::kGt;
        else if (op == ">=") cond.op = CompareOp::kGe;
        else throw SqlError("unknown comparison operator '" + op + "'");
      } else {
        throw SqlError("expected comparison operator");
      }
      cond.value = parse_expr();
      conds.push_back(std::move(cond));
      if (!accept_keyword("and")) break;
    }
    return conds;
  }

  Statement parse_create() {
    expect_keyword("table");
    CreateTableStmt stmt;
    stmt.table = expect_word();
    expect_symbol("(");
    while (true) {
      stmt.columns.push_back(expect_word());
      if (accept_symbol(")")) break;
      expect_symbol(",");
    }
    expect_end();
    return stmt;
  }

  Statement parse_drop() {
    expect_keyword("table");
    DropTableStmt stmt;
    stmt.table = expect_word();
    expect_end();
    return stmt;
  }

  Statement parse_insert() {
    expect_keyword("into");
    InsertStmt stmt;
    stmt.table = expect_word();
    if (accept_symbol("(")) {
      while (true) {
        stmt.columns.push_back(expect_word());
        if (accept_symbol(")")) break;
        expect_symbol(",");
      }
    }
    expect_keyword("values");
    expect_symbol("(");
    while (true) {
      stmt.values.push_back(parse_expr());
      if (accept_symbol(")")) break;
      expect_symbol(",");
    }
    expect_end();
    return stmt;
  }

  Statement parse_select() {
    SelectStmt stmt;
    if (accept_symbol("*")) {
      // all columns
    } else {
      while (true) {
        stmt.columns.push_back(expect_word());
        if (!accept_symbol(",")) break;
      }
    }
    expect_keyword("from");
    stmt.table = expect_word();
    stmt.where = parse_where();
    if (accept_keyword("order")) {
      expect_keyword("by");
      stmt.order_by = expect_word();
      if (accept_keyword("desc")) stmt.order_desc = true;
      else accept_keyword("asc");
    }
    if (accept_keyword("limit")) {
      if (current_.kind != Token::Kind::kNumber) throw SqlError("LIMIT expects a number");
      stmt.limit = static_cast<std::size_t>(std::strtoull(current_.text.c_str(), nullptr, 10));
      advance();
    }
    expect_end();
    return stmt;
  }

  Statement parse_update() {
    UpdateStmt stmt;
    stmt.table = expect_word();
    expect_keyword("set");
    while (true) {
      std::string column = expect_word();
      expect_symbol("=");
      stmt.assignments.emplace_back(std::move(column), parse_expr());
      if (!accept_symbol(",")) break;
    }
    stmt.where = parse_where();
    expect_end();
    return stmt;
  }

  Statement parse_delete() {
    expect_keyword("from");
    DeleteStmt stmt;
    stmt.table = expect_word();
    stmt.where = parse_where();
    expect_end();
    return stmt;
  }
};

}  // namespace

Statement parse_sql(const std::string& sql) { return Parser(sql).parse(); }

bool looks_like_sql(const std::string& text) {
  try {
    parse_sql(text);
    return true;
  } catch (const SqlError&) {
    return false;
  }
}

bool is_mutation(const Statement& stmt) {
  return std::holds_alternative<InsertStmt>(stmt) || std::holds_alternative<UpdateStmt>(stmt) ||
         std::holds_alternative<DeleteStmt>(stmt) || std::holds_alternative<CreateTableStmt>(stmt) ||
         std::holds_alternative<DropTableStmt>(stmt);
}

std::string target_table(const Statement& stmt) {
  return std::visit(
      [](const auto& s) -> std::string {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, BeginStmt> || std::is_same_v<T, CommitStmt> ||
                      std::is_same_v<T, RollbackStmt>) {
          return "";
        } else {
          return s.table;
        }
      },
      stmt);
}

}  // namespace edgstr::sqldb
