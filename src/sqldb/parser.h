// Minimal SQL front end.
//
// Supported grammar (case-insensitive keywords):
//   CREATE TABLE t (c1, c2, ...)
//   DROP TABLE t
//   INSERT INTO t (c1, ...) VALUES (v1, ...)    -- or bare VALUES (...)
//   SELECT * | c1, c2 FROM t [WHERE cond [AND cond]...]
//          [ORDER BY c [DESC]] [LIMIT n]
//   UPDATE t SET c = v [, ...] [WHERE ...]
//   DELETE FROM t [WHERE ...]
//   START TRANSACTION | BEGIN
//   COMMIT
//   ROLLBACK
// Values: integer, float, 'string' (with '' escape), NULL, ? placeholder.
// Conditions: column OP value, OP in {=, !=, <>, <, <=, >, >=, LIKE}.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "sqldb/value.h"

namespace edgstr::sqldb {

class SqlError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A literal or a positional `?` placeholder.
struct SqlExpr {
  bool is_placeholder = false;
  std::size_t placeholder_index = 0;  ///< 0-based position among ?s
  SqlValue literal;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kLike };

struct Condition {
  std::string column;
  CompareOp op;
  SqlExpr value;
};

struct CreateTableStmt {
  std::string table;
  std::vector<std::string> columns;
};
struct DropTableStmt {
  std::string table;
};
struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  ///< empty => all columns in order
  std::vector<SqlExpr> values;
};
struct SelectStmt {
  std::string table;
  std::vector<std::string> columns;  ///< empty => *
  std::vector<Condition> where;
  std::optional<std::string> order_by;
  bool order_desc = false;
  std::optional<std::size_t> limit;
};
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, SqlExpr>> assignments;
  std::vector<Condition> where;
};
struct DeleteStmt {
  std::string table;
  std::vector<Condition> where;
};
struct BeginStmt {};
struct CommitStmt {};
struct RollbackStmt {};

using Statement = std::variant<CreateTableStmt, DropTableStmt, InsertStmt, SelectStmt,
                               UpdateStmt, DeleteStmt, BeginStmt, CommitStmt, RollbackStmt>;

/// Parses one statement; throws SqlError on malformed input.
Statement parse_sql(const std::string& sql);

/// True if the text parses as any supported SQL statement. Used by the
/// jalangi-style instrumentation to classify function arguments as SQL
/// commands (§III-C "Database Tables").
bool looks_like_sql(const std::string& text);

/// True if the statement mutates database state.
bool is_mutation(const Statement& stmt);

/// Name of the table a statement touches; empty for transaction control.
std::string target_table(const Statement& stmt);

}  // namespace edgstr::sqldb
