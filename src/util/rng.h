// Deterministic random number generation.
//
// All stochastic behaviour in the simulator (network jitter, workload
// arrivals, fuzzing) draws from a seeded Rng so that every benchmark and
// test run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edgstr::util {

/// Seeded xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller, scaled to (mean, stddev).
  double normal(double mean, double stddev);

  /// Exponential with the given rate (mean = 1/rate). Used for Poisson
  /// arrival processes in workload generators.
  double exponential(double rate);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Random index into a container of the given size. Requires size > 0.
  std::size_t index(std::size_t size);

  /// Random lowercase alphanumeric string of the given length.
  std::string token(std::size_t length);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// node its own stream without cross-coupling.
  Rng split();

 private:
  std::uint64_t state_[4];
};

}  // namespace edgstr::util
