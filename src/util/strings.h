// Small string utilities shared by the parsers and code generators.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace edgstr::util {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins the pieces with the separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Lowercases ASCII characters.
std::string to_lower(std::string_view text);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view text, std::string_view from, std::string_view to);

/// 64-bit FNV-1a hash; used for content fingerprints in the VFS and CRDTs.
std::uint64_t fnv1a(std::string_view data);

/// Human-readable byte count ("1.5 MB").
std::string format_bytes(double bytes);

/// Renders a double with the given precision, trimming trailing zeros.
std::string format_double(double value, int precision = 3);

}  // namespace edgstr::util
