#include "util/strings.h"

#include <array>
#include <cctype>
#include <cstdio>

namespace edgstr::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out += text.substr(start);
      return out;
    }
    out += text.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
}

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB", "TB"};
  std::size_t unit = 0;
  while (bytes >= 1024.0 && unit + 1 < kUnits.size()) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string out = buf;
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

}  // namespace edgstr::util
