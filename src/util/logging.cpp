#include "util/logging.h"

#include <iostream>
#include <mutex>

namespace edgstr::util {

namespace {

std::mutex g_mutex;
LogLevel g_level = LogLevel::kWarn;

void stderr_sink(LogLevel level, std::string_view message) {
  std::cerr << "[" << to_string(level) << "] " << message << "\n";
}

LogSink& sink_storage() {
  static LogSink sink = stderr_sink;
  return sink;
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_mutex);
  sink_storage() = sink ? std::move(sink) : stderr_sink;
}

void set_log_level(LogLevel level) {
  std::lock_guard lock(g_mutex);
  g_level = level;
}

LogLevel log_level() {
  std::lock_guard lock(g_mutex);
  return g_level;
}

void log(LogLevel level, std::string_view message) {
  std::lock_guard lock(g_mutex);
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  sink_storage()(level, message);
}

}  // namespace edgstr::util
