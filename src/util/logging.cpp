#include "util/logging.h"

#include <cctype>
#include <iostream>
#include <mutex>

namespace edgstr::util {

namespace {

std::mutex g_mutex;
LogLevel g_level = LogLevel::kWarn;

void stderr_sink(const LogRecord& record) {
  std::cerr << "[" << to_string(record.level) << "] " << record.message << "\n";
}

LogSink& sink_storage() {
  static LogSink sink = stderr_sink;
  return sink;
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

bool parse_log_level(std::string_view name, LogLevel* out) {
  std::string lower(name);
  for (char& c : lower) c = char(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") *out = LogLevel::kTrace;
  else if (lower == "debug") *out = LogLevel::kDebug;
  else if (lower == "info") *out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning") *out = LogLevel::kWarn;
  else if (lower == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_mutex);
  sink_storage() = sink ? std::move(sink) : stderr_sink;
}

void set_log_level(LogLevel level) {
  std::lock_guard lock(g_mutex);
  g_level = level;
}

LogLevel log_level() {
  std::lock_guard lock(g_mutex);
  return g_level;
}

void log(LogLevel level, std::string_view message) {
  // Nested emissions — a sink that itself logs — are dropped rather than
  // recursing without bound.
  thread_local bool t_in_sink = false;
  if (t_in_sink) return;

  // Snapshot the sink under the lock, invoke outside it: a sink that logs
  // (reentrancy) or blocks must not hold up — or deadlock — other loggers.
  LogSink sink;
  {
    std::lock_guard lock(g_mutex);
    if (static_cast<int>(level) < static_cast<int>(g_level)) return;
    sink = sink_storage();
  }
  t_in_sink = true;
  sink(LogRecord{level, message});
  t_in_sink = false;
}

}  // namespace edgstr::util
