#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace edgstr::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::normal(double mean, double stddev) {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 1e-12;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u = next_double();
  if (u <= 0.0) u = 1e-12;
  return -std::log(u) / rate;
}

bool Rng::chance(double probability) { return next_double() < probability; }

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("index: empty range");
  return static_cast<std::size_t>(next_u64() % size);
}

std::string Rng::token(std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[index(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace edgstr::util
