#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgstr::util {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::sum() const {
  double total = 0;
  for (double s : samples_) total += s;
  return total;
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary::mean on empty summary");
  return sum() / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty summary");
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty summary");
  ensure_sorted();
  return samples_.back();
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double accum = 0;
  for (double s : samples_) accum += (s - m) * (s - m);
  return std::sqrt(accum / static_cast<double>(samples_.size() - 1));
}

double Summary::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Summary::quantile on empty summary");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

BoxStats box_stats(const Summary& summary) {
  return BoxStats{summary.min(), summary.quantile(0.25), summary.median(),
                  summary.quantile(0.75), summary.max()};
}

LinearFit linear_regression(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("linear_regression: need >= 2 paired samples");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0;
    fit.intercept = sy / n;
    fit.r2 = 0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0) {
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double pred = fit.slope * xs[i] + fit.intercept;
      ss_res += (ys[i] - pred) * (ys[i] - pred);
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

}  // namespace edgstr::util
