// Lightweight leveled logging for the EdgStr simulation stack.
//
// Logging is routed through a single global sink so tests can silence or
// capture output. Levels follow the usual severity ordering; the default
// threshold is kWarn so library code stays quiet unless asked.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace edgstr::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

/// Returns a short uppercase tag ("TRACE", "DEBUG", ...) for a level.
std::string_view to_string(LogLevel level);

/// Sink invoked for every emitted record at or above the threshold.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the global sink. Passing nullptr restores the stderr sink.
void set_log_sink(LogSink sink);

/// Adjusts the global severity threshold.
void set_log_level(LogLevel level);

/// Current global severity threshold.
LogLevel log_level();

/// Emits one record if `level` passes the threshold.
void log(LogLevel level, std::string_view message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace edgstr::util

#define EDGSTR_LOG(level) ::edgstr::util::detail::LogLine(level)
#define EDGSTR_TRACE() EDGSTR_LOG(::edgstr::util::LogLevel::kTrace)
#define EDGSTR_DEBUG() EDGSTR_LOG(::edgstr::util::LogLevel::kDebug)
#define EDGSTR_INFO() EDGSTR_LOG(::edgstr::util::LogLevel::kInfo)
#define EDGSTR_WARN() EDGSTR_LOG(::edgstr::util::LogLevel::kWarn)
#define EDGSTR_ERROR() EDGSTR_LOG(::edgstr::util::LogLevel::kError)
