// Lightweight leveled logging for the EdgStr simulation stack.
//
// Logging is routed through a single global sink so tests can silence or
// capture output. The sink receives a structured LogRecord (level +
// message) rather than pre-formatted text, so layered consumers — the span
// layer, capture sinks in tests — can route on severity without parsing.
// Levels follow the usual severity ordering; the default threshold is
// kWarn so library code stays quiet unless asked.
//
// Thread/reentrancy safety: the sink and threshold are guarded by a mutex,
// and the sink is *invoked outside the lock* (on a copy), so a sink that
// itself logs — or two threads logging at once — cannot deadlock. A record
// emitted from inside a sink call (reentrancy) is dropped rather than
// recursing (the guard is thread_local, so one thread's sink call never
// suppresses another thread's records). Sinks may run concurrently from
// multiple threads; a sink that mutates shared state must synchronize
// itself. These properties make logging safe to call from the sharded
// runtime's worker lanes (DESIGN.md §11) with no further changes —
// lane-side code may log freely without perturbing determinism, because
// log output is not part of any exported byte stream.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace edgstr::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

/// Returns a short uppercase tag ("TRACE", "DEBUG", ...) for a level.
std::string_view to_string(LogLevel level);

/// Parses a level name ("trace", "DEBUG", ...); returns false on unknown.
bool parse_log_level(std::string_view name, LogLevel* out);

/// One emitted record. `message` is only valid for the duration of the
/// sink call — copy it if the sink retains records.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string_view message;
};

/// Sink invoked for every emitted record at or above the threshold.
using LogSink = std::function<void(const LogRecord&)>;

/// Replaces the global sink. Passing nullptr restores the stderr sink.
void set_log_sink(LogSink sink);

/// Adjusts the global severity threshold.
void set_log_level(LogLevel level);

/// Current global severity threshold.
LogLevel log_level();

/// Emits one record if `level` passes the threshold.
void log(LogLevel level, std::string_view message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace edgstr::util

#define EDGSTR_LOG(level) ::edgstr::util::detail::LogLine(level)
#define EDGSTR_TRACE() EDGSTR_LOG(::edgstr::util::LogLevel::kTrace)
#define EDGSTR_DEBUG() EDGSTR_LOG(::edgstr::util::LogLevel::kDebug)
#define EDGSTR_INFO() EDGSTR_LOG(::edgstr::util::LogLevel::kInfo)
#define EDGSTR_WARN() EDGSTR_LOG(::edgstr::util::LogLevel::kWarn)
#define EDGSTR_ERROR() EDGSTR_LOG(::edgstr::util::LogLevel::kError)
