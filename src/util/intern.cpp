#include "util/intern.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace edgstr::util {

namespace {

struct InternTable {
  // deque keeps element addresses stable as the table grows, so the
  // string_view keys and the references handed out never dangle.
  std::deque<std::string> strings;
  std::unordered_map<std::string_view, Symbol> ids;
  mutable std::shared_mutex mutex;

  InternTable() { strings.emplace_back(); }  // slot 0 = kNoSymbol = ""
};

InternTable& table() {
  static InternTable* t = new InternTable();  // leaked: symbols live forever
  return *t;
}

}  // namespace

Symbol intern(std::string_view name) {
  if (name.empty()) return kNoSymbol;
  InternTable& t = table();
  {
    std::shared_lock lock(t.mutex);
    auto it = t.ids.find(name);
    if (it != t.ids.end()) return it->second;
  }
  std::unique_lock lock(t.mutex);
  auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;
  const Symbol id = static_cast<Symbol>(t.strings.size());
  t.strings.emplace_back(name);
  t.ids.emplace(std::string_view(t.strings.back()), id);
  return id;
}

const std::string& symbol_name(Symbol sym) {
  InternTable& t = table();
  std::shared_lock lock(t.mutex);
  return t.strings[sym];
}

const std::string* symbol_cstr(Symbol sym) {
  InternTable& t = table();
  std::shared_lock lock(t.mutex);
  return &t.strings[sym];
}

std::size_t symbol_count() {
  InternTable& t = table();
  std::shared_lock lock(t.mutex);
  return t.strings.size() - 1;
}

}  // namespace edgstr::util
