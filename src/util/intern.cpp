#include "util/intern.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "util/strings.h"

namespace edgstr::util {

namespace {

// The table is sharded by string hash so concurrent interning from
// different lanes rarely touches the same mutex, and the symbol -> string
// direction (the hot read path: every event-record format, datalog
// compare, printer lookup) is lock-free: a spine of atomically published
// fixed-size pointer blocks, indexed directly by symbol id. An uncontended
// shard mutex is a single CAS, so the single-lane configuration pays no
// more than the old shared_mutex fast path.
//
// Determinism note: ids are handed out in first-intern order from one
// global counter, so two runs assign identical ids only if first-interns
// happen in the same order. Parse/registration time interning (the normal
// case) runs on the driver thread; lane-side code should only intern
// strings that are already in the table.

constexpr std::size_t kShardCount = 16;  // power of two
constexpr std::size_t kBlockBits = 12;
constexpr std::size_t kBlockSize = std::size_t(1) << kBlockBits;  // symbols per block
constexpr std::size_t kSpineSize = 4096;  // kSpineSize * kBlockSize ids max

using Slot = std::atomic<const std::string*>;

struct Shard {
  std::mutex mutex;
  // deque keeps element addresses stable as the shard grows, so the
  // string_view keys and the references handed out never dangle.
  std::deque<std::string> strings;
  std::unordered_map<std::string_view, Symbol> ids;
};

struct InternTable {
  Shard shards[kShardCount];
  std::atomic<Slot*> spine[kSpineSize] = {};
  std::atomic<std::uint32_t> next_id{1};
  std::string empty;  // slot 0 = kNoSymbol = ""

  InternTable() {
    Slot* block = new Slot[kBlockSize]();
    block[0].store(&empty, std::memory_order_relaxed);
    spine[0].store(block, std::memory_order_release);
  }
};

InternTable& table() {
  static InternTable* t = new InternTable();  // leaked: symbols live forever
  return *t;
}

Slot* block_for(InternTable& t, std::size_t block_index) {
  Slot* block = t.spine[block_index].load(std::memory_order_acquire);
  if (block) return block;
  Slot* fresh = new Slot[kBlockSize]();
  if (t.spine[block_index].compare_exchange_strong(block, fresh, std::memory_order_acq_rel,
                                                   std::memory_order_acquire)) {
    return fresh;
  }
  delete[] fresh;  // another thread installed the block first
  return block;
}

const std::string* lookup(Symbol sym) {
  InternTable& t = table();
  for (;;) {
    Slot* block = t.spine[sym >> kBlockBits].load(std::memory_order_acquire);
    const std::string* s =
        block ? block[sym & (kBlockSize - 1)].load(std::memory_order_acquire) : nullptr;
    if (s) return s;
    // Only reachable when a symbol id escaped to another thread before its
    // slot was published — the owning intern() is mid-flight; wait it out.
    std::this_thread::yield();
  }
}

}  // namespace

Symbol intern(std::string_view name) {
  if (name.empty()) return kNoSymbol;
  InternTable& t = table();
  Shard& shard = t.shards[fnv1a(name) & (kShardCount - 1)];
  std::lock_guard lock(shard.mutex);
  auto it = shard.ids.find(name);
  if (it != shard.ids.end()) return it->second;
  const Symbol id = t.next_id.fetch_add(1, std::memory_order_relaxed);
  if (id >= kSpineSize * kBlockSize) {
    throw std::length_error("intern: symbol space exhausted");
  }
  shard.strings.emplace_back(name);
  const std::string& stored = shard.strings.back();
  // Publish the reverse mapping before the id can escape this call: the
  // release store pairs with the acquire load in lookup().
  block_for(t, id >> kBlockBits)[id & (kBlockSize - 1)].store(&stored, std::memory_order_release);
  shard.ids.emplace(std::string_view(stored), id);
  return id;
}

const std::string& symbol_name(Symbol sym) { return *lookup(sym); }

const std::string* symbol_cstr(Symbol sym) { return lookup(sym); }

std::size_t symbol_count() { return table().next_id.load(std::memory_order_acquire) - 1; }

}  // namespace edgstr::util
