#include "util/metrics.h"

#include <cstdio>

#include "util/strings.h"

namespace edgstr::util {

std::vector<std::pair<std::string, double>> MetricsRegistry::snapshot(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, value] : counters_) {
    if (prefix.empty() || starts_with(name, prefix)) out.emplace_back(name, value);
  }
  return out;
}

double MetricsRegistry::sum(const std::string& prefix) const {
  double total = 0;
  for (const auto& [name, value] : counters_) {
    if (starts_with(name, prefix)) total += value;
  }
  return total;
}

void MetricsRegistry::reset(const std::string& prefix) {
  if (prefix.empty()) {
    counters_.clear();
    return;
  }
  for (auto it = counters_.begin(); it != counters_.end();) {
    it = starts_with(it->first, prefix) ? counters_.erase(it) : std::next(it);
  }
}

std::string MetricsRegistry::format(const std::string& prefix) const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot(prefix)) {
    // Counters are integral in practice; print without trailing zeros.
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(line, sizeof(line), "%-48s %12lld\n", name.c_str(),
                    static_cast<long long>(value));
    } else {
      std::snprintf(line, sizeof(line), "%-48s %12.2f\n", name.c_str(), value);
    }
    out += line;
  }
  return out;
}

}  // namespace edgstr::util
