#include "util/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace edgstr::util {

// ------------------------------------------------------------- Histogram --

namespace {

/// 1-2-5 ladder from `lo` up to (and including) the first value >= `hi`.
std::vector<double> ladder_125(double lo, double hi) {
  std::vector<double> bounds;
  double decade = lo;
  while (true) {
    for (const double step : {1.0, 2.0, 5.0}) {
      const double bound = decade * step;
      bounds.push_back(bound);
      if (bound >= hi) return bounds;
    }
    decade *= 10;
  }
}

}  // namespace

std::vector<double> Histogram::default_latency_bounds() { return ladder_125(1e-4, 60.0); }

std::vector<double> Histogram::default_count_bounds() { return ladder_125(1.0, 1e6); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: empty bucket bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[std::size_t(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * double(count_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cumulative + double(counts_[i]);
    if (next >= target) {
      // Linear interpolation inside bucket i; the observed min/max bound
      // the edge buckets tighter than the nominal ladder would.
      double lo = i == 0 ? min_ : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo) return lo;
      const double fraction = (target - cumulative) / double(counts_[i]);
      return lo + fraction * (hi - lo);
    }
    cumulative = next;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge: bucket layouts differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  counts_.assign(bounds_.size() + 1, 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

// ------------------------------------------------------- MetricsRegistry --

std::vector<std::pair<std::string, double>> MetricsRegistry::snapshot(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, value] : counters_) {
    if (prefix.empty() || starts_with(name, prefix)) out.emplace_back(name, value);
  }
  return out;
}

double MetricsRegistry::sum(const std::string& prefix) const {
  double total = 0;
  for (const auto& [name, value] : counters_) {
    if (starts_with(name, prefix)) total += value;
  }
  return total;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(name, Histogram()).first;
  it->second.observe(value);
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(name, Histogram(bounds)).first;
  it->second.observe(value);
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

double MetricsRegistry::quantile(const std::string& name, double q) const {
  const Histogram* h = histogram(name);
  return h ? h->quantile(q) : 0.0;
}

std::vector<std::pair<std::string, const Histogram*>> MetricsRegistry::histograms(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  for (const auto& [name, histogram] : histograms_) {
    if (prefix.empty() || starts_with(name, prefix)) out.emplace_back(name, &histogram);
  }
  return out;
}

void MetricsRegistry::reset(const std::string& prefix) {
  if (prefix.empty()) {
    counters_.clear();
    histograms_.clear();
    return;
  }
  for (auto it = counters_.begin(); it != counters_.end();) {
    it = starts_with(it->first, prefix) ? counters_.erase(it) : std::next(it);
  }
  for (auto it = histograms_.begin(); it != histograms_.end();) {
    it = starts_with(it->first, prefix) ? histograms_.erase(it) : std::next(it);
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, histogram] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, histogram);
    } else {
      it->second.merge(histogram);
    }
  }
}

std::string MetricsRegistry::format(const std::string& prefix) const {
  std::string out;
  char line[320];
  for (const auto& [name, value] : snapshot(prefix)) {
    // Counters are integral in practice; print without trailing zeros.
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(line, sizeof(line), "%-48s %12lld\n", name.c_str(),
                    static_cast<long long>(value));
    } else {
      std::snprintf(line, sizeof(line), "%-48s %12.2f\n", name.c_str(), value);
    }
    out += line;
  }
  for (const auto& [name, histogram] : histograms(prefix)) {
    std::snprintf(line, sizeof(line),
                  "%-48s count=%zu mean=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g\n",
                  name.c_str(), histogram->count(), histogram->mean(),
                  histogram->quantile(0.50), histogram->quantile(0.95),
                  histogram->quantile(0.99), histogram->max());
    out += line;
  }
  return out;
}

}  // namespace edgstr::util
