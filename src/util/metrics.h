// Named-counter + fixed-bucket-histogram registry for runtime
// instrumentation.
//
// The replication plane records per-endpoint / per-doc sync statistics
// (rounds, ops shipped, bytes by doc unit, convergence lag) into one of
// these; the request path records service-latency histograms; benches and
// the CLI print or export them. Counters and histograms are created on
// first touch — no registration step — and live in sorted maps so printed
// output is deterministic. Metric names follow `layer.component.name`
// (e.g. `runtime.request.latency.local`, `sync.round.bytes`).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace edgstr::util {

/// Fixed-bucket histogram with quantile estimation. Buckets are defined by
/// sorted upper bounds; values above the last bound land in an implicit
/// overflow bucket. Observed min/max are tracked exactly, so quantile
/// interpolation is tight at the distribution's edges.
class Histogram {
 public:
  /// `bounds` must be sorted ascending and non-empty.
  explicit Histogram(std::vector<double> bounds = default_latency_bounds());

  void observe(double value);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Estimated q-quantile (q clamped to [0, 1]) by linear interpolation
  /// inside the bucket holding the target rank; 0 when empty. Error is
  /// bounded by the width of that bucket.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Merges another histogram; bucket layouts must match.
  void merge(const Histogram& other);
  void reset();

  /// Latency ladder in seconds: 0.1 ms .. 60 s on a 1-2-5 progression.
  static std::vector<double> default_latency_bounds();
  /// Magnitude ladder for counts/bytes: 1 .. 1e6 on a 1-2-5 progression.
  static std::vector<double> default_count_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow last)
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  // --- counters / gauges ---------------------------------------------------

  /// Adds `delta` to the named counter (creating it at zero).
  void add(const std::string& name, double delta = 1.0) { counters_[name] += delta; }

  /// Overwrites the named counter (gauge semantics).
  void set(const std::string& name, double value) { counters_[name] = value; }

  /// Current value; zero when the counter was never touched.
  double value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
  }

  /// Counters whose names start with `prefix` (empty = all), sorted.
  std::vector<std::pair<std::string, double>> snapshot(const std::string& prefix = {}) const;

  /// Sum over every counter whose name starts with `prefix`.
  double sum(const std::string& prefix) const;

  // --- histograms ----------------------------------------------------------

  /// Records one sample into the named histogram, creating it on first
  /// touch with the default latency buckets (or `bounds`, when given; the
  /// bounds of an existing histogram are never changed).
  void observe(const std::string& name, double value);
  void observe(const std::string& name, double value, const std::vector<double>& bounds);

  /// Named histogram, or nullptr when it was never observed.
  const Histogram* histogram(const std::string& name) const;

  /// Estimated quantile of the named histogram; 0 when absent.
  double quantile(const std::string& name, double q) const;

  /// Histograms whose names start with `prefix` (empty = all), sorted.
  std::vector<std::pair<std::string, const Histogram*>> histograms(
      const std::string& prefix = {}) const;

  // --- registry-wide -------------------------------------------------------

  /// Drops counters AND histograms whose names start with `prefix`
  /// (empty = all).
  void reset(const std::string& prefix = {});

  /// Folds another registry into this one: counters add, histograms merge
  /// (a histogram absent here is copied, bounds and all). Merging the
  /// per-lane scratch registries of a parallel phase in a fixed lane order
  /// keeps float accumulation — and thus exported bytes — deterministic.
  void merge(const MetricsRegistry& other);

  /// "name value" lines for every counter under `prefix`, followed by one
  /// summary line per histogram (count/mean/p50/p95/p99), sorted by name.
  std::string format(const std::string& prefix = {}) const;

  /// Number of counters (histograms are counted separately).
  std::size_t size() const { return counters_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace edgstr::util
