// Lightweight named-counter registry for runtime instrumentation.
//
// The replication plane records per-endpoint / per-doc sync statistics
// (rounds, ops shipped, bytes by doc unit, convergence lag) into one of
// these; benches and the CLI print them. Counters are created on first
// touch — no registration step — and live in a sorted map so printed
// output is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace edgstr::util {

class MetricsRegistry {
 public:
  /// Adds `delta` to the named counter (creating it at zero).
  void add(const std::string& name, double delta = 1.0) { counters_[name] += delta; }

  /// Overwrites the named counter (gauge semantics).
  void set(const std::string& name, double value) { counters_[name] = value; }

  /// Current value; zero when the counter was never touched.
  double value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
  }

  /// Counters whose names start with `prefix` (empty = all), sorted.
  std::vector<std::pair<std::string, double>> snapshot(const std::string& prefix = {}) const;

  /// Sum over every counter whose name starts with `prefix`.
  double sum(const std::string& prefix) const;

  /// Drops counters whose names start with `prefix` (empty = all).
  void reset(const std::string& prefix = {});

  /// "name value" lines for every counter under `prefix`, sorted by name.
  std::string format(const std::string& prefix = {}) const;

  std::size_t size() const { return counters_.size(); }

 private:
  std::map<std::string, double> counters_;
};

}  // namespace edgstr::util
