// Process-wide string interning.
//
// MiniJS identifiers, property keys, RW-log variable names and Datalog
// symbols all flow through here: interning happens once (at lex/parse or
// native registration time), after which every comparison is a 32-bit id
// compare and every event record stores 4 bytes instead of a heap string.
//
// Symbol 0 is reserved as "no symbol"; symbol_name(0) is the empty string.
// Interned strings live for the lifetime of the process, so the returned
// references are stable.
//
// Thread-safety: interning is sharded by string hash (16 mutexes), and the
// symbol -> string direction is lock-free (atomically published pointer
// blocks indexed by id), so concurrent worker lanes neither contend on a
// global lock nor block each other on reads. Symbol ids follow global
// first-intern order; intern output-visible names from the driver thread
// if you need them byte-stable across runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace edgstr::util {

using Symbol = std::uint32_t;
inline constexpr Symbol kNoSymbol = 0;

/// Returns the id for `name`, interning it on first sight. Thread-safe.
Symbol intern(std::string_view name);

/// The string behind a symbol. Stable reference; "" for kNoSymbol.
const std::string& symbol_name(Symbol sym);

/// Stable pointer form of symbol_name (used by datalog::Value to keep
/// lexicographic ordering while comparing identity first).
const std::string* symbol_cstr(Symbol sym);

/// Number of distinct strings interned so far (diagnostics/benches).
std::size_t symbol_count();

}  // namespace edgstr::util
