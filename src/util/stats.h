// Descriptive statistics used across the evaluation harness: running
// summaries, quantiles (Figure 10(b) box plots), and ordinary least-squares
// regression (Figure 6(b) throughput-slope analysis).
#pragma once

#include <cstddef>
#include <vector>

namespace edgstr::util {

/// Accumulates samples and reports summary statistics. Samples are stored so
/// exact quantiles can be computed; intended for benchmark-sized data sets.
class Summary {
 public:
  void add(double sample);
  void merge(const Summary& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;

  /// Exact quantile by linear interpolation, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Five-number summary used by the Figure 10(b) proxy-strategy comparison.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};
BoxStats box_stats(const Summary& summary);

/// Ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;  ///< coefficient of determination
};

/// Fits a line through the point set. Requires xs.size() == ys.size() >= 2.
LinearFit linear_regression(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace edgstr::util
