#include "datalog/engine.h"

#include <stdexcept>

namespace edgstr::datalog {

bool Engine::add_fact(const std::string& predicate, Fact fact) {
  return facts_[predicate].insert(std::move(fact)).second;
}

void Engine::add_rule(Rule rule) {
  if (rule.head.terms.empty()) throw std::invalid_argument("rule head needs terms");
  for (const Term& t : rule.head.terms) {
    if (t.is_var()) {
      bool bound = false;
      for (const Atom& b : rule.body) {
        for (const Term& bt : b.terms) {
          if (bt.is_var() && bt.var_name() == t.var_name()) bound = true;
        }
      }
      if (!bound) {
        throw std::invalid_argument("unsafe rule: head variable '" + t.var_name() +
                                    "' not bound in body: " + rule.to_string());
      }
    }
  }
  rules_.push_back(std::move(rule));
}

std::optional<Bindings> Engine::unify(const Atom& pattern, const Fact& fact,
                                      const Bindings& bindings) {
  if (pattern.terms.size() != fact.size()) return std::nullopt;
  Bindings extended = bindings;
  for (std::size_t i = 0; i < fact.size(); ++i) {
    const Term& t = pattern.terms[i];
    if (t.is_var()) {
      auto it = extended.find(t.var_name());
      if (it == extended.end()) {
        extended.emplace(t.var_name(), fact[i]);
      } else if (!(it->second == fact[i])) {
        return std::nullopt;
      }
    } else if (!(t.value() == fact[i])) {
      return std::nullopt;
    }
  }
  return extended;
}

void Engine::join(const std::vector<Atom>& body, std::size_t i, const Bindings& bindings,
                  const std::map<std::string, std::set<Fact>>* delta,
                  std::optional<std::size_t> delta_index, const std::vector<Disequality>& diseq,
                  std::vector<Bindings>& out) const {
  if (i == body.size()) {
    for (const Disequality& d : diseq) {
      auto l = bindings.find(d.left);
      auto r = bindings.find(d.right);
      if (l != bindings.end() && r != bindings.end() && l->second == r->second) return;
    }
    out.push_back(bindings);
    return;
  }
  const Atom& a = body[i];
  const std::set<Fact>* source = nullptr;
  if (delta_index && *delta_index == i) {
    if (delta) {
      auto it = delta->find(a.predicate);
      if (it == delta->end()) return;
      source = &it->second;
    }
  } else {
    auto it = facts_.find(a.predicate);
    if (it == facts_.end()) return;
    source = &it->second;
  }
  for (const Fact& fact : *source) {
    if (auto extended = unify(a, fact, bindings)) {
      join(body, i + 1, *extended, delta, delta_index, diseq, out);
    }
  }
}

void Engine::run() {
  // Round 0: naive pass over all rules to seed the delta.
  std::map<std::string, std::set<Fact>> delta;
  for (const Rule& rule : rules_) {
    std::vector<Bindings> results;
    join(rule.body, 0, {}, nullptr, std::nullopt, rule.diseq, results);
    for (const Bindings& b : results) {
      Fact fact;
      fact.reserve(rule.head.terms.size());
      for (const Term& t : rule.head.terms) {
        fact.push_back(t.is_var() ? b.at(t.var_name()) : t.value());
      }
      if (add_fact(rule.head.predicate, fact)) delta[rule.head.predicate].insert(fact);
    }
  }

  // Semi-naive rounds: each body atom in turn is restricted to the delta.
  while (!delta.empty()) {
    std::map<std::string, std::set<Fact>> next_delta;
    for (const Rule& rule : rules_) {
      for (std::size_t pos = 0; pos < rule.body.size(); ++pos) {
        if (!delta.count(rule.body[pos].predicate)) continue;
        std::vector<Bindings> results;
        join(rule.body, 0, {}, &delta, pos, rule.diseq, results);
        for (const Bindings& b : results) {
          Fact fact;
          fact.reserve(rule.head.terms.size());
          for (const Term& t : rule.head.terms) {
            fact.push_back(t.is_var() ? b.at(t.var_name()) : t.value());
          }
          if (add_fact(rule.head.predicate, fact)) next_delta[rule.head.predicate].insert(fact);
        }
      }
    }
    delta = std::move(next_delta);
  }
}

const std::set<Fact>& Engine::facts(const std::string& predicate) const {
  static const std::set<Fact> kEmpty;
  auto it = facts_.find(predicate);
  return it == facts_.end() ? kEmpty : it->second;
}

bool Engine::holds(const std::string& predicate, const Fact& fact) const {
  auto it = facts_.find(predicate);
  return it != facts_.end() && it->second.count(fact) > 0;
}

std::vector<Bindings> Engine::query(const Atom& pattern) const {
  std::vector<Bindings> out;
  join({pattern}, 0, {}, nullptr, std::nullopt, {}, out);
  return out;
}

std::vector<Bindings> Engine::query_all(const std::vector<Atom>& pattern) const {
  std::vector<Bindings> out;
  join(pattern, 0, {}, nullptr, std::nullopt, {}, out);
  return out;
}

std::size_t Engine::fact_count() const {
  std::size_t total = 0;
  for (const auto& [pred, facts] : facts_) total += facts.size();
  return total;
}

std::vector<std::string> Engine::predicates() const {
  std::vector<std::string> out;
  out.reserve(facts_.size());
  for (const auto& [pred, facts] : facts_) out.push_back(pred);
  return out;
}

}  // namespace edgstr::datalog
