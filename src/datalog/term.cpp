#include "datalog/term.h"

namespace edgstr::datalog {

Term Term::var(std::string name) {
  Term t;
  t.is_var_ = true;
  t.name_ = std::move(name);
  return t;
}

Term Term::val(Value value) {
  Term t;
  t.is_var_ = false;
  t.value_ = std::move(value);
  return t;
}

Atom atom(std::string predicate, std::vector<Term> terms) {
  return Atom{std::move(predicate), std::move(terms)};
}

std::string Atom::to_string() const {
  std::string out = predicate + "(";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i) out += ", ";
    out += terms[i].to_string();
  }
  return out + ")";
}

std::string Rule::to_string() const {
  std::string out = head.to_string() + " :- ";
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i) out += ", ";
    out += body[i].to_string();
  }
  for (const Disequality& d : diseq) {
    out += ", " + d.left + " != " + d.right;
  }
  return out + ".";
}

}  // namespace edgstr::datalog
