// Bottom-up Datalog evaluation engine (semi-naive).
//
// Scale note: the statement universes involved (one service handler plus
// its callees) are hundreds of statements, so the engine favours clarity
// over asymptotics while still implementing proper semi-naive iteration —
// each round joins only against the facts newly derived in the previous
// round, so transitive closures converge in O(paths), not O(rounds*facts).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "datalog/term.h"

namespace edgstr::datalog {

/// Variable bindings produced by a query.
using Bindings = std::map<std::string, Value>;

class Engine {
 public:
  /// Asserts one ground fact. Returns false if it was already present.
  bool add_fact(const std::string& predicate, Fact fact);

  /// Registers a rule. Rules added after run() require a re-run.
  void add_rule(Rule rule);

  /// Evaluates all rules to fixpoint (semi-naive).
  void run();

  /// All facts of a predicate.
  const std::set<Fact>& facts(const std::string& predicate) const;

  /// True if the ground atom holds.
  bool holds(const std::string& predicate, const Fact& fact) const;

  /// Finds every binding of the pattern's variables against the database.
  /// Ground terms in the pattern filter; variables bind.
  std::vector<Bindings> query(const Atom& pattern) const;

  /// Multi-atom conjunctive query with shared variables.
  std::vector<Bindings> query_all(const std::vector<Atom>& pattern) const;

  std::size_t fact_count() const;
  std::size_t predicate_count() const { return facts_.size(); }
  std::vector<std::string> predicates() const;

 private:
  std::map<std::string, std::set<Fact>> facts_;
  std::vector<Rule> rules_;

  /// Attempts to unify a pattern atom against a fact under `bindings`;
  /// returns the extended bindings on success.
  static std::optional<Bindings> unify(const Atom& pattern, const Fact& fact,
                                       const Bindings& bindings);

  /// Enumerates all bindings satisfying body[i..] given current bindings;
  /// `delta_index`, if set, forces that body position to match only facts
  /// from `delta` (semi-naive restriction).
  void join(const std::vector<Atom>& body, std::size_t i, const Bindings& bindings,
            const std::map<std::string, std::set<Fact>>* delta, std::optional<std::size_t> delta_index,
            const std::vector<Disequality>& diseq, std::vector<Bindings>& out) const;
};

}  // namespace edgstr::datalog
