// Datalog terms, atoms, facts, and rules.
//
// EdgStr expresses its dependence analysis declaratively (§III-E): MiniJS
// statements become facts (RW-LOG, ACTUAL, POST-DOM, ...) and the analysis
// rules (STMT-UNMAR, STMT-MAR, STMT-DEP with transitive closure) become
// Datalog rules evaluated bottom-up.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/intern.h"

namespace edgstr::datalog {

/// A ground value: integer or symbol (interned string).
///
/// Symbols are stored as 4-byte interned ids — copying facts during joins
/// copies machine words, not heap strings — but the ordering observable
/// through operator< stays exactly what the std::string representation
/// had: ints before symbols, symbols lexicographic by text. The fact sets
/// the engine derives are therefore byte-identical to the pre-interning
/// ones when printed.
class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  Value(std::int64_t i) : data_(i) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::string s) : data_(util::intern(s)) {}
  Value(const char* s) : data_(util::intern(s)) {}

  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_symbol() const { return std::holds_alternative<util::Symbol>(data_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  const std::string& as_symbol() const {
    return util::symbol_name(std::get<util::Symbol>(data_));
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator<(const Value& other) const {
    // Matches std::variant<int64,string> ordering: alternative index first.
    if (data_.index() != other.data_.index()) return data_.index() < other.data_.index();
    if (is_int()) return as_int() < other.as_int();
    const util::Symbol a = std::get<util::Symbol>(data_);
    const util::Symbol b = std::get<util::Symbol>(other.data_);
    if (a == b) return false;  // identity shortcut: no text compare
    return *util::symbol_cstr(a) < *util::symbol_cstr(b);
  }

  std::string to_string() const {
    return is_int() ? std::to_string(as_int()) : "'" + as_symbol() + "'";
  }

 private:
  std::variant<std::int64_t, util::Symbol> data_;
};

/// A term: either a variable (by name) or a ground value.
class Term {
 public:
  /// Variable term, e.g. Term::var("S1").
  static Term var(std::string name);
  /// Constant term.
  static Term val(Value value);
  static Term val(std::int64_t i) { return val(Value(i)); }
  static Term val(std::string s) { return val(Value(std::move(s))); }

  bool is_var() const { return is_var_; }
  const std::string& var_name() const { return name_; }
  const Value& value() const { return value_; }

  std::string to_string() const { return is_var_ ? name_ : value_.to_string(); }

 private:
  bool is_var_ = false;
  std::string name_;
  Value value_;
};

/// A ground tuple for one predicate.
using Fact = std::vector<Value>;

/// predicate(t1, ..., tn), possibly with variables.
struct Atom {
  std::string predicate;
  std::vector<Term> terms;

  std::string to_string() const;
};

/// Inequality side-constraint between two body variables: X != Y.
struct Disequality {
  std::string left;
  std::string right;
};

/// head :- body[0], ..., body[k], diseq constraints.
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Disequality> diseq;

  std::string to_string() const;
};

// Convenience builders.
inline Term V(std::string name) { return Term::var(std::move(name)); }
inline Term C(std::int64_t i) { return Term::val(i); }
inline Term C(std::string s) { return Term::val(std::move(s)); }
inline Term C(const char* s) { return Term::val(std::string(s)); }

Atom atom(std::string predicate, std::vector<Term> terms);

}  // namespace edgstr::datalog
