// Windowed time-series, flight recorder, and SLO watchdog unit tests.
//
// The export-facing properties (byte-identity, capture-off purity) live in
// obs_test.cpp and sim_test.cpp; this file pins the semantics the exports
// are built on: window placement at boundaries, merge discipline, ring
// wraparound, and the watchdog's streak / no-data / fire-once rules.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "obs/watchdog.h"
#include "runtime/sharded_runtime.h"
#include "sqldb/parser.h"

namespace edgstr {
namespace {

// ---------------------------------------------------------------- TimeSeries

TEST(TimeSeriesTest, BoundarySampleLandsInTheWindowItOpens) {
  obs::TimeSeries series(2.0);
  EXPECT_EQ(series.window_index(0.0), 0);
  EXPECT_EQ(series.window_index(1.999), 0);
  EXPECT_EQ(series.window_index(2.0), 1);  // exactly on the boundary
  EXPECT_EQ(series.window_index(3.5), 1);
  EXPECT_EQ(series.window_index(4.0), 2);

  series.add(1.999, "req");
  series.add(2.0, "req");
  EXPECT_EQ(series.counter_at("req", 0), 1.0);
  EXPECT_EQ(series.counter_at("req", 1), 1.0);
  EXPECT_EQ(series.counter_at("req", 2), 0.0);
}

TEST(TimeSeriesTest, CountersAccumulateAndSumThroughGaps) {
  obs::TimeSeries series(1.0);
  series.add(0.1, "ops", 2.0);
  series.add(0.9, "ops", 3.0);
  series.add(4.5, "ops", 1.0);  // windows 1..3 untouched
  EXPECT_EQ(series.counter_at("ops", 0), 5.0);
  EXPECT_EQ(series.counter_at("ops", 2), 0.0);
  EXPECT_EQ(series.counter_through("ops", 0), 5.0);
  EXPECT_EQ(series.counter_through("ops", 3), 5.0);
  EXPECT_EQ(series.counter_through("ops", 4), 6.0);
  EXPECT_EQ(series.counter_through("missing", 4), 0.0);
  EXPECT_EQ(series.last_window(), 4);
}

TEST(TimeSeriesTest, GaugesLastWriteWinsWithinAWindow) {
  obs::TimeSeries series(1.0);
  series.set(0.2, "depth", 7.0);
  series.set(0.8, "depth", 3.0);
  EXPECT_EQ(series.gauge_at("depth", 0), 3.0);
  EXPECT_EQ(series.gauge_at("depth", 1, -1.0), -1.0);  // fallback when untouched
}

TEST(TimeSeriesTest, HistogramsArePerWindow) {
  obs::TimeSeries series(1.0);
  series.observe(0.1, "lat", 0.005);
  series.observe(0.2, "lat", 0.010);
  series.observe(1.5, "lat", 0.020);
  ASSERT_NE(series.histogram_at("lat", 0), nullptr);
  EXPECT_EQ(series.histogram_at("lat", 0)->count(), 2u);
  ASSERT_NE(series.histogram_at("lat", 1), nullptr);
  EXPECT_EQ(series.histogram_at("lat", 1)->count(), 1u);
  EXPECT_EQ(series.histogram_at("lat", 2), nullptr);
  EXPECT_EQ(series.histogram_at("missing", 0), nullptr);
}

TEST(TimeSeriesTest, EmptyClearAndAddAt) {
  obs::TimeSeries series(1.0);
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.last_window(), -1);
  series.add_at(5, "alerts");  // window-addressed, no clock involved
  EXPECT_EQ(series.counter_at("alerts", 5), 1.0);
  EXPECT_EQ(series.last_window(), 5);
  series.clear();
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.last_window(), -1);
}

TEST(TimeSeriesTest, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  obs::TimeSeries a(1.0), b(1.0);
  a.add(0.5, "ops", 2.0);
  a.set(0.5, "depth", 1.0);
  a.set(1.5, "depth", 9.0);
  a.observe(0.5, "lat", 0.005);
  b.add(0.5, "ops", 3.0);
  b.add(2.5, "ops", 1.0);
  b.set(0.5, "depth", 4.0);  // overwrites a's window 0; a's window 1 survives
  b.observe(0.5, "lat", 0.010);
  b.observe(3.5, "lat", 0.020);

  a.merge(b);
  EXPECT_EQ(a.counter_at("ops", 0), 5.0);
  EXPECT_EQ(a.counter_at("ops", 2), 1.0);
  EXPECT_EQ(a.gauge_at("depth", 0), 4.0);
  EXPECT_EQ(a.gauge_at("depth", 1), 9.0);
  EXPECT_EQ(a.histogram_at("lat", 0)->count(), 2u);
  EXPECT_EQ(a.histogram_at("lat", 3)->count(), 1u);
  EXPECT_EQ(a.last_window(), 3);

  obs::TimeSeries wider(2.0);
  EXPECT_THROW(a.merge(wider), std::invalid_argument);
}

TEST(TimeSeriesTest, RejectsNonPositiveWindow) {
  EXPECT_THROW(obs::TimeSeries(0.0), std::invalid_argument);
  EXPECT_THROW(obs::TimeSeries(-1.0), std::invalid_argument);
}

// ------------------------------------------------------------ FlightRecorder

TEST(FlightRecorderTest, RingWraparoundKeepsTheNewestEvents) {
  obs::FlightRecorder flight(4);
  for (int i = 0; i < 10; ++i) {
    flight.record(double(i), "edge0", "send", "n=" + std::to_string(i));
  }
  EXPECT_EQ(flight.recorded(), 10u);
  EXPECT_EQ(flight.retained(), 4u);
  const std::vector<obs::FlightEvent> events = flight.dump();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first (serials are 1-based, so events 7..10 survive),
  // recording order preserved across the wrap.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].serial, 7u + i);
    EXPECT_EQ(events[i].detail, "n=" + std::to_string(6 + int(i)));
  }
}

TEST(FlightRecorderTest, PerHostRingsKeepChattyHostsFromEvictingQuietOnes) {
  obs::FlightRecorder flight(4);
  flight.record(0.5, "edge1", "crash", "epoch=1");  // the rare event
  for (int i = 0; i < 100; ++i) flight.record(1.0 + i, "edge0", "send", "flood");
  bool crash_survived = false;
  for (const obs::FlightEvent& event : flight.dump()) {
    if (event.host == "edge1" && event.kind == "crash") crash_survived = true;
  }
  EXPECT_TRUE(crash_survived);
  EXPECT_EQ(flight.retained(), 5u);  // 4 flood events + the crash
}

TEST(FlightRecorderTest, DumpMergesHostsInArrivalOrder) {
  obs::FlightRecorder flight(8);
  flight.record(1.0, "b", "send", "1");
  flight.record(2.0, "a", "apply", "2");
  flight.record(3.0, "b", "send", "3");
  const std::vector<obs::FlightEvent> events = flight.dump();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) EXPECT_EQ(events[i].serial, i + 1);
  EXPECT_EQ(events[1].host, "a");
}

TEST(FlightRecorderTest, DumpTextNamesCountsAndFormatsLines) {
  obs::FlightRecorder flight(4);
  for (int i = 0; i < 6; ++i) flight.record(12.345678, "edge1", "crash", "epoch=2");
  const std::string text = flight.dump_text();
  EXPECT_NE(text.find("6 events recorded"), std::string::npos) << text;
  EXPECT_NE(text.find("4 retained"), std::string::npos) << text;
  EXPECT_NE(text.find("12.345678"), std::string::npos) << text;
  EXPECT_NE(text.find("crash"), std::string::npos) << text;
  EXPECT_NE(text.find("epoch=2"), std::string::npos) << text;
}

TEST(FlightRecorderTest, ZeroRingIsRejected) {
  EXPECT_THROW(obs::FlightRecorder(0), std::invalid_argument);
}

// ------------------------------------------------------------------ Watchdog

obs::SloRule rate_rule(const std::string& metric, double threshold, std::size_t windows) {
  obs::SloRule rule;
  rule.name = "rate-" + metric;
  rule.kind = obs::SloRule::Kind::kRate;
  rule.metric = metric;
  rule.threshold = threshold;
  rule.windows = windows;
  return rule;
}

TEST(WatchdogTest, RateStreakFiresOnceAtKAndRearmsAfterReset) {
  obs::TimeSeries series(1.0);
  obs::Watchdog watchdog(&series, {rate_rule("fail", 3.0, 2)});
  // Windows: 5, 5, 5, 0, 5, 5 — two streaks, each should fire exactly once.
  for (const std::int64_t w : {0, 1, 2, 4, 5}) series.add_at(w, "fail", 5.0);
  series.add_at(3, "other");  // keeps window 3 inside the evaluated range
  watchdog.poll(6.0);

  ASSERT_EQ(watchdog.alerts().size(), 2u);
  EXPECT_EQ(watchdog.alerts()[0].window, 1);  // fired when the streak reached 2
  EXPECT_EQ(watchdog.alerts()[0].consecutive, 2u);
  EXPECT_EQ(watchdog.alerts()[0].value, 5.0);
  EXPECT_EQ(watchdog.alerts()[1].window, 5);  // window 3's clean zero re-armed it
  EXPECT_EQ(watchdog.alert_count("rate-fail"), 2u);
  // The alert is written back into the offending window.
  EXPECT_EQ(series.counter_at("watchdog.alert.rate-fail", 1), 1.0);
  EXPECT_EQ(series.counter_at("watchdog.alert.rate-fail", 5), 1.0);
}

TEST(WatchdogTest, QuantileNoDataWindowResetsTheStreak) {
  obs::SloRule rule;
  rule.name = "p95";
  rule.kind = obs::SloRule::Kind::kQuantile;
  rule.metric = "lat";
  rule.q = 0.95;
  rule.threshold = 1.0;
  rule.windows = 2;
  obs::TimeSeries series(1.0);
  obs::Watchdog watchdog(&series, {rule});
  // Violating samples in windows 0, 2, 3; window 1 has no data at all.
  for (const std::int64_t w : {0, 2, 3}) {
    series.observe(double(w) + 0.5, "lat", 50.0);
    series.observe(double(w) + 0.6, "lat", 50.0);
  }
  watchdog.poll(4.0);
  // Window 1's data gap broke the first streak, so only windows 2+3 fire.
  ASSERT_EQ(watchdog.alerts().size(), 1u);
  EXPECT_EQ(watchdog.alerts()[0].window, 3);
}

TEST(WatchdogTest, RateTreatsEmptyWindowsAsGenuineZeros) {
  // threshold 0 means every window violates — including ones with no
  // samples, because a counter that recorded nothing genuinely read zero.
  obs::TimeSeries series(1.0);
  obs::Watchdog watchdog(&series, {rate_rule("never.touched", 0.0, 3)});
  series.add_at(0, "other");  // the series itself is non-empty
  watchdog.poll(3.0);
  ASSERT_EQ(watchdog.alerts().size(), 1u);
  EXPECT_EQ(watchdog.alerts()[0].window, 2);
  EXPECT_EQ(watchdog.alerts()[0].consecutive, 3u);
}

TEST(WatchdogTest, TotalFiresOnceAtTheFirstCrossingWindow) {
  obs::SloRule rule;
  rule.name = "divergence";
  rule.kind = obs::SloRule::Kind::kTotal;
  rule.metric = "div";
  rule.threshold = 2.0;
  obs::TimeSeries series(1.0);
  obs::Watchdog watchdog(&series, {rule});
  series.add_at(0, "div", 1.0);  // total 1: under
  series.add_at(2, "div", 2.0);  // total 3: crosses here
  series.add_at(4, "div", 5.0);  // total 8: must NOT re-fire
  watchdog.poll(5.0);
  watchdog.finish();
  ASSERT_EQ(watchdog.alerts().size(), 1u);
  EXPECT_EQ(watchdog.alerts()[0].window, 2);
  EXPECT_EQ(watchdog.alerts()[0].value, 3.0);
}

TEST(WatchdogTest, PollStopsAtTheOpenWindowAndFinishDrainsIt) {
  obs::TimeSeries series(1.0);
  obs::Watchdog watchdog(&series, {rate_rule("fail", 1.0, 1)});
  series.add_at(3, "fail", 9.0);
  watchdog.poll(3.5);  // window 3 is still open — must not evaluate yet
  EXPECT_TRUE(watchdog.alerts().empty());
  obs::FlightRecorder flight(8);
  watchdog.finish(&flight);  // drains through last_window() inclusive
  ASSERT_EQ(watchdog.alerts().size(), 1u);
  EXPECT_EQ(watchdog.alerts()[0].window, 3);
  // The flight recorder got the alert, stamped at the window's close.
  const std::vector<obs::FlightEvent> events = flight.dump();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].host, "watchdog");
  EXPECT_EQ(events[0].kind, "alert");
  EXPECT_EQ(events[0].time, 4.0);
}

TEST(WatchdogTest, AlertDetailNamesTheOffendingWindow) {
  obs::TimeSeries series(1.0);
  obs::Watchdog watchdog(&series, {rate_rule("fail", 3.0, 1)});
  series.add_at(7, "fail", 5.0);
  watchdog.finish();
  ASSERT_EQ(watchdog.alerts().size(), 1u);
  EXPECT_EQ(watchdog.alerts()[0].detail(), "rate-fail: fail=5 >= 3 for 1 window, window 7");
}

TEST(WatchdogTest, NullSeriesIsRejected) {
  EXPECT_THROW(obs::Watchdog(nullptr, obs::default_slo_rules()), std::invalid_argument);
}

// ------------------------------------------------- ShardedRuntime lane fold

/// A small sharded hierarchy (1 cloud, 2 regionals, 8 edges) with the
/// time-series sink attached: the per-lane scratch series must fold into a
/// byte-identical export at any lane count, because the fold runs in the
/// scheduler's seed-derived merge order, not arrival order.
std::string sharded_series_dump(std::size_t lanes) {
  constexpr std::size_t kEdges = 8, kFanout = 4, kRounds = 3, kOpsPerEdgeRound = 4;
  runtime::ShardedConfig config;
  config.lanes = lanes;
  config.seed = 1;
  const sqldb::Statement insert = sqldb::parse_sql("INSERT INTO events (user, v) VALUES (?, ?)");
  runtime::ShardedRuntime rt(
      config, [&insert](runtime::ReplicaState& replica, const runtime::ClientOp& op) {
        replica.service().database().execute(
            insert, {sqldb::SqlValue(double(op.user)), sqldb::SqlValue(op.value)});
      });

  std::vector<std::unique_ptr<runtime::ServiceRuntime>> services;
  const auto add = [&](const std::string& id) {
    services.push_back(
        std::make_unique<runtime::ServiceRuntime>(R"JS(db.query("CREATE TABLE events (user, v)");)JS"));
    auto state = std::make_shared<runtime::ReplicaState>(
        id, services.back().get(), std::set<std::string>{}, std::set<std::string>{});
    state->attach_existing();
    rt.add_replica(std::move(state));
  };
  add("cloud");
  for (std::size_t r = 0; r < kEdges / kFanout; ++r) {
    add("regional" + std::to_string(r));
    rt.add_uplink("regional" + std::to_string(r), "cloud");
  }
  for (std::size_t e = 0; e < kEdges; ++e) {
    add("edge" + std::to_string(e));
    rt.add_uplink("edge" + std::to_string(e), "regional" + std::to_string(e / kFanout));
  }

  obs::TimeSeries series(1.0);
  rt.set_timeseries(&series);
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t e = 0; e < kEdges; ++e) {
      std::vector<runtime::ClientOp> batch(kOpsPerEdgeRound);
      for (std::size_t j = 0; j < kOpsPerEdgeRound; ++j) {
        batch[j].user = e * 10 + j;
        batch[j].value = double(round * 100 + j);
      }
      rt.post_client_ops("edge" + std::to_string(e), std::move(batch));
    }
    rt.run_round();
  }
  return obs::timeseries_json(series).dump_pretty();
}

TEST(ShardedTimeSeriesTest, ExportIsByteIdenticalAcrossLaneCounts) {
  const std::string serial = sharded_series_dump(1);
  EXPECT_NE(serial.find("shard.client_ops"), std::string::npos);
  EXPECT_NE(serial.find("shard.applied_ops"), std::string::npos);
  EXPECT_EQ(serial, sharded_series_dump(4));
}

}  // namespace
}  // namespace edgstr
