// Bench-regression gate: scaled-down fig10a (sync bytes) and fig7 (request
// latency) scenarios run in-process and are checked against the committed
// baseline in tests/golden/bench_baseline.json with ±15% tolerance, so a
// perf regression fails ctest instead of silently drifting until someone
// re-reads the bench output.
//
// The simulation is deterministic, so the measured numbers are exactly
// reproducible on any machine; the tolerance absorbs *intentional* small
// shifts from unrelated changes. A deliberate perf change regenerates the
// baseline: EDGSTR_UPDATE_BENCH_BASELINE=1 ctest -R BenchRegression
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "crdt/json_doc.h"
#include "crdt/snapshot.h"
#include "crdt/wire.h"
#include "edgstr/deployment.h"
#include "edgstr/pipeline.h"
#include "json/parse.h"
#include "json/value.h"
#include "runtime/sharded_runtime.h"
#include "sim/schedule.h"
#include "sqldb/parser.h"
#include "trace/state_capture.h"
#include "workload/shapes.h"

namespace edgstr {
namespace {

const core::TransformResult& transformed_sensor_hub() {
  static const core::TransformResult result = [] {
    const apps::SubjectApp& app = apps::sensor_hub();
    const http::TrafficRecorder traffic = core::record_traffic(app.server_source, app.workload);
    return core::Pipeline().transform(app.name, app.server_source, traffic);
  }();
  return result;
}

double percentile_95(std::vector<double> values) {
  EXPECT_FALSE(values.empty());
  std::sort(values.begin(), values.end());
  const std::size_t idx = (values.size() * 95 + 99) / 100;  // ceil(0.95 n)
  return values[std::min(idx, values.size()) - 1];
}

/// Scaled-down fig10a: the sensor-hub workload spread round-robin over a
/// two-edge star+mesh, one sync round per sweep, converged at the end.
/// Returns total sync wire bytes (digests included).
double measure_sync_bytes() {
  const core::TransformResult& result = transformed_sensor_hub();
  core::DeploymentConfig config;
  config.start_sync = false;
  config.topology = core::SyncTopology::kStarEdgeMesh;
  config.edge_devices.assign(2, cluster::DeviceProfile::rpi4());
  core::ThreeTierDeployment three(result, config);
  std::size_t i = 0;
  for (const http::HttpRequest& req : apps::sensor_hub().workload) {
    three.request_sync(req, i++ % 2);
    if (i % 2 == 0) {
      three.sync().tick();
      three.network().clock().run();
    }
  }
  three.sync().sync_until_converged();
  return double(three.sync().total_sync_bytes());
}

/// Scaled-down fig7: p95 request latency through the edge proxy and the
/// two-tier cloud path over the whole workload.
void measure_latencies(double* edge_p95_s, double* cloud_p95_s) {
  const core::TransformResult& result = transformed_sensor_hub();
  const apps::SubjectApp& app = apps::sensor_hub();
  std::vector<double> edge, cloud;
  {
    core::DeploymentConfig config;
    config.start_sync = false;
    core::ThreeTierDeployment three(result, config);
    for (const http::HttpRequest& req : app.workload) {
      double latency = 0;
      three.request_sync(req, 0, &latency);
      edge.push_back(latency);
    }
  }
  {
    core::DeploymentConfig config;
    config.start_sync = false;
    core::TwoTierDeployment two(result.cloud_source, config);
    for (const http::HttpRequest& req : app.workload) {
      double latency = 0;
      two.request_sync(req, &latency);
      cloud.push_back(latency);
    }
  }
  *edge_p95_s = percentile_95(edge);
  *cloud_p95_s = percentile_95(cloud);
}

/// Deterministic execution-engine counters: the sensor-hub workload is
/// served state-isolated through a ProfilingHarness, and the gate keys on
/// interpreter step counts, resolver coverage (slot vs named reads), and
/// checkpoint sharing (snapshot components still pointer-shared with the
/// init snapshot after a full isolated sweep). All machine-independent —
/// a resolver coverage loss or a spurious-dirty CoW bug moves them.
void measure_interp_counters(json::Object* measured) {
  const apps::SubjectApp& app = apps::sensor_hub();
  trace::ProfilingHarness harness(app.server_source);
  for (const http::HttpRequest& req : app.workload) {
    const http::Route route{req.verb, req.path};
    if (!harness.interpreter().has_route(route)) continue;
    harness.invoke_isolated(route, req);
  }
  const minijs::Interpreter& interp = harness.interpreter();
  measured->set("interp_scaled.steps_total", json::Value(double(interp.steps())));
  measured->set("interp_scaled.slot_reads", json::Value(double(interp.slot_reads())));
  measured->set("interp_scaled.named_reads", json::Value(double(interp.named_reads())));

  // VM arm over the same workload: step totals must track the tree-walker
  // exactly (the VM ticks per expression node, like the walker), and the
  // inline-cache hit/miss split is deterministic — a compiler or cache
  // change that alters dispatch behaviour moves these keys.
  minijs::InterpreterConfig vm_config;
  vm_config.vm = true;
  trace::ProfilingHarness vm_harness(app.server_source, vm_config);
  for (const http::HttpRequest& req : app.workload) {
    const http::Route route{req.verb, req.path};
    if (!vm_harness.interpreter().has_route(route)) continue;
    vm_harness.invoke_isolated(route, req);
  }
  const minijs::Interpreter& vm = vm_harness.interpreter();
  EXPECT_EQ(vm.steps(), interp.steps()) << "VM step accounting diverged from the tree-walker";
  measured->set("vm_scaled.steps_total", json::Value(double(vm.steps())));
  measured->set("vm_scaled.slot_reads", json::Value(double(vm.slot_reads())));
  measured->set("vm_scaled.ic_hits", json::Value(double(vm.ic_hits())));
  measured->set("vm_scaled.ic_misses", json::Value(double(vm.ic_misses())));

  const trace::Snapshot now = harness.capture();
  std::size_t shared = 0;
  const auto count_shared = [&shared](const trace::ComponentMap& a, const trace::ComponentMap& b) {
    for (const auto& [key, comp] : a) {
      const auto it = b.find(key);
      if (it != b.end() && it->second.value == comp.value) ++shared;
    }
  };
  count_shared(harness.init_snapshot().tables, now.tables);
  count_shared(harness.init_snapshot().files, now.files);
  count_shared(harness.init_snapshot().globals, now.globals);
  measured->set("snapshot_scaled.shared_components", json::Value(double(shared)));
}

/// Scaled-down fig9 (cluster scaling): a 64-edge sharded-runtime hierarchy
/// (fanout 8, 4 lanes) drives 4 rounds of client ops and reports the
/// modeled throughput — client ops per *simulated* second from the BSP
/// lane-clock cost model. Fully deterministic (no wall time), so the ±15%
/// gate catches cost-model or lane-scheduling drift, and the edges/users
/// keys pin the scale the scenario actually exercised.
void measure_sharded_cluster(json::Object* measured) {
  constexpr std::size_t kEdges = 64, kFanout = 8, kUsersPerEdge = 32;
  constexpr std::size_t kRounds = 4, kOpsPerEdgeRound = 4;

  runtime::ShardedConfig config;
  config.lanes = 4;
  config.seed = 1;
  const sqldb::Statement insert = sqldb::parse_sql("INSERT INTO events (user, v) VALUES (?, ?)");
  runtime::ShardedRuntime rt(
      config, [&insert](runtime::ReplicaState& replica, const runtime::ClientOp& op) {
        replica.service().database().execute(
            insert, {sqldb::SqlValue(double(op.user)), sqldb::SqlValue(op.value)});
      });

  std::vector<std::unique_ptr<runtime::ServiceRuntime>> services;
  const auto add = [&](const std::string& id) {
    services.push_back(
        std::make_unique<runtime::ServiceRuntime>(R"JS(db.query("CREATE TABLE events (user, v)");)JS"));
    auto state = std::make_shared<runtime::ReplicaState>(
        id, services.back().get(), std::set<std::string>{}, std::set<std::string>{});
    state->attach_existing();
    rt.add_replica(std::move(state));
  };
  add("cloud");
  for (std::size_t r = 0; r < kEdges / kFanout; ++r) {
    add("regional" + std::to_string(r));
    rt.add_uplink("regional" + std::to_string(r), "cloud");
  }
  for (std::size_t e = 0; e < kEdges; ++e) {
    add("edge" + std::to_string(e));
    rt.add_uplink("edge" + std::to_string(e), "regional" + std::to_string(e / kFanout));
  }

  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t e = 0; e < kEdges; ++e) {
      std::vector<runtime::ClientOp> batch(kOpsPerEdgeRound);
      for (std::size_t j = 0; j < kOpsPerEdgeRound; ++j) {
        batch[j].user = e * kUsersPerEdge + (round * kOpsPerEdgeRound + j) % kUsersPerEdge;
        batch[j].value = double(round * 100 + j);
      }
      rt.post_client_ops("edge" + std::to_string(e), std::move(batch));
    }
    rt.run_round();
  }
  ASSERT_EQ(rt.replica("cloud").tables().live_rows(), kEdges * kRounds * kOpsPerEdgeRound);

  measured->set("fig9_scaled.edges", json::Value(double(kEdges)));
  measured->set("fig9_scaled.users", json::Value(double(kEdges * kUsersPerEdge)));
  measured->set("fig9_scaled.ops_per_sec",
                json::Value(double(rt.client_ops_processed()) / rt.sim_now()));
}

/// Scaled-down bench_workload: the three adversarial traffic shapes run as
/// short fixed-seed schedules, and the gate keys on what the shapes are
/// supposed to produce — hot-key concentration for zipf, peak arrival
/// pileup for flash, migration/handoff counts for churn, and the online
/// variant-agreement counters (divergences gate at exactly zero). All
/// seed-derived, so any drift means the workload plane itself changed.
void measure_workload_scenarios(json::Object* measured) {
  {
    const workload::KeyDistribution dist = workload::KeyDistribution::zipf(16, 1.2);
    sim::ScheduleConfig config;
    config.seed = 101;
    config.rounds = 8;
    config.workload = workload::WorkloadShape::kZipf;
    const sim::ScheduleResult result = sim::run_schedule(config);
    EXPECT_TRUE(result.passed) << result.summary();
    measured->set("workload.zipf.hot_key_share", json::Value(dist.top_share(3)));
    measured->set("workload.zipf.acked", json::Value(double(result.writes_acked)));
    measured->set("workload.variant.checks", json::Value(double(result.variant_checks)));
    measured->set("workload.variant.divergences",
                  json::Value(double(result.variant_divergences)));
  }
  {
    const workload::ArrivalSchedule base = workload::ArrivalSchedule::poisson(40, 30.0, 7);
    workload::FlashCrowdSpec spec;
    spec.crowds = 3;
    spec.crowd_duration_s = 4.0;
    spec.compression = 5.0;
    const workload::ArrivalSchedule warped = workload::inject_flash_crowds(base, spec, 7);
    const auto peak_1s = [](const workload::ArrivalSchedule& s) {
      std::size_t best = 0, lo = 0;
      for (std::size_t hi = 0; hi < s.times().size(); ++hi) {
        while (s.times()[hi] - s.times()[lo] > 1.0) ++lo;
        best = std::max(best, hi - lo + 1);
      }
      return double(best);
    };
    measured->set("workload.flash.arrivals", json::Value(double(warped.size())));
    measured->set("workload.flash.peak_window", json::Value(peak_1s(warped)));
  }
  {
    sim::ScheduleConfig config;
    config.seed = 202;
    config.rounds = 8;
    config.workload = workload::WorkloadShape::kChurn;
    const sim::ScheduleResult result = sim::run_schedule(config);
    EXPECT_TRUE(result.passed) << result.summary();
    measured->set("workload.churn.migrations", json::Value(double(result.migrations)));
    measured->set("workload.churn.handoff_fail", json::Value(double(result.handoffs_failed)));
    measured->set("workload.churn.acked", json::Value(double(result.writes_acked)));
  }
}

/// Scaled-down bench_bootstrap: cold-start payload sizes for the two
/// rejoin arms over the same overwrite-heavy doc — full op replay vs
/// snapshot + tail. Wire encodings of deterministic messages, so the keys
/// are exactly reproducible; wall-clock stays in the bench binary. A
/// framing or snapshot-encoding change moves the byte keys, and the 5x
/// acceptance bar is asserted outright (not just baselined) so the
/// snapshot path can never silently decay into replay-sized transfers.
void measure_bootstrap(json::Object* measured) {
  constexpr std::size_t kOps = 4000, kKeys = 256, kTail = 128;
  crdt::CrdtJson source("bench-src");
  source.initialize(json::Value::object({}));
  crdt::Snapshot checkpoint;
  for (std::size_t i = 0; i < kOps; ++i) {
    if (i == kOps - kTail) checkpoint = source.cut_snapshot();
    source.set("key" + std::to_string(i % kKeys), json::Value(double(i)));
  }

  crdt::SyncMessage replay;
  replay.from = "bench-src";
  replay.versions["globals"] = source.version();
  replay.ops["globals"] = source.getChanges({});
  const double replay_bytes = double(crdt::encode_message(replay).dump().size());

  crdt::SyncMessage snap;
  snap.kind = crdt::SyncKind::kSnapshot;
  snap.from = "bench-src";
  snap.versions["globals"] = source.version();
  snap.snapshot = json::Value::object({{"globals", checkpoint.to_json()}});
  snap.ops["globals"] = source.getChanges(checkpoint.covered);
  const double snap_bytes = double(crdt::encode_message(snap).dump().size());

  EXPECT_GE(replay_bytes, snap_bytes * 5.0)
      << "snapshot bootstrap lost its >=5x byte advantage over full replay";
  measured->set("bootstrap_scaled.replay_ops", json::Value(double(replay.op_count())));
  measured->set("bootstrap_scaled.replay_bytes", json::Value(replay_bytes));
  measured->set("bootstrap_scaled.tail_ops", json::Value(double(snap.op_count())));
  measured->set("bootstrap_scaled.snapshot_bytes", json::Value(snap_bytes));
}

TEST(BenchRegressionTest, SyncBytesAndLatencyStayNearBaseline) {
  const core::TransformResult& result = transformed_sensor_hub();
  ASSERT_TRUE(result.ok) << result.error;

  json::Object measured;
  measured.set("fig10a_scaled.sync_bytes_total", json::Value(measure_sync_bytes()));
  double edge_p95 = 0, cloud_p95 = 0;
  measure_latencies(&edge_p95, &cloud_p95);
  measured.set("fig7_scaled.edge_p95_latency_s", json::Value(edge_p95));
  measured.set("fig7_scaled.cloud_p95_latency_s", json::Value(cloud_p95));
  measure_interp_counters(&measured);
  measure_sharded_cluster(&measured);
  measure_workload_scenarios(&measured);
  measure_bootstrap(&measured);

  const std::string path = std::string(EDGSTR_TESTS_DIR) + "/golden/bench_baseline.json";
  if (std::getenv("EDGSTR_UPDATE_BENCH_BASELINE")) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << json::Value(measured).dump_pretty() << "\n";
    GTEST_SKIP() << "baseline regenerated at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path
                            << " missing; regenerate with EDGSTR_UPDATE_BENCH_BASELINE=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value baseline = json::parse(buffer.str());

  for (const auto& [key, value] : measured) {
    const json::Value* expected = baseline.find(key);
    ASSERT_NE(expected, nullptr) << "baseline lacks '" << key
                                 << "'; regenerate with EDGSTR_UPDATE_BENCH_BASELINE=1";
    const double want = expected->as_number();
    const double got = value.as_number();
    EXPECT_GE(got, want * 0.85) << key << " improved past tolerance — lock in the win by "
                                << "regenerating the baseline";
    EXPECT_LE(got, want * 1.15) << key << " regressed vs the committed baseline (" << got
                                << " vs " << want << ")";
  }
}

/// Observability overhead gate (scaled-down bench_obs): the same seeded
/// churn schedule runs with the full obs plane (time-series capture +
/// flight recorder + SLO watchdog) off and on, min-of-reps wall clock on
/// both arms so scheduler noise cancels instead of inflating one side.
/// The capture-on arm gets a 5% budget — the plane's whole pitch is that
/// it stays on in every sim run. No golden baseline: the ratio is
/// self-normalizing, so the gate is a plain assertion.
TEST(BenchRegressionTest, ObservabilityOverheadStaysWithinBudget) {
  const auto arm = [](bool obs_on) {
    sim::ScheduleConfig config;
    config.seed = 303;
    config.rounds = 8;
    config.workload = workload::WorkloadShape::kChurn;
    config.capture_timeseries = obs_on;
    config.flight_ring = obs_on ? 96 : 0;
    config.slo_watchdog = obs_on;
    return config;
  };
  const auto run_ms = [](const sim::ScheduleConfig& config, std::uint64_t* digest) {
    const auto t0 = std::chrono::steady_clock::now();
    const sim::ScheduleResult result = sim::run_schedule(config);
    const auto t1 = std::chrono::steady_clock::now();
    *digest = result.trace_digest;
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };

  constexpr int kReps = 4;
  double off_ms = -1, on_ms = -1;
  std::uint64_t digest_off = 0, digest_on = 0;
  for (int r = 0; r < kReps; ++r) {  // interleaved, so drift hits both arms
    off_ms = off_ms < 0 ? run_ms(arm(false), &digest_off)
                        : std::min(off_ms, run_ms(arm(false), &digest_off));
    on_ms = on_ms < 0 ? run_ms(arm(true), &digest_on)
                      : std::min(on_ms, run_ms(arm(true), &digest_on));
  }

  // Observation must not perturb the schedule: identical seeds, identical
  // trace digests, obs plane on or off.
  EXPECT_EQ(digest_off, digest_on);
  const double ratio = on_ms / off_ms;
  EXPECT_LE(ratio, 1.05) << "obs plane overhead " << (ratio - 1.0) * 100.0
                         << "% exceeds the 5% budget (off=" << off_ms << "ms on=" << on_ms
                         << "ms)";
}

}  // namespace
}  // namespace edgstr
