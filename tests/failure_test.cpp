// Failure injection: message loss, partitions, node failures, and parked
// replicas. The CRDT synchronization must converge once connectivity
// returns, and the Remote Proxy must keep answering through the cloud.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "edgstr/deployment.h"
#include "edgstr/pipeline.h"

namespace edgstr::core {
namespace {

class FailureFixture : public ::testing::Test {
 protected:
  FailureFixture() {
    const apps::SubjectApp& app = apps::sensor_hub();
    const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
    result_ = Pipeline().transform(app.name, app.server_source, traffic);
    EXPECT_TRUE(result_.ok) << result_.error;
  }

  http::HttpRequest ingest(const std::string& sensor, double value) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/ingest";
    req.params = json::Value::object(
        {{"sensor", sensor}, {"values", json::Value::array({value})}});
    return req;
  }

  http::HttpRequest summary(const std::string& sensor) {
    http::HttpRequest req;
    req.verb = http::Verb::kGet;
    req.path = "/summary";
    req.params = json::Value::object({{"sensor", sensor}});
    return req;
  }

  TransformResult result_;
};

TEST_F(FailureFixture, SyncSurvivesNamedPartitionWindow) {
  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(result_, config);

  // Named partition on the WAN: edge0 and the cloud cannot exchange
  // messages, but the client still reaches both.
  three.network().partition("wan-cut", {edge_host(0)}, {kCloudHost});

  three.request_sync(ingest("a", 42), 0);
  // Sync rounds during the partition deliver nothing.
  for (int i = 0; i < 3; ++i) {
    three.sync().tick();
    three.network().clock().run();
  }
  EXPECT_FALSE(three.converged());

  // Heal the partition: the next rounds retransmit everything unacked.
  three.network().heal("wan-cut");
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());
  // The cloud now sees the edge's reading.
  double latency = 0;
  TwoTierDeployment cloud_probe(result_.cloud_source, config);
  (void)cloud_probe;  // (cloud state lives in `three`; probe via forwarding)
  const http::HttpResponse resp = three.request_sync(summary("a"), 0, &latency);
  EXPECT_DOUBLE_EQ(resp.body["count"].as_number(), 1.0);
}

TEST_F(FailureFixture, LossyLinkEventuallyConverges) {
  DeploymentConfig config;
  config.start_sync = false;
  config.seed = 99;
  ThreeTierDeployment three(result_, config);

  netsim::LinkConfig flaky = config.wan;
  flaky.loss_probability = 0.5;
  three.network().connect(edge_host(0), kCloudHost, flaky);

  three.request_sync(ingest("x", 7), 0);
  three.request_sync(ingest("y", 9), 0);
  // Enough lossy rounds: each round re-sends whatever was never acked.
  const int rounds = three.sync().sync_until_converged(64);
  EXPECT_GT(rounds, 0);
  EXPECT_TRUE(three.converged());
}

TEST_F(FailureFixture, PartitionedEdgesMergeThroughCloudAfterHeal) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
  ThreeTierDeployment three(result_, config);

  // Edge 1 is partitioned from the cloud.
  three.network().partition("edge1-cut", {edge_host(1)}, {kCloudHost});

  three.request_sync(ingest("a", 1), 0);
  three.request_sync(ingest("b", 2), 1);  // accepted locally at edge1
  for (int i = 0; i < 2; ++i) {
    three.sync().tick();
    three.network().clock().run();
  }
  // Edge0's data reached the cloud; edge1's did not.
  EXPECT_FALSE(three.converged());

  three.network().heal("edge1-cut");
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());

  // Edge0 sees edge1's reading relayed through the cloud.
  const http::HttpResponse resp = three.request_sync(summary("b"), 0);
  EXPECT_DOUBLE_EQ(resp.body["count"].as_number(), 1.0);
}

TEST_F(FailureFixture, ParkedReplicaRoutesThroughCloudAndCatchesUpOnWake) {
  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(result_, config);

  // Write while awake, then park.
  three.request_sync(ingest("s", 5), 0);
  three.sync().sync_until_converged(8);
  three.edge(0).set_power_state(runtime::PowerState::kLowPower);

  // Requests still work (forwarded), mutating cloud state.
  const http::HttpResponse resp = three.request_sync(ingest("s", 6), 0);
  EXPECT_TRUE(resp.ok());
  EXPECT_GT(three.proxy(0).stats().forwarded_to_cloud, 0u);

  // Wake up: the replica catches up on the cloud's new row.
  three.edge(0).set_power_state(runtime::PowerState::kActive);
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  const http::HttpResponse local = three.request_sync(summary("s"), 0);
  EXPECT_DOUBLE_EQ(local.body["count"].as_number(), 2.0);
}

TEST_F(FailureFixture, DuplicatedSyncDeliveryIsIdempotent) {
  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(result_, config);
  three.request_sync(ingest("dup", 3), 0);
  three.edge_state(0).record_local();

  // Deliver the same change set to the cloud twice, by hand.
  const crdt::SyncMessage msg = three.edge_state(0).collect_changes({});
  EXPECT_GT(three.cloud_state().apply_message(msg), 0u);
  EXPECT_EQ(three.cloud_state().apply_message(msg), 0u);

  const auto rows =
      three.cloud().service()->database().execute("SELECT * FROM readings").rows;
  EXPECT_EQ(rows.size(), 1u);  // not duplicated
}

TEST_F(FailureFixture, ConcurrentWritesAtAllTiersConverge) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi3()};
  ThreeTierDeployment three(result_, config);

  // Writes everywhere before any sync.
  three.request_sync(ingest("e0", 1), 0);
  three.request_sync(ingest("e1", 2), 1);
  three.cloud().service()->handle(ingest("cl", 3));
  three.cloud_state().record_local();

  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());
  for (std::size_t i = 0; i < 2; ++i) {
    const auto rows = three.edge(i).service()->database().execute("SELECT * FROM readings").rows;
    EXPECT_EQ(rows.size(), 3u) << "edge " << i;
  }
}

TEST(NodeFailureTest, MultiCoreNodeOverlapsRequests) {
  netsim::SimClock clock;
  runtime::NodeSpec spec;
  spec.name = "quad";
  spec.cores = 4;
  spec.seconds_per_unit = 0.001;
  spec.request_overhead_s = 0;
  runtime::Node node(clock, spec);
  node.host(std::make_unique<runtime::ServiceRuntime>(R"JS(
    app.get("/w", function (req, res) { compute(100); res.send({ok: 1}); });
  )JS"));
  http::HttpRequest req;
  req.path = "/w";
  std::vector<double> finished;
  for (int i = 0; i < 4; ++i) {
    node.execute(req, [&](runtime::ExecutionResult) { finished.push_back(clock.now()); });
  }
  clock.run();
  ASSERT_EQ(finished.size(), 4u);
  // All four ran in parallel on separate cores: identical finish times.
  for (double t : finished) EXPECT_NEAR(t, 0.1, 1e-9);

  // A fifth request queues behind the earliest-free core.
  node.execute(req, [&](runtime::ExecutionResult) { finished.push_back(clock.now()); });
  clock.run();
  EXPECT_NEAR(finished.back(), 0.2, 1e-9);
}

TEST(NetsimFailureTest, PerMessageSetupDelaysDelivery) {
  netsim::Network net(1);
  netsim::LinkConfig cfg;
  cfg.latency_s = 0.1;
  cfg.bandwidth_bps = 1e9;
  cfg.jitter_s = 0;
  cfg.per_message_setup_s = 0.25;
  net.connect("a", "b", cfg);
  double delivered = -1;
  net.send("a", "b", 10, [&] { delivered = net.clock().now(); });
  net.clock().run();
  EXPECT_NEAR(delivered, 0.35, 1e-6);
}

}  // namespace
}  // namespace edgstr::core
// NOTE: appended suite — peer-to-peer edge synchronization (Legion-style).
namespace edgstr::core {
namespace {

TEST_F(FailureFixture, PeerLinkedEdgesConvergeWhileCloudPartitioned) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
  ThreeTierDeployment three(result_, config);

  // Direct edge<->edge LAN link + sync peer link.
  three.network().connect(edge_host(0), edge_host(1), netsim::LinkConfig::lan());
  three.sync().add_peer_link(0, 1);

  // Cloud unreachable from both edges (the client still reaches all three).
  three.network().partition("cloud-cut", {edge_host(0), edge_host(1)}, {kCloudHost});

  three.request_sync(ingest("p2p-a", 1), 0);
  three.request_sync(ingest("p2p-b", 2), 1);
  for (int i = 0; i < 2; ++i) {
    three.sync().tick();
    three.network().clock().run();
  }
  // Cloud is behind, but the edges see each other's data via gossip.
  EXPECT_FALSE(three.converged());
  EXPECT_TRUE(three.edge_state(0).converged_with(three.edge_state(1)));
  const http::HttpResponse resp = three.request_sync(summary("p2p-b"), 0);
  EXPECT_DOUBLE_EQ(resp.body["count"].as_number(), 1.0);

  // Heal the cut: the whole star converges.
  three.network().heal("cloud-cut");
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());
}

TEST_F(FailureFixture, StarPartitionWritesBothSidesThenHealConverges) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
  ThreeTierDeployment three(result_, config);

  // Two-sided cut: only edge1 <-> cloud traffic is blocked, so the client
  // keeps writing on BOTH sides of the partition, served at the edges.
  three.network().partition("split", {edge_host(1)}, {kCloudHost});
  const auto before0 = three.proxy(0).stats().served_at_edge;
  const auto before1 = three.proxy(1).stats().served_at_edge;
  EXPECT_TRUE(three.request_sync(ingest("side-a", 1), 0).ok());
  EXPECT_TRUE(three.request_sync(ingest("side-b", 2), 1).ok());
  EXPECT_GT(three.proxy(0).stats().served_at_edge, before0);
  EXPECT_GT(three.proxy(1).stats().served_at_edge, before1);

  for (int i = 0; i < 3; ++i) {
    three.sync().tick();
    three.network().clock().run();
  }
  EXPECT_FALSE(three.converged());

  three.network().heal("split");
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());
  // Both sides' writes are visible from the other side.
  EXPECT_DOUBLE_EQ(three.request_sync(summary("side-b"), 0).body["count"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(three.request_sync(summary("side-a"), 1).body["count"].as_number(), 1.0);
}

TEST_F(FailureFixture, MeshPartitionWritesBothSidesThenHealConverges) {
  DeploymentConfig config;
  config.start_sync = false;
  config.topology = SyncTopology::kStarEdgeMesh;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
  ThreeTierDeployment three(result_, config);

  // Cut the cloud off from the whole mesh; edge0 <-> edge1 gossip and the
  // client's request plane keep working.
  three.network().partition("cloud-off", {kCloudHost}, {edge_host(0), edge_host(1)});
  EXPECT_TRUE(three.request_sync(ingest("m0", 1), 0).ok());
  EXPECT_TRUE(three.request_sync(ingest("m1", 2), 1).ok());
  for (int i = 0; i < 3; ++i) {
    three.sync().tick();
    three.network().clock().run();
  }
  // The mesh side converged among itself; the cloud is behind.
  EXPECT_TRUE(three.edge_state(0).converged_with(three.edge_state(1)));
  EXPECT_FALSE(three.converged());
  EXPECT_DOUBLE_EQ(three.request_sync(summary("m1"), 0).body["count"].as_number(), 1.0);

  three.network().heal("cloud-off");
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());
}

TEST_F(FailureFixture, HierarchyPartitionWritesBothSidesThenHealConverges) {
  DeploymentConfig config;
  config.start_sync = false;
  config.topology = SyncTopology::kHierarchy;
  config.hierarchy_fanout = 2;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4(),
                         cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
  ThreeTierDeployment three(result_, config);
  ASSERT_EQ(three.regional_count(), 2u);

  // Cut one whole region (regional0 + its edges) from the cloud side.
  three.network().partition("region-cut", {regional_host(0), edge_host(0), edge_host(1)},
                            {kCloudHost, regional_host(1), edge_host(2), edge_host(3)});
  EXPECT_TRUE(three.request_sync(ingest("r0", 1), 0).ok());  // cut side
  EXPECT_TRUE(three.request_sync(ingest("r1", 2), 2).ok());  // cloud side
  for (int i = 0; i < 4; ++i) {
    three.sync().tick();
    three.network().clock().run();
  }
  // Each side converged internally through its regional relay.
  EXPECT_TRUE(three.edge_state(0).converged_with(three.edge_state(1)));
  EXPECT_TRUE(three.edge_state(2).converged_with(three.edge_state(3)));
  EXPECT_FALSE(three.converged());

  three.network().heal("region-cut");
  EXPECT_GE(three.sync().sync_until_converged(16), 1);
  EXPECT_TRUE(three.converged());
  // Cross-region visibility after the heal.
  EXPECT_DOUBLE_EQ(three.request_sync(summary("r1"), 0).body["count"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(three.request_sync(summary("r0"), 3).body["count"].as_number(), 1.0);
}

TEST_F(FailureFixture, CrashedEdgeLosesVolatileStateAndRejoins) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
  ThreeTierDeployment three(result_, config);

  // A write reaches the cloud, then the serving edge fail-stops.
  EXPECT_TRUE(three.request_sync(ingest("pre-crash", 1), 0).ok());
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  three.crash_edge(0);
  EXPECT_FALSE(three.edge_serving(0));

  // While down, its proxy forwards; the write is acked by the cloud.
  const auto forwarded = three.proxy(0).stats().forwarded_to_cloud;
  EXPECT_TRUE(three.request_sync(ingest("while-down", 2), 0).ok());
  EXPECT_GT(three.proxy(0).stats().forwarded_to_cloud, forwarded);

  // Restart: serving resumes only after the rejoin completes, and the
  // rejoined replica holds everything, including the op it had acked
  // before the crash wiped its volatile state.
  three.restart_edge(0);
  EXPECT_FALSE(three.edge_serving(0));
  EXPECT_GE(three.sync().sync_until_converged(16), 1);
  EXPECT_TRUE(three.edge_serving(0));
  EXPECT_DOUBLE_EQ(three.request_sync(summary("pre-crash"), 0).body["count"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(three.request_sync(summary("while-down"), 0).body["count"].as_number(), 1.0);
}

TEST_F(FailureFixture, CompactedPeersBootstrapARestartedEdge) {
  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(result_, config);

  EXPECT_TRUE(three.request_sync(ingest("kept", 1), 0).ok());
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  // With everything acknowledged, compaction raises every log's floor past
  // the checkpoint a crashed edge is reborn from: a delta rejoin becomes
  // impossible and the graph must fall back to a full bootstrap transfer.
  three.sync().compact_logs();
  three.crash_edge(0);
  EXPECT_TRUE(three.request_sync(ingest("kept", 2), 0).ok());  // forwarded

  three.restart_edge(0);
  EXPECT_GE(three.sync().sync_until_converged(16), 1);
  EXPECT_TRUE(three.edge_serving(0));
  EXPECT_GE(three.replication().metrics().value("sync.rejoins.bootstrap"), 1.0);
  EXPECT_DOUBLE_EQ(three.request_sync(summary("kept"), 0).body["count"].as_number(), 2.0);
}

TEST_F(FailureFixture, PeerLinkRejectsBadIndices) {
  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(result_, config);
  EXPECT_THROW(three.sync().add_peer_link(0, 0), std::invalid_argument);
  EXPECT_THROW(three.sync().add_peer_link(0, 5), std::invalid_argument);
}

TEST_F(FailureFixture, GossipAndStarTogetherStayIdempotent) {
  // Ops can reach an edge both via the cloud and via the peer link; the
  // op-log dedup must keep state single-copy.
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
  ThreeTierDeployment three(result_, config);
  three.network().connect(edge_host(0), edge_host(1), netsim::LinkConfig::lan());
  three.sync().add_peer_link(0, 1);

  three.request_sync(ingest("dup-check", 5), 0);
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto rows = three.edge(i)
                          .service()->database()
                          .execute("SELECT * FROM readings WHERE sensor = 'dup-check'")
                          .rows;
    EXPECT_EQ(rows.size(), 1u) << "edge " << i;
  }
}

// ------------------------------------------------------------- durability --

TEST_F(FailureFixture, DurableEdgeRecoversAckedWritesAVolatileCrashLoses) {
  // The write exists only at edge 0 (sync never ran). A volatile crash
  // destroys it; a durable crash replays it from the fsynced op log.
  for (const bool durable : {false, true}) {
    DeploymentConfig config;
    config.start_sync = false;
    config.durable_edges = durable;
    ThreeTierDeployment three(result_, config);

    EXPECT_TRUE(three.request_sync(ingest("only-here", 7), 0).ok());
    const std::size_t replayed = three.crash_edge(0);
    three.restart_edge(0);
    EXPECT_GE(three.sync().sync_until_converged(16), 1);
    EXPECT_TRUE(three.edge_serving(0));

    const double count =
        three.request_sync(summary("only-here"), 0).body["count"].as_number();
    if (durable) {
      EXPECT_GT(replayed, 0u);
      EXPECT_DOUBLE_EQ(count, 1.0) << "durable recovery dropped an acked write";
    } else {
      EXPECT_EQ(replayed, 0u);
      EXPECT_DOUBLE_EQ(count, 0.0) << "volatile crash should have lost the write";
    }
  }
}

TEST_F(FailureFixture, PowerLossDuringCompactionRecoversTheOldLogImage) {
  // Crash inside the compaction window: the rewritten log never commits
  // (its fsync is a lie), so power loss must fall back to the full
  // pre-compaction image — losing neither the old log nor the new one.
  DeploymentConfig config;
  config.start_sync = false;
  config.durable_edges = true;
  ThreeTierDeployment three(result_, config);

  EXPECT_TRUE(three.request_sync(ingest("pre-compaction", 1), 0).ok());
  EXPECT_TRUE(three.request_sync(ingest("pre-compaction", 2), 0).ok());
  const std::uint64_t logged = three.durable_store(0)->appended_ops();
  EXPECT_GT(logged, 0u);

  three.durable_backend(0)->set_fail_sync(true);
  three.checkpoint_durable_edges();  // rewrite lands, its commit sync lies
  three.durable_backend(0)->set_fail_sync(false);

  const std::size_t replayed = three.crash_edge(0);
  EXPECT_GE(replayed, logged);  // the whole pre-compaction log replays
  three.restart_edge(0);
  EXPECT_GE(three.sync().sync_until_converged(16), 1);
  EXPECT_TRUE(three.converged());
  EXPECT_DOUBLE_EQ(
      three.request_sync(summary("pre-compaction"), 0).body["count"].as_number(), 2.0);
}

TEST_F(FailureFixture, TornDurableTailIsTruncatedNotReplayed) {
  DeploymentConfig config;
  config.start_sync = false;
  config.durable_edges = true;
  ThreeTierDeployment three(result_, config);

  EXPECT_TRUE(three.request_sync(ingest("kept", 3), 0).ok());
  // A torn record: bytes appended but never fsynced reach the platter only
  // partially. Recovery must cut them, keeping every fsynced op.
  three.durable_backend(0)->append("\x40\x00\x00\x00 torn frame");
  EXPECT_GT(three.durable_backend(0)->unsynced_bytes(), 0u);
  const std::size_t replayed =
      three.crash_edge(0, three.durable_backend(0)->unsynced_bytes());
  EXPECT_GT(replayed, 0u);
  EXPECT_GE(three.durable_store(0)->truncated_records(), 1u);

  three.restart_edge(0);
  EXPECT_GE(three.sync().sync_until_converged(16), 1);
  EXPECT_DOUBLE_EQ(three.request_sync(summary("kept"), 0).body["count"].as_number(), 1.0);
}

TEST_F(FailureFixture, CrashDuringSnapshotBootstrapEventuallyConverges) {
  // The recovering edge crashes again mid-rejoin; the second recovery must
  // still land on the converged state, via a fresh snapshot bootstrap.
  DeploymentConfig config;
  config.start_sync = false;
  config.durable_edges = true;
  config.bootstrap_snapshot_ops = 1;
  ThreeTierDeployment three(result_, config);

  EXPECT_TRUE(three.request_sync(ingest("stable", 1), 0).ok());
  EXPECT_GE(three.sync().sync_until_converged(16), 1);
  three.sync().compact_logs();
  three.crash_edge(0);
  EXPECT_TRUE(three.request_sync(ingest("while-down", 2), 0).ok());  // forwarded

  three.restart_edge(0);
  three.sync().tick();  // at most a partial rejoin...
  three.network().clock().run();
  three.crash_edge(0);  // ...then the power dies again
  three.restart_edge(0);
  EXPECT_GE(three.sync().sync_until_converged(32), 1);
  EXPECT_TRUE(three.edge_serving(0));
  EXPECT_TRUE(three.converged());
  EXPECT_GE(three.replication().metrics().value("sync.rejoins.snapshot"), 1.0);
  EXPECT_DOUBLE_EQ(three.request_sync(summary("stable"), 0).body["count"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(three.request_sync(summary("while-down"), 0).body["count"].as_number(),
                   1.0);
}

}  // namespace
}  // namespace edgstr::core
