#include <gtest/gtest.h>

#include "datalog/engine.h"

namespace edgstr::datalog {
namespace {

TEST(DatalogTerm, ValueComparison) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value("1"));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_LT(Value(1), Value(2));
}

TEST(DatalogTerm, Rendering) {
  EXPECT_EQ(atom("p", {V("X"), C(3), C("s")}).to_string(), "p(X, 3, 's')");
  Rule rule{atom("h", {V("X")}), {atom("b", {V("X"), V("Y")})}, {{"X", "Y"}}};
  EXPECT_EQ(rule.to_string(), "h(X) :- b(X, Y), X != Y.");
}

TEST(DatalogEngine, FactsDeduplicate) {
  Engine engine;
  EXPECT_TRUE(engine.add_fact("p", {1, 2}));
  EXPECT_FALSE(engine.add_fact("p", {1, 2}));
  EXPECT_EQ(engine.fact_count(), 1u);
  EXPECT_TRUE(engine.holds("p", {1, 2}));
  EXPECT_FALSE(engine.holds("p", {2, 1}));
  EXPECT_FALSE(engine.holds("q", {1}));
}

TEST(DatalogEngine, QueryBindsVariables) {
  Engine engine;
  engine.add_fact("edge", {1, 2});
  engine.add_fact("edge", {2, 3});
  const auto results = engine.query(atom("edge", {C(1), V("Y")}));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("Y"), Value(2));
}

TEST(DatalogEngine, QueryRepeatedVariableFilters) {
  Engine engine;
  engine.add_fact("p", {1, 1});
  engine.add_fact("p", {1, 2});
  const auto results = engine.query(atom("p", {V("X"), V("X")}));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("X"), Value(1));
}

TEST(DatalogEngine, ConjunctiveQueryJoins) {
  Engine engine;
  engine.add_fact("parent", {"ann", "bea"});
  engine.add_fact("parent", {"bea", "cal"});
  const auto results = engine.query_all(
      {atom("parent", {V("G"), V("P")}), atom("parent", {V("P"), V("C")})});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("G"), Value("ann"));
  EXPECT_EQ(results[0].at("C"), Value("cal"));
}

TEST(DatalogEngine, TransitiveClosure) {
  Engine engine;
  for (int i = 1; i < 6; ++i) engine.add_fact("edge", {i, i + 1});
  engine.add_rule(Rule{atom("path", {V("A"), V("B")}), {atom("edge", {V("A"), V("B")})}, {}});
  engine.add_rule(Rule{atom("path", {V("A"), V("C")}),
                       {atom("path", {V("A"), V("B")}), atom("path", {V("B"), V("C")})},
                       {}});
  engine.run();
  // 5+4+3+2+1 = 15 pairs.
  EXPECT_EQ(engine.facts("path").size(), 15u);
  EXPECT_TRUE(engine.holds("path", {1, 6}));
  EXPECT_FALSE(engine.holds("path", {6, 1}));
}

TEST(DatalogEngine, CyclicGraphTerminates) {
  Engine engine;
  engine.add_fact("edge", {1, 2});
  engine.add_fact("edge", {2, 3});
  engine.add_fact("edge", {3, 1});
  engine.add_rule(Rule{atom("path", {V("A"), V("B")}), {atom("edge", {V("A"), V("B")})}, {}});
  engine.add_rule(Rule{atom("path", {V("A"), V("C")}),
                       {atom("path", {V("A"), V("B")}), atom("path", {V("B"), V("C")})},
                       {}});
  engine.run();
  EXPECT_EQ(engine.facts("path").size(), 9u);  // complete 3x3
  EXPECT_TRUE(engine.holds("path", {1, 1}));
}

TEST(DatalogEngine, DisequalityConstraint) {
  Engine engine;
  engine.add_fact("n", {1});
  engine.add_fact("n", {2});
  engine.add_rule(Rule{atom("pair", {V("A"), V("B")}),
                       {atom("n", {V("A")}), atom("n", {V("B")})},
                       {{"A", "B"}}});
  engine.run();
  EXPECT_EQ(engine.facts("pair").size(), 2u);  // (1,2) and (2,1), not (i,i)
}

TEST(DatalogEngine, ConstantsInRuleHead) {
  Engine engine;
  engine.add_fact("item", {"a"});
  engine.add_rule(Rule{atom("tagged", {V("X"), C("seen")}), {atom("item", {V("X")})}, {}});
  engine.run();
  EXPECT_TRUE(engine.holds("tagged", {"a", "seen"}));
}

TEST(DatalogEngine, UnsafeRuleRejected) {
  Engine engine;
  EXPECT_THROW(
      engine.add_rule(Rule{atom("h", {V("Unbound")}), {atom("b", {V("X")})}, {}}),
      std::invalid_argument);
}

TEST(DatalogEngine, StratifiedDerivationAcrossRules) {
  // a -> b -> c chains through two distinct rules.
  Engine engine;
  engine.add_fact("base", {5});
  engine.add_rule(Rule{atom("step1", {V("X")}), {atom("base", {V("X")})}, {}});
  engine.add_rule(Rule{atom("step2", {V("X")}), {atom("step1", {V("X")})}, {}});
  engine.run();
  EXPECT_TRUE(engine.holds("step2", {5}));
}

TEST(DatalogEngine, MixedArityAndTypes) {
  Engine engine;
  engine.add_fact("rw", {"s1", "v1", 42});
  engine.add_fact("rw", {"s2", "v1", 42});
  engine.add_rule(Rule{atom("alias", {V("A"), V("B")}),
                       {atom("rw", {V("A"), V("V"), V("D")}),
                        atom("rw", {V("B"), V("V"), V("D")})},
                       {{"A", "B"}}});
  engine.run();
  EXPECT_EQ(engine.facts("alias").size(), 2u);
}

TEST(DatalogEngine, LargeChainPerformance) {
  // Semi-naive evaluation should handle a 200-node chain comfortably.
  Engine engine;
  for (int i = 0; i < 200; ++i) engine.add_fact("e", {i, i + 1});
  engine.add_rule(Rule{atom("p", {V("A"), V("B")}), {atom("e", {V("A"), V("B")})}, {}});
  engine.add_rule(
      Rule{atom("p", {V("A"), V("C")}), {atom("p", {V("A"), V("B")}), atom("e", {V("B"), V("C")})}, {}});
  engine.run();
  EXPECT_EQ(engine.facts("p").size(), 200u * 201u / 2);
}

}  // namespace
}  // namespace edgstr::datalog
