#include <gtest/gtest.h>

#include "http/message.h"
#include "http/router.h"
#include "http/traffic.h"

namespace edgstr::http {
namespace {

TEST(HttpMessageTest, VerbRoundTrip) {
  for (Verb v : {Verb::kGet, Verb::kPost, Verb::kPut, Verb::kDelete, Verb::kPatch}) {
    EXPECT_EQ(verb_from_string(to_string(v)), v);
  }
  EXPECT_EQ(verb_from_string("get"), Verb::kGet);  // case-insensitive
  EXPECT_THROW(verb_from_string("FETCH"), std::invalid_argument);
}

TEST(HttpMessageTest, WireSizeIncludesPayload) {
  HttpRequest req;
  req.path = "/predict";
  req.params = json::Value::object({{"a", 1}});
  const std::uint64_t base = req.wire_size();
  req.payload_bytes = 1 << 20;
  EXPECT_EQ(req.wire_size(), base + (1 << 20));
}

TEST(HttpMessageTest, ResponseOkRange) {
  HttpResponse resp;
  resp.status = 200;
  EXPECT_TRUE(resp.ok());
  resp.status = 204;
  EXPECT_TRUE(resp.ok());
  resp.status = 404;
  EXPECT_FALSE(resp.ok());
  resp.status = 500;
  EXPECT_FALSE(resp.ok());
}

TEST(HttpMessageTest, ErrorFactory) {
  const HttpResponse resp = HttpResponse::error(503, "overloaded");
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(resp.body["error"].as_string(), "overloaded");
}

TEST(RouterTest, DispatchesToHandler) {
  Router router;
  router.add(Verb::kGet, "/x", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = json::Value::object({{"echo", req.params["v"]}});
    return resp;
  });
  HttpRequest req;
  req.verb = Verb::kGet;
  req.path = "/x";
  req.params = json::Value::object({{"v", 7}});
  EXPECT_DOUBLE_EQ(router.dispatch(req).body["echo"].as_number(), 7.0);
}

TEST(RouterTest, UnknownRouteIs404) {
  Router router;
  HttpRequest req;
  req.path = "/nope";
  EXPECT_EQ(router.dispatch(req).status, 404);
}

TEST(RouterTest, VerbDisambiguates) {
  Router router;
  router.add(Verb::kGet, "/r", [](const HttpRequest&) {
    HttpResponse r;
    r.body = json::Value("get");
    return r;
  });
  router.add(Verb::kPost, "/r", [](const HttpRequest&) {
    HttpResponse r;
    r.body = json::Value("post");
    return r;
  });
  HttpRequest req;
  req.path = "/r";
  req.verb = Verb::kPost;
  EXPECT_EQ(router.dispatch(req).body.as_string(), "post");
  EXPECT_EQ(router.routes().size(), 2u);
}

TEST(TrafficRecorderTest, InfersServicesFromExchanges) {
  TrafficRecorder recorder;
  HttpRequest req;
  req.verb = Verb::kPost;
  req.path = "/predict";
  req.params = json::Value::object({{"q", 1}});
  HttpResponse resp;
  resp.body = json::Value::object({{"label", "cat"}});
  recorder.record(req, resp, 0.0);
  recorder.record(req, resp, 0.1);

  const auto services = recorder.infer_services();
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].route.path, "/predict");
  EXPECT_EQ(services[0].invocation_count, 2u);
  EXPECT_EQ(services[0].exemplar_params.size(), 2u);
  EXPECT_GT(services[0].mean_request_bytes(), 0.0);
}

TEST(TrafficRecorderTest, SkipsErrorsAndEmptyResponses) {
  TrafficRecorder recorder;
  HttpRequest req;
  req.path = "/a";
  recorder.record(req, HttpResponse::error(500, "boom"), 0.0);
  HttpResponse empty;  // null body, no payload
  recorder.record(req, empty, 0.1);
  EXPECT_TRUE(recorder.infer_services().empty());
}

TEST(TrafficRecorderTest, PayloadOnlyResponsesCount) {
  TrafficRecorder recorder;
  HttpRequest req;
  req.path = "/img";
  HttpResponse resp;
  resp.payload_bytes = 4096;  // opaque body
  recorder.record(req, resp, 0.0);
  EXPECT_EQ(recorder.infer_services().size(), 1u);
}

TEST(TrafficRecorderTest, MultipleRoutesSeparated) {
  TrafficRecorder recorder;
  HttpResponse ok;
  ok.body = json::Value::object({{"r", 1}});
  for (const char* path : {"/a", "/b", "/a"}) {
    HttpRequest req;
    req.path = path;
    recorder.record(req, ok, 0.0);
  }
  const auto services = recorder.infer_services();
  ASSERT_EQ(services.size(), 2u);
}

}  // namespace
}  // namespace edgstr::http
// NOTE: appended suite — traffic persistence.
namespace edgstr::http {
namespace {

TEST(TrafficRecorderTest, JsonRoundTripPreservesRecords) {
  TrafficRecorder recorder;
  HttpRequest req;
  req.verb = Verb::kPost;
  req.path = "/predict";
  req.params = json::Value::object({{"q", json::Value::array({1, "two"})}});
  req.payload_bytes = 1 << 20;
  HttpResponse resp;
  resp.status = 200;
  resp.body = json::Value::object({{"label", "cat"}});
  resp.payload_bytes = 2048;
  recorder.record(req, resp, 1.25);

  const TrafficRecorder restored = TrafficRecorder::from_json(recorder.to_json());
  ASSERT_EQ(restored.size(), 1u);
  const TrafficRecord& rec = restored.records()[0];
  EXPECT_EQ(rec.request.verb, Verb::kPost);
  EXPECT_EQ(rec.request.params, req.params);
  EXPECT_EQ(rec.request.payload_bytes, req.payload_bytes);
  EXPECT_EQ(rec.response.body, resp.body);
  EXPECT_EQ(rec.response.payload_bytes, resp.payload_bytes);
  EXPECT_DOUBLE_EQ(rec.timestamp_s, 1.25);
  // Inference works identically on the restored capture.
  EXPECT_EQ(restored.infer_services().size(), recorder.infer_services().size());
}

TEST(TrafficRecorderTest, JsonRoundTripOfEmptyRecorder) {
  TrafficRecorder empty;
  EXPECT_EQ(TrafficRecorder::from_json(empty.to_json()).size(), 0u);
}

}  // namespace
}  // namespace edgstr::http
