#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "apps/app.h"
#include "edgstr/deployment.h"
#include "edgstr/pipeline.h"
#include "json/parse.h"
#include "netsim/clock.h"
#include "obs/export.h"
#include "obs/telemetry.h"

namespace edgstr::obs {
namespace {

// --------------------------------------------------------------- Tracer --

TEST(TracerTest, SpanWithoutParentRootsNewTrace) {
  Tracer tracer;
  const SpanId a = tracer.begin_span("req", "request", "client");
  const SpanId b = tracer.begin_span("req", "request", "client");
  ASSERT_NE(a, kNoSpan);
  ASSERT_NE(b, kNoSpan);
  EXPECT_NE(tracer.span(a).trace_id, tracer.span(b).trace_id);
  EXPECT_EQ(tracer.span(a).parent_id, 0u);
  EXPECT_EQ(tracer.span(b).parent_id, 0u);
}

TEST(TracerTest, ChildJoinsParentTrace) {
  Tracer tracer;
  const SpanId root = tracer.begin_span("request", "request", "client");
  const SpanId child = tracer.begin_span("proxy.serve", "request", "edge0",
                                         tracer.context(root));
  EXPECT_EQ(tracer.span(child).trace_id, tracer.span(root).trace_id);
  EXPECT_EQ(tracer.span(child).parent_id, tracer.span(root).id);
}

TEST(TracerTest, EndSpanUsesMaxSemantics) {
  netsim::SimClock clock;
  Tracer tracer(&clock);
  const SpanId span = tracer.begin_span("work", "sync", "cloud");
  EXPECT_DOUBLE_EQ(tracer.span(span).duration(), 0.0);

  clock.schedule(2.0, [] {});
  clock.run();
  tracer.end_span(span);
  EXPECT_DOUBLE_EQ(tracer.span(span).duration(), 2.0);

  // A later straggler extends the span; re-ending at the same time is a
  // no-op — the end only ever moves forward.
  clock.schedule(3.0, [] {});
  clock.run();
  tracer.end_span(span);
  EXPECT_DOUBLE_EQ(tracer.span(span).duration(), 5.0);
  tracer.end_span(span);
  EXPECT_DOUBLE_EQ(tracer.span(span).duration(), 5.0);
}

TEST(TracerTest, LinkDedupsAndIgnoresZero) {
  Tracer tracer;
  const SpanId span = tracer.begin_span("sync.send", "sync", "edge0");
  tracer.link(span, 7);
  tracer.link(span, 7);   // duplicate dropped
  tracer.link(span, 0);   // "no trace" sentinel ignored
  tracer.link(span, 9);
  ASSERT_EQ(tracer.span(span).links.size(), 2u);
  EXPECT_EQ(tracer.span(span).links[0], 7u);
  EXPECT_EQ(tracer.span(span).links[1], 9u);
}

TEST(TracerTest, IdenticalOperationsYieldIdenticalSpans) {
  auto record = [](Tracer& tracer) {
    const SpanId root = tracer.begin_span("request", "request", "client");
    const SpanId child =
        tracer.begin_span("proxy.serve", "request", "edge0", tracer.context(root));
    tracer.add_arg(child, "route", "POST /note");
    tracer.link(child, 42);
    tracer.end_span(child);
    tracer.end_span(root);
  };
  Tracer a, b;
  record(a);
  record(b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 1; i <= a.size(); ++i) {
    EXPECT_EQ(a.span(i).trace_id, b.span(i).trace_id);
    EXPECT_EQ(a.span(i).id, b.span(i).id);
    EXPECT_EQ(a.span(i).parent_id, b.span(i).parent_id);
    EXPECT_EQ(a.span(i).name, b.span(i).name);
    EXPECT_EQ(a.span(i).host, b.span(i).host);
    EXPECT_EQ(a.span(i).args, b.span(i).args);
    EXPECT_EQ(a.span(i).links, b.span(i).links);
  }
}

TEST(TracerTest, ClearResetsSpansAndTraceIds) {
  Tracer tracer;
  const std::uint64_t first = tracer.span(tracer.begin_span("a", "x", "h")).trace_id;
  tracer.clear();
  EXPECT_TRUE(tracer.empty());
  EXPECT_EQ(tracer.span(tracer.begin_span("a", "x", "h")).trace_id, first);
}

// ------------------------------------------------------------ Telemetry --

TEST(TelemetryTest, TagOpRequiresActiveContext) {
  Telemetry telemetry;
  telemetry.tag_op("files", "edge0", 1);  // no active context: dropped
  EXPECT_EQ(telemetry.op_trace("files", "edge0", 1), 0u);

  telemetry.set_active_context(TraceContext{5, 2});
  telemetry.tag_op("files", "edge0", 2);
  telemetry.clear_active_context();
  telemetry.tag_op("files", "edge0", 3);  // context cleared again: dropped

  EXPECT_EQ(telemetry.op_trace("files", "edge0", 2), 5u);
  EXPECT_EQ(telemetry.op_trace("files", "edge0", 3), 0u);
  // Identity is (doc, origin, seq) — other coordinates stay untagged.
  EXPECT_EQ(telemetry.op_trace("globals", "edge0", 2), 0u);
  EXPECT_EQ(telemetry.op_trace("files", "edge1", 2), 0u);
}

TEST(TelemetryTest, DeliveryAccounting) {
  Telemetry telemetry;
  EXPECT_FALSE(telemetry.delivered(3, "cloud"));
  telemetry.note_delivery("cloud", 3);
  telemetry.note_delivery("edge1", 3);
  telemetry.note_delivery("cloud", 3);  // duplicate is fine
  EXPECT_TRUE(telemetry.delivered(3, "cloud"));
  EXPECT_TRUE(telemetry.delivered(3, "edge1"));
  EXPECT_FALSE(telemetry.delivered(3, "edge2"));
  EXPECT_EQ(telemetry.delivered_hosts(3).size(), 2u);
  EXPECT_TRUE(telemetry.delivered_hosts(99).empty());
}

// ------------------------------------------------------------ Exporters --

TEST(ExportTest, ChromeTraceStructure) {
  netsim::SimClock clock;
  Tracer tracer(&clock);
  const SpanId root = tracer.begin_span("request", "request", "client");
  const SpanId serve =
      tracer.begin_span("proxy.serve", "request", "edge0", tracer.context(root));
  clock.schedule(0.5, [] {});
  clock.run();
  tracer.end_span(serve);
  tracer.end_span(root);
  const SpanId apply = tracer.begin_span("sync.apply", "sync", "cloud");
  tracer.link(apply, tracer.span(root).trace_id);
  tracer.end_span(apply);

  // Re-parse the serialized export: it must survive a JSON round trip.
  const json::Value doc = json::parse(chrome_trace_json(tracer).dump_pretty());
  ASSERT_TRUE(doc.is_object());
  const json::Array& events = doc["traceEvents"].as_array();

  int meta = 0, complete = 0, flow_start = 0, flow_finish = 0;
  for (const json::Value& event : events) {
    const std::string& ph = event["ph"].as_string();
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(event["name"].as_string(), "process_name");
    } else if (ph == "X") {
      ++complete;
      EXPECT_GE(event["dur"].as_number(), 0.0);
    } else if (ph == "s") {
      ++flow_start;
    } else if (ph == "f") {
      ++flow_finish;
    }
  }
  EXPECT_EQ(meta, 3);      // client, edge0, cloud
  EXPECT_EQ(complete, 3);  // three spans
  EXPECT_EQ(flow_start, 1);
  EXPECT_EQ(flow_finish, 1);

  // The serve span is 0.5 simulated seconds = 500000 trace microseconds.
  bool found_serve = false;
  for (const json::Value& event : events) {
    if (event["ph"].as_string() == "X" && event["name"].as_string() == "proxy.serve") {
      found_serve = true;
      EXPECT_DOUBLE_EQ(event["dur"].as_number(), 500000.0);
    }
  }
  EXPECT_TRUE(found_serve);
}

TEST(ExportTest, MetricsJsonMergesRegistriesLaterWins) {
  util::MetricsRegistry first, second;
  first.set("runtime.request.count.local", 4);
  first.set("shared.gauge", 1);
  first.observe("runtime.request.latency.local", 0.01);
  second.set("sync.rounds", 2);
  second.set("shared.gauge", 9);

  const json::Value doc = json::parse(metrics_json({&first, &second}).dump());
  const json::Object& counters = doc["counters"].as_object();
  EXPECT_DOUBLE_EQ(counters.at("runtime.request.count.local").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(counters.at("sync.rounds").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(counters.at("shared.gauge").as_number(), 9.0);

  const json::Object& histograms = doc["histograms"].as_object();
  ASSERT_TRUE(histograms.contains("runtime.request.latency.local"));
  const json::Value& h = histograms.at("runtime.request.latency.local");
  EXPECT_DOUBLE_EQ(h["count"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h["min"].as_number(), 0.01);
  EXPECT_DOUBLE_EQ(h["max"].as_number(), 0.01);
  EXPECT_TRUE(h["buckets"].is_array());
}

TEST(ExportTest, MetricsJsonMergesCollidingHistogramsBucketWise) {
  // Two registries observing the same histogram name used to export only
  // the later registry's samples; matching layouts now merge bucket-wise.
  util::MetricsRegistry first, second;
  first.observe("runtime.request.latency.local", 0.010);
  first.observe("runtime.request.latency.local", 0.020);
  second.observe("runtime.request.latency.local", 0.500);

  const json::Value doc = json::parse(metrics_json({&first, &second}).dump());
  const json::Value& merged = doc["histograms"].as_object().at("runtime.request.latency.local");
  EXPECT_DOUBLE_EQ(merged["count"].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(merged["min"].as_number(), 0.010);
  EXPECT_DOUBLE_EQ(merged["max"].as_number(), 0.500);
  EXPECT_DOUBLE_EQ(merged["sum"].as_number(), 0.530);

  // Mismatched bucket layouts cannot merge — later wins, as for counters.
  util::MetricsRegistry custom;
  custom.observe("runtime.request.latency.local", 5.0, {1.0, 10.0});
  const json::Value doc2 = json::parse(metrics_json({&first, &custom}).dump());
  const json::Value& replaced =
      doc2["histograms"].as_object().at("runtime.request.latency.local");
  EXPECT_DOUBLE_EQ(replaced["count"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(replaced["max"].as_number(), 5.0);
  ASSERT_EQ(replaced["buckets"].as_array().size(), 1u);  // sparse: one touched bucket
  EXPECT_DOUBLE_EQ(replaced["buckets"].as_array()[0][0].as_number(), 10.0);
}

TEST(ExportTest, ChromeTraceAppendsCounterTracksWhenTimeSeriesGiven) {
  netsim::SimClock clock;
  Tracer tracer(&clock);
  const SpanId span = tracer.begin_span("request", "request", "edge0");
  tracer.end_span(span);

  const std::string bare = chrome_trace_json(tracer).dump_pretty();
  // Null and empty series leave the export byte-identical.
  const TimeSeries empty_series(1.0);
  EXPECT_EQ(chrome_trace_json(tracer, nullptr).dump_pretty(), bare);
  EXPECT_EQ(chrome_trace_json(tracer, &empty_series).dump_pretty(), bare);

  TimeSeries series(1.0);
  series.add(0.5, "req.local", 2.0);
  series.add(1.5, "req.local", 3.0);
  series.set(0.5, "queue.depth", 7.0);
  const json::Value doc = json::parse(chrome_trace_json(tracer, &series).dump_pretty());

  int counter_events = 0;
  bool named_timeseries_process = false;
  double req_window1 = -1;
  for (const json::Value& event : doc["traceEvents"].as_array()) {
    const std::string& ph = event["ph"].as_string();
    if (ph == "M" && event["args"]["name"].as_string() == "timeseries") {
      named_timeseries_process = true;
    }
    if (ph != "C") continue;
    ++counter_events;
    if (event["name"].as_string() == "req.local" && event["ts"].as_number() == 1000000.0) {
      req_window1 = event["args"]["value"].as_number();
    }
  }
  EXPECT_TRUE(named_timeseries_process);
  EXPECT_EQ(counter_events, 3);  // two req.local windows + one gauge window
  EXPECT_DOUBLE_EQ(req_window1, 3.0);
}

TEST(ExportTest, TimeSeriesJsonSchemaAndByteIdentity) {
  auto build = [] {
    TimeSeries series(0.5);
    series.add(0.1, "req.local");
    series.add(0.6, "req.local", 2.0);
    series.set(0.1, "queue.depth", 4.0);
    series.observe(0.1, "staleness.seconds", 12.0);
    series.observe(0.7, "staleness.seconds", 30.0);
    return series;
  };
  const TimeSeries series = build();
  const std::string dump = timeseries_json(series).dump_pretty();
  EXPECT_EQ(timeseries_json(build()).dump_pretty(), dump);  // byte-identical

  const json::Value doc = json::parse(dump);
  EXPECT_DOUBLE_EQ(doc["window_s"].as_number(), 0.5);
  const json::Array& req = doc["counters"].as_object().at("req.local").as_array();
  ASSERT_EQ(req.size(), 2u);  // sparse: only touched windows appear
  EXPECT_DOUBLE_EQ(req[0][0].as_number(), 0.0);
  EXPECT_DOUBLE_EQ(req[0][1].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(req[1][0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(req[1][1].as_number(), 2.0);
  EXPECT_TRUE(doc["gauges"].as_object().contains("queue.depth"));
  const json::Array& hist =
      doc["histograms"].as_object().at("staleness.seconds").as_array();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_DOUBLE_EQ(hist[0][1]["count"].as_number(), 1.0);
  EXPECT_TRUE(hist[0][1]["buckets"].is_array());
}

TEST(ExportTest, WriteTextFileRoundTrip) {
  const std::string path = "obs_test_export.tmp";
  ASSERT_TRUE(write_text_file(path, "hello trace\n"));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "hello trace\n");
  in.close();
  std::remove(path.c_str());
  EXPECT_FALSE(write_text_file("no_such_dir/obs_test_export.tmp", "x"));
}

// ---------------------------------------------------- end-to-end tracing --

const core::TransformResult& transform_notes() {
  static const core::TransformResult result = [] {
    const apps::SubjectApp& app = apps::text_notes();
    const http::TrafficRecorder traffic =
        core::record_traffic(app.server_source, app.workload);
    return core::Pipeline().transform(app.name, app.server_source, traffic);
  }();
  return result;
}

http::HttpRequest note_request(const std::string& text) {
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/note";
  req.params = json::Value::object({{"text", json::Value(text)}});
  return req;
}

/// One edge write, synced to convergence; returns the write's trace id.
std::uint64_t write_and_sync(core::ThreeTierDeployment& three, std::uint64_t* root_span_out) {
  const http::HttpResponse resp = three.request_sync(note_request("traced"), 0);
  EXPECT_TRUE(resp.ok());

  const Tracer& tracer = three.telemetry().tracer();
  std::uint64_t trace = 0, root_span = 0;
  for (const Span& span : tracer.spans()) {
    if (span.name == "request" && span.parent_id == 0) {
      trace = span.trace_id;
      root_span = span.id;
    }
  }
  if (root_span_out) *root_span_out = root_span;

  for (int round = 0; round < 20 && !three.converged(); ++round) {
    three.sync().tick();
    three.network().clock().run();
  }
  EXPECT_TRUE(three.converged());
  return trace;
}

TEST(ObsIntegrationTest, EdgeWriteSpanTreeReachesCloud) {
  core::DeploymentConfig config;
  config.start_sync = false;
  core::ThreeTierDeployment three(transform_notes(), config);

  std::uint64_t root_span = 0;
  const std::uint64_t trace = write_and_sync(three, &root_span);
  ASSERT_NE(trace, 0u);

  const Tracer& tracer = three.telemetry().tracer();

  // The serve span is a child of the request's root span, on the edge.
  bool found_serve = false;
  for (const Span& span : tracer.spans()) {
    if (span.name == "proxy.serve" && span.trace_id == trace) {
      found_serve = true;
      EXPECT_EQ(span.parent_id, root_span);
      EXPECT_EQ(span.host, "edge0");
    }
  }
  EXPECT_TRUE(found_serve);

  // The sync plane carried the write's ops to the cloud: the delivery
  // table has it, and at least one sync span carries the causal link.
  EXPECT_TRUE(three.telemetry().delivered(trace, "cloud"));
  bool linked_send = false, linked_apply = false;
  for (const Span& span : tracer.spans()) {
    const bool links_trace =
        std::find(span.links.begin(), span.links.end(), trace) != span.links.end();
    if (!links_trace) continue;
    if (span.name == "sync.send") linked_send = true;
    if (span.name == "sync.apply" && span.host == "cloud") linked_apply = true;
  }
  EXPECT_TRUE(linked_send);
  EXPECT_TRUE(linked_apply);
}

TEST(ObsIntegrationTest, RequestLatencyAndStalenessMetricsRecorded) {
  core::DeploymentConfig config;
  config.start_sync = false;
  core::ThreeTierDeployment three(transform_notes(), config);
  write_and_sync(three, nullptr);
  // A round's duration is finalized (stretched over its in-flight
  // deliveries) and observed at the start of the next round — run one more
  // tick to flush the previous round into the histogram.
  three.sync().tick();
  three.network().clock().run();

  // Request path: the local-serve latency histogram saw the write.
  const util::MetricsRegistry& runtime_metrics = three.telemetry().metrics();
  ASSERT_NE(runtime_metrics.histogram("runtime.request.latency.local"), nullptr);
  EXPECT_GE(runtime_metrics.histogram("runtime.request.latency.local")->count(), 1u);
  EXPECT_GE(runtime_metrics.value("runtime.request.count.local"), 1.0);

  // Sync plane: round histograms plus per-endpoint staleness gauges.
  const util::MetricsRegistry& sync_metrics = three.sync().metrics();
  ASSERT_NE(sync_metrics.histogram("sync.round.duration"), nullptr);
  EXPECT_GE(sync_metrics.histogram("sync.round.duration")->count(), 1u);
  EXPECT_FALSE(sync_metrics.snapshot("sync.staleness.ops.edge0").empty());
  EXPECT_FALSE(sync_metrics.snapshot("sync.staleness.seconds.edge0").empty());
  // After convergence the edge lags the cloud by nothing.
  EXPECT_DOUBLE_EQ(sync_metrics.value("sync.staleness.ops.edge0"), 0.0);

  // The merged snapshot exposes both planes plus request quantiles.
  const json::Value doc = json::parse(three.metrics_snapshot().dump());
  EXPECT_TRUE(doc["counters"].as_object().contains("runtime.request.count.local"));
  const json::Object& histograms = doc["histograms"].as_object();
  ASSERT_TRUE(histograms.contains("runtime.request.latency.local"));
  const json::Value& latency = histograms.at("runtime.request.latency.local");
  EXPECT_GT(latency["p50"].as_number(), 0.0);
  EXPECT_GE(latency["p99"].as_number(), latency["p50"].as_number());
}

TEST(ObsIntegrationTest, SameSeedRunsProduceIdenticalTraceExport) {
  auto run = [] {
    core::DeploymentConfig config;
    config.start_sync = false;
    config.seed = 77;
    core::ThreeTierDeployment three(transform_notes(), config);
    write_and_sync(three, nullptr);
    return std::pair<std::string, std::string>(three.chrome_trace().dump_pretty(),
                                               three.metrics_snapshot().dump_pretty());
  };
  const auto [trace_a, metrics_a] = run();
  const auto [trace_b, metrics_b] = run();
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(metrics_a, metrics_b);
}

}  // namespace
}  // namespace edgstr::obs
