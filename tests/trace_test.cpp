#include <gtest/gtest.h>
#include "json/parse.h"

#include "trace/fuzzer.h"
#include "trace/rwlog.h"
#include "trace/state_capture.h"

namespace edgstr::trace {
namespace {

const char* kStatefulServer = R"JS(
var counter = 0;
var label = "none";
db.query("CREATE TABLE log (n, tag)");
fs.writeFile("models/m.bin", "weights");
app.post("/work", function (req, res) {
  var amount = req.params.amount;
  compute(50);
  counter = counter + amount;
  label = "did-" + amount;
  db.query("INSERT INTO log (n, tag) VALUES (?, ?)", [counter, label]);
  fs.appendFile("data/audit.log", str(amount));
  res.send({ counter: counter, got: amount });
});
app.get("/peek", function (req, res) {
  var q = req.params.q;
  res.send({ counter: counter, q: q });
});
)JS";

http::HttpRequest work_request(double amount) {
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/work";
  req.params = json::Value::object({{"amount", amount}});
  return req;
}

TEST(ValueDigestTest, EqualValuesEqualDigests) {
  const minijs::JsValue a = minijs::JsValue::from_json(json::parse(R"({"x":[1,2]})"));
  const minijs::JsValue b = minijs::JsValue::from_json(json::parse(R"({"x":[1,2]})"));
  const minijs::JsValue c = minijs::JsValue::from_json(json::parse(R"({"x":[1,3]})"));
  EXPECT_EQ(value_digest(a), value_digest(b));
  EXPECT_NE(value_digest(a), value_digest(c));
}

TEST(ValueDigestTest, BlobDigestTracksFingerprint) {
  EXPECT_NE(value_digest(minijs::JsValue(minijs::Blob{100, 1})),
            value_digest(minijs::JsValue(minijs::Blob{100, 2})));
  EXPECT_EQ(value_digest(minijs::JsValue(minijs::Blob{100, 1})),
            value_digest(minijs::JsValue(minijs::Blob{100, 1})));
}

TEST(RwCollectorTest, CapturesEventsAndFlows) {
  ProfilingHarness harness(kStatefulServer);
  RwCollector collector;
  harness.invoke(http::Route{http::Verb::kPost, "/work"}, work_request(5), &collector);

  // amount written (declare), then read when computing counter.
  bool amount_written = false, amount_read = false;
  for (const RwEvent& e : collector.events()) {
    if (e.name() == "amount" && e.kind == RwEvent::Kind::kWrite) amount_written = true;
    if (e.name() == "amount" && e.kind == RwEvent::Kind::kRead) amount_read = true;
  }
  EXPECT_TRUE(amount_written);
  EXPECT_TRUE(amount_read);

  // Dynamic flow edge: reader of 'amount' linked to its writer statement.
  bool flow_found = false;
  for (const FlowEdge& edge : collector.flow_edges()) {
    if (edge.variable() == "amount") flow_found = true;
  }
  EXPECT_TRUE(flow_found);
  EXPECT_FALSE(collector.executed_statements().empty());
}

TEST(RwCollectorTest, ClassifiesSqlInvocations) {
  ProfilingHarness harness(kStatefulServer);
  RwCollector collector;
  harness.invoke(http::Route{http::Verb::kPost, "/work"}, work_request(5), &collector);
  ASSERT_EQ(collector.sql_events().size(), 1u);
  EXPECT_EQ(collector.sql_events()[0].table, "log");
  EXPECT_TRUE(collector.sql_events()[0].mutation);
}

TEST(RwCollectorTest, ClassifiesFileInvocations) {
  ProfilingHarness harness(kStatefulServer);
  RwCollector collector;
  harness.invoke(http::Route{http::Verb::kPost, "/work"}, work_request(5), &collector);
  ASSERT_EQ(collector.file_events().size(), 1u);
  EXPECT_EQ(collector.file_events()[0].path, "data/audit.log");
  EXPECT_TRUE(collector.file_events()[0].write);
}

TEST(RwCollectorTest, ClearResets) {
  RwCollector collector;
  collector.on_write(1, util::intern("x"), minijs::JsValue(1.0));
  collector.clear();
  EXPECT_TRUE(collector.events().empty());
  EXPECT_TRUE(collector.flow_edges().empty());
}

TEST(StateCaptureTest, SnapshotCoversAllThreeUnits) {
  ProfilingHarness harness(kStatefulServer);
  const Snapshot& snap = harness.init_snapshot();
  EXPECT_TRUE(snap.globals.count("counter"));
  EXPECT_TRUE(snap.globals.count("label"));
  EXPECT_FALSE(snap.globals.count("app"));  // builtins excluded
  EXPECT_EQ(snap.tables.size(), 1u);
  EXPECT_TRUE(snap.files.count("models/m.bin"));
  EXPECT_GT(snap.size_bytes(), 0u);
  // size_bytes arithmetic must match the serializer exactly.
  EXPECT_EQ(snap.size_bytes(), snap.to_json().wire_size());
  // Round trip through JSON.
  const Snapshot back = Snapshot::from_json(snap.to_json());
  EXPECT_EQ(back.globals_json(), snap.globals_json());
  EXPECT_EQ(back.to_json(), snap.to_json());
  EXPECT_EQ(back.size_bytes(), snap.size_bytes());
}

TEST(StateCaptureTest, GlobalsExcludeFunctions) {
  ProfilingHarness harness("function f() { return 1; } var x = 2;");
  const json::Value globals = capture_globals(harness.interpreter());
  EXPECT_TRUE(globals.find("x"));
  EXPECT_FALSE(globals.find("f"));
}

TEST(StateCaptureTest, IsolationRestoresInitAroundExecution) {
  ProfilingHarness harness(kStatefulServer);
  const http::Route route{http::Verb::kPost, "/work"};

  auto first = harness.invoke_isolated(route, work_request(5));
  auto second = harness.invoke_isolated(route, work_request(5));
  // Stateful service, but isolation makes executions identical.
  EXPECT_EQ(first.response.body, second.response.body);
  EXPECT_DOUBLE_EQ(first.response.body["counter"].as_number(), 5.0);
  EXPECT_DOUBLE_EQ(first.compute_units, 50.0);

  // After isolation, live state equals init state.
  const Snapshot now = harness.capture();
  EXPECT_EQ(now.globals_json(), harness.init_snapshot().globals_json());
  EXPECT_EQ(now.database_json(), harness.init_snapshot().database_json());
  EXPECT_TRUE(diff_snapshots(harness.init_snapshot(), now).empty());
}

TEST(StateCaptureTest, DiffDetectsEachUnit) {
  ProfilingHarness harness(kStatefulServer);
  const auto result =
      harness.invoke_isolated(http::Route{http::Verb::kPost, "/work"}, work_request(3));
  EXPECT_EQ(result.state_diff.changed_tables, (std::set<std::string>{"log"}));
  EXPECT_EQ(result.state_diff.changed_files, (std::set<std::string>{"data/audit.log"}));
  EXPECT_EQ(result.state_diff.changed_globals, (std::set<std::string>{"counter", "label"}));
  EXPECT_FALSE(result.state_diff.empty());
  EXPECT_EQ(result.state_diff.total(), 4u);
}

TEST(StateCaptureTest, ReadOnlyServiceHasEmptyDiff) {
  ProfilingHarness harness(kStatefulServer);
  http::HttpRequest req;
  req.verb = http::Verb::kGet;
  req.path = "/peek";
  req.params = json::Value::object({{"q", 1}});
  const auto result = harness.invoke_isolated(http::Route{http::Verb::kGet, "/peek"}, req);
  EXPECT_TRUE(result.state_diff.empty());
}

TEST(FuzzerTest, PerturbChangesEveryComponent) {
  http::HttpRequest req;
  req.params = json::Value::object({{"n", 5}, {"s", "text"}, {"flag", true},
                                    {"arr", json::Value::array({1, 2})}});
  req.payload_bytes = 1000;
  const http::HttpRequest fz = Fuzzer::perturb(req, 3);
  EXPECT_DOUBLE_EQ(fz.params["n"].as_number(), 8.0);
  EXPECT_EQ(fz.params["s"].as_string(), "text_fz3");
  EXPECT_NE(fz.payload_bytes, req.payload_bytes);
  // Salt 0 replays unmodified.
  const http::HttpRequest same = Fuzzer::perturb(req, 0);
  EXPECT_EQ(same.params, req.params);
  EXPECT_EQ(same.payload_bytes, req.payload_bytes);
}

TEST(FuzzerTest, ComponentDigestsCoverParamsAndPayload) {
  http::HttpRequest req;
  req.params = json::Value::object({{"a", 1}, {"b", "x"}});
  req.payload_bytes = 512;
  const auto digests = request_component_digests(req);
  EXPECT_TRUE(digests.count("params"));
  EXPECT_TRUE(digests.count("params.a"));
  EXPECT_TRUE(digests.count("params.b"));
  EXPECT_TRUE(digests.count("payload"));
}

TEST(FuzzerTest, FuzzProducesIsolatedInstrumentedRuns) {
  ProfilingHarness harness(kStatefulServer);
  http::ServiceProfile profile;
  profile.route = {http::Verb::kPost, "/work"};
  profile.exemplar_params.push_back(json::Value::object({{"amount", 5}}));
  profile.exemplar_results.push_back(json::Value());
  profile.invocation_count = 1;
  profile.request_bytes_total = work_request(5).wire_size();

  Fuzzer fuzzer(harness, util::Rng(7));
  const FuzzReport report = fuzzer.fuzz(profile, 4);
  ASSERT_EQ(report.runs.size(), 4u);
  // Responses vary with the fuzzed parameter.
  EXPECT_NE(report.runs[0].response_digest, report.runs[1].response_digest);
  // All runs executed the same statements (no divergent control flow here).
  EXPECT_EQ(report.common_statements().size(), report.runs[0].executed_statements.size());
  // Isolation: every run starts from counter == 0.
  for (const FuzzRun& run : report.runs) {
    EXPECT_DOUBLE_EQ(run.response.body["counter"].as_number(),
                     run.request.params["amount"].as_number());
  }
}

TEST(FuzzerTest, FuzzRequiresExemplar) {
  ProfilingHarness harness(kStatefulServer);
  Fuzzer fuzzer(harness, util::Rng(7));
  http::ServiceProfile empty;
  empty.route = {http::Verb::kPost, "/work"};
  EXPECT_THROW(fuzzer.fuzz(empty, 3), std::invalid_argument);
}

}  // namespace
}  // namespace edgstr::trace
