#include <gtest/gtest.h>

#include "runtime/node.h"
#include "runtime/proxy.h"
#include "workload/generator.h"

namespace edgstr::workload {
namespace {

TEST(ArrivalScheduleTest, ConstantSpacing) {
  const ArrivalSchedule s = ArrivalSchedule::constant(10, 2.0);
  ASSERT_FALSE(s.times().empty());
  EXPECT_NEAR(double(s.size()), 19, 1);  // ~10 rps for 2 s, first at 0.1
  for (std::size_t i = 1; i < s.times().size(); ++i) {
    EXPECT_NEAR(s.times()[i] - s.times()[i - 1], 0.1, 1e-9);
  }
  EXPECT_LT(s.times().back(), 2.0);
}

TEST(ArrivalScheduleTest, PoissonRateRoughlyHolds) {
  const ArrivalSchedule s = ArrivalSchedule::poisson(100, 50.0, 3);
  EXPECT_NEAR(double(s.size()), 5000, 300);  // ~4 sigma
  // Strictly increasing within duration.
  for (std::size_t i = 1; i < s.times().size(); ++i) {
    EXPECT_GT(s.times()[i], s.times()[i - 1]);
  }
  EXPECT_LT(s.times().back(), 50.0);
}

TEST(ArrivalScheduleTest, PoissonDeterministicPerSeed) {
  const ArrivalSchedule a = ArrivalSchedule::poisson(50, 5.0, 11);
  const ArrivalSchedule b = ArrivalSchedule::poisson(50, 5.0, 11);
  EXPECT_EQ(a.times(), b.times());
}

TEST(ArrivalScheduleTest, PhasesChangeDensity) {
  const ArrivalSchedule s =
      ArrivalSchedule::phases({Phase{200, 5.0}, Phase{10, 5.0}}, 5);
  std::size_t first_half = 0;
  for (const double t : s.times()) {
    if (t < 5.0) ++first_half;
  }
  const std::size_t second_half = s.size() - first_half;
  EXPECT_GT(first_half, second_half * 5);
  EXPECT_DOUBLE_EQ(s.duration_s(), 10.0);
}

TEST(ArrivalScheduleTest, DiurnalOscillates) {
  // One full period: the high half-period must carry more arrivals.
  const ArrivalSchedule s = ArrivalSchedule::diurnal(10, 100, 40.0, 40.0, 2);
  std::size_t rising = 0, falling = 0;
  for (const double t : s.times()) {
    if (t < 20.0) ++rising;   // sin positive half: above-mid rates
    else ++falling;
  }
  EXPECT_GT(rising, falling);
}

TEST(ArrivalScheduleTest, RejectsBadArguments) {
  EXPECT_THROW(ArrivalSchedule::constant(0, 1), std::invalid_argument);
  EXPECT_THROW(ArrivalSchedule::poisson(10, 0), std::invalid_argument);
  EXPECT_THROW(ArrivalSchedule::diurnal(5, 2, 10, 10), std::invalid_argument);
}

TEST(RequestMixTest, SingleRequestAlwaysDrawn) {
  http::HttpRequest req;
  req.path = "/only";
  const RequestMix mix(req);
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(mix.draw(rng).path, "/only");
}

TEST(RequestMixTest, WeightsBiasDraws) {
  http::HttpRequest a, b;
  a.path = "/a";
  b.path = "/b";
  const RequestMix mix({a, b}, {9.0, 1.0});
  util::Rng rng(2);
  int a_count = 0;
  for (int i = 0; i < 2000; ++i) {
    if (mix.draw(rng).path == "/a") ++a_count;
  }
  EXPECT_NEAR(a_count, 1800, 80);
}

TEST(RequestMixTest, RejectsInvalidWeights) {
  http::HttpRequest req;
  EXPECT_THROW(RequestMix({req}, {0.0}), std::invalid_argument);
  EXPECT_THROW(RequestMix({req}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(RequestMix({req, req}, {1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------- driver --

struct DriverWorld {
  netsim::Network net{9};
  runtime::Node cloud;

  DriverWorld() : cloud(net.clock(), spec()) {
    cloud.host(std::make_unique<runtime::ServiceRuntime>(R"JS(
      app.get("/ok", function (req, res) { compute(10); res.send({ok: 1}); });
    )JS"));
    net.connect("client", "cloud", netsim::LinkConfig::fast_wan());
  }
  static runtime::NodeSpec spec() {
    runtime::NodeSpec s;
    s.name = "cloud";
    s.cores = 8;
    s.seconds_per_unit = 1e-5;
    s.request_overhead_s = 1e-4;
    return s;
  }
};

TEST(WorkloadDriverTest, DrivesAndCollects) {
  DriverWorld w;
  runtime::TwoTierPath path(w.net, "client", w.cloud);
  http::HttpRequest req;
  req.path = "/ok";

  WorkloadDriver driver(w.net.clock());
  const WorkloadResult result =
      driver.drive(ArrivalSchedule::poisson(50, 4.0, 5), RequestMix(req),
                   [&](const http::HttpRequest& r, auto done) { path.request(r, done); });
  EXPECT_GT(result.issued, 150u);
  EXPECT_EQ(result.completed, result.issued);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.latencies_ms.mean(), 30.0);  // ~ WAN RTT
  EXPECT_DOUBLE_EQ(result.completion_rate(), 1.0);
}

TEST(WorkloadDriverTest, FailuresCounted) {
  DriverWorld w;
  runtime::TwoTierPath path(w.net, "client", w.cloud);
  http::HttpRequest req;
  req.path = "/missing";  // 404s
  WorkloadDriver driver(w.net.clock());
  const WorkloadResult result =
      driver.drive(ArrivalSchedule::constant(10, 1.0), RequestMix(req),
                   [&](const http::HttpRequest& r, auto done) { path.request(r, done); });
  EXPECT_EQ(result.failed, result.completed);
  EXPECT_GT(result.failed, 0u);
}

TEST(WorkloadDriverTest, PeriodicHookFires) {
  DriverWorld w;
  runtime::TwoTierPath path(w.net, "client", w.cloud);
  http::HttpRequest req;
  req.path = "/ok";
  WorkloadDriver driver(w.net.clock());
  int hooks = 0;
  driver.set_periodic_hook([&] { ++hooks; }, 1.0);
  driver.drive(ArrivalSchedule::constant(5, 5.0), RequestMix(req),
               [&](const http::HttpRequest& r, auto done) { path.request(r, done); });
  EXPECT_GE(hooks, 4);
  EXPECT_LE(hooks, 6);
}

}  // namespace
}  // namespace edgstr::workload
