#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "runtime/node.h"
#include "runtime/proxy.h"
#include "workload/generator.h"
#include "workload/shapes.h"

namespace edgstr::workload {
namespace {

TEST(ArrivalScheduleTest, ConstantSpacing) {
  const ArrivalSchedule s = ArrivalSchedule::constant(10, 2.0);
  ASSERT_FALSE(s.times().empty());
  EXPECT_NEAR(double(s.size()), 19, 1);  // ~10 rps for 2 s, first at 0.1
  for (std::size_t i = 1; i < s.times().size(); ++i) {
    EXPECT_NEAR(s.times()[i] - s.times()[i - 1], 0.1, 1e-9);
  }
  EXPECT_LT(s.times().back(), 2.0);
}

TEST(ArrivalScheduleTest, PoissonRateRoughlyHolds) {
  const ArrivalSchedule s = ArrivalSchedule::poisson(100, 50.0, 3);
  EXPECT_NEAR(double(s.size()), 5000, 300);  // ~4 sigma
  // Strictly increasing within duration.
  for (std::size_t i = 1; i < s.times().size(); ++i) {
    EXPECT_GT(s.times()[i], s.times()[i - 1]);
  }
  EXPECT_LT(s.times().back(), 50.0);
}

TEST(ArrivalScheduleTest, PoissonDeterministicPerSeed) {
  const ArrivalSchedule a = ArrivalSchedule::poisson(50, 5.0, 11);
  const ArrivalSchedule b = ArrivalSchedule::poisson(50, 5.0, 11);
  EXPECT_EQ(a.times(), b.times());
}

TEST(ArrivalScheduleTest, PhasesChangeDensity) {
  const ArrivalSchedule s =
      ArrivalSchedule::phases({Phase{200, 5.0}, Phase{10, 5.0}}, 5);
  std::size_t first_half = 0;
  for (const double t : s.times()) {
    if (t < 5.0) ++first_half;
  }
  const std::size_t second_half = s.size() - first_half;
  EXPECT_GT(first_half, second_half * 5);
  EXPECT_DOUBLE_EQ(s.duration_s(), 10.0);
}

TEST(ArrivalScheduleTest, DiurnalOscillates) {
  // One full period: the high half-period must carry more arrivals.
  const ArrivalSchedule s = ArrivalSchedule::diurnal(10, 100, 40.0, 40.0, 2);
  std::size_t rising = 0, falling = 0;
  for (const double t : s.times()) {
    if (t < 20.0) ++rising;   // sin positive half: above-mid rates
    else ++falling;
  }
  EXPECT_GT(rising, falling);
}

TEST(ArrivalScheduleTest, RejectsBadArguments) {
  EXPECT_THROW(ArrivalSchedule::constant(0, 1), std::invalid_argument);
  EXPECT_THROW(ArrivalSchedule::poisson(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(ArrivalSchedule::diurnal(5, 2, 10, 10, 1), std::invalid_argument);
}

// ------------------------------------------------------- workload shapes --

TEST(KeyDistributionTest, ZipfEmpiricalFrequenciesMatchTargetSkew) {
  const double skew = 1.1;
  const KeyDistribution dist = KeyDistribution::zipf(32, skew);
  ASSERT_EQ(dist.size(), 32u);

  util::Rng rng(42);
  std::vector<std::size_t> counts(dist.size(), 0);
  const std::size_t draws = 200000;
  for (std::size_t i = 0; i < draws; ++i) ++counts[dist.draw(rng)];

  // Theoretical p(i) ∝ 1/(i+1)^skew; empirical frequency of each of the
  // top keys must land within 10% relative tolerance of it.
  double norm = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) norm += 1.0 / std::pow(double(i + 1), skew);
  for (std::size_t i = 0; i < 5; ++i) {
    const double expected = (1.0 / std::pow(double(i + 1), skew)) / norm;
    const double empirical = double(counts[i]) / double(draws);
    EXPECT_NEAR(empirical, expected, expected * 0.10) << "key " << i;
  }
  // The head must dominate: with skew > 1 the top 3 of 32 carry a large
  // share, and the analytic top_share agrees with the empirical one.
  const double empirical_top3 =
      double(counts[0] + counts[1] + counts[2]) / double(draws);
  EXPECT_GT(empirical_top3, 0.5);
  EXPECT_NEAR(empirical_top3, dist.top_share(3), 0.02);
}

TEST(KeyDistributionTest, UniformIsFlat) {
  const KeyDistribution dist = KeyDistribution::uniform(8);
  EXPECT_NEAR(dist.top_share(2), 0.25, 1e-12);
  util::Rng rng(7);
  std::vector<std::size_t> counts(8, 0);
  for (std::size_t i = 0; i < 80000; ++i) ++counts[dist.draw(rng)];
  for (const std::size_t c : counts) EXPECT_NEAR(double(c), 10000.0, 400.0);
}

TEST(KeyDistributionTest, RejectsBadArguments) {
  EXPECT_THROW(KeyDistribution::zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(KeyDistribution::zipf(4, -0.5), std::invalid_argument);
}

TEST(FlashCrowdTest, SameSeedIsByteIdentical) {
  const ArrivalSchedule base = ArrivalSchedule::poisson(30, 20.0, 9);
  FlashCrowdSpec spec;
  spec.crowds = 2;
  spec.crowd_duration_s = 3.0;
  spec.compression = 4.0;
  const ArrivalSchedule a = inject_flash_crowds(base, spec, 5);
  const ArrivalSchedule b = inject_flash_crowds(base, spec, 5);
  EXPECT_EQ(a.times(), b.times());
  // A different seed moves the crowd windows.
  const ArrivalSchedule c = inject_flash_crowds(base, spec, 6);
  EXPECT_NE(a.times(), c.times());
}

TEST(FlashCrowdTest, ConservesTotalArrivalCount) {
  const ArrivalSchedule base = ArrivalSchedule::poisson(50, 30.0, 3);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FlashCrowdSpec spec;
    spec.crowds = 3;
    spec.crowd_duration_s = 2.5;
    spec.compression = 6.0;
    const ArrivalSchedule warped = inject_flash_crowds(base, spec, seed);
    EXPECT_EQ(warped.size(), base.size()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(warped.duration_s(), base.duration_s());
    // Still a valid schedule: sorted, inside the duration.
    for (std::size_t i = 1; i < warped.times().size(); ++i) {
      EXPECT_GE(warped.times()[i], warped.times()[i - 1]);
    }
    EXPECT_LT(warped.times().back(), base.duration_s());
  }
}

TEST(FlashCrowdTest, CompressionRaisesPeakDensity) {
  const ArrivalSchedule base = ArrivalSchedule::poisson(40, 30.0, 11);
  FlashCrowdSpec spec;
  spec.crowds = 2;
  spec.crowd_duration_s = 4.0;
  spec.compression = 8.0;
  const ArrivalSchedule warped = inject_flash_crowds(base, spec, 11);
  const auto peak_1s = [](const ArrivalSchedule& s) {
    std::size_t best = 0, lo = 0;
    for (std::size_t hi = 0; hi < s.times().size(); ++hi) {
      while (s.times()[hi] - s.times()[lo] > 1.0) ++lo;
      best = std::max(best, hi - lo + 1);
    }
    return best;
  };
  EXPECT_GT(peak_1s(warped), peak_1s(base) * 2);
}

TEST(MigrationTraceTest, SameSeedIsByteIdentical) {
  ChurnSpec spec;
  spec.clients = 6;
  spec.proxies = 3;
  spec.duration_s = 50.0;
  spec.migration_rate = 0.2;
  const MigrationTrace a = MigrationTrace::generate(spec, 17);
  const MigrationTrace b = MigrationTrace::generate(spec, 17);
  ASSERT_EQ(a.clients(), b.clients());
  EXPECT_EQ(a.migrations(), b.migrations());
  for (std::size_t c = 0; c < a.clients(); ++c) {
    const auto& sa = a.segments(c);
    const auto& sb = b.segments(c);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].proxy, sb[i].proxy);
      EXPECT_DOUBLE_EQ(sa[i].start_s, sb[i].start_s);
      EXPECT_DOUBLE_EQ(sa[i].end_s, sb[i].end_s);
    }
  }
}

TEST(MigrationTraceTest, SessionsNeverOverlapTwoProxies) {
  // A client's segments must tile [0, duration) exactly: contiguous,
  // non-overlapping, never on two proxies at once, and every boundary is a
  // real migration (adjacent segments differ in proxy).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ChurnSpec spec;
    spec.clients = 5;
    spec.proxies = 4;
    spec.duration_s = 40.0;
    spec.migration_rate = 0.25;
    const MigrationTrace trace = MigrationTrace::generate(spec, seed);
    ASSERT_EQ(trace.clients(), spec.clients);
    std::size_t boundaries = 0;
    for (std::size_t c = 0; c < trace.clients(); ++c) {
      const auto& segs = trace.segments(c);
      ASSERT_FALSE(segs.empty());
      EXPECT_DOUBLE_EQ(segs.front().start_s, 0.0);
      EXPECT_DOUBLE_EQ(segs.back().end_s, spec.duration_s);
      for (std::size_t i = 0; i < segs.size(); ++i) {
        EXPECT_LT(segs[i].proxy, spec.proxies);
        EXPECT_LT(segs[i].start_s, segs[i].end_s);
        if (i > 0) {
          EXPECT_DOUBLE_EQ(segs[i].start_s, segs[i - 1].end_s);
          EXPECT_NE(segs[i].proxy, segs[i - 1].proxy)
              << "seed " << seed << " client " << c << " segment " << i;
          ++boundaries;
        }
      }
      // proxy_at agrees with the segment list at segment midpoints.
      for (const SessionSegment& seg : segs) {
        EXPECT_EQ(trace.proxy_at(c, (seg.start_s + seg.end_s) / 2.0), seg.proxy);
      }
    }
    EXPECT_EQ(trace.migrations(), boundaries) << "seed " << seed;
  }
}

TEST(MigrationTraceTest, SingleProxyNeverMigrates) {
  ChurnSpec spec;
  spec.clients = 3;
  spec.proxies = 1;
  spec.duration_s = 30.0;
  spec.migration_rate = 0.5;
  const MigrationTrace trace = MigrationTrace::generate(spec, 4);
  EXPECT_EQ(trace.migrations(), 0u);
  for (std::size_t c = 0; c < trace.clients(); ++c) {
    EXPECT_EQ(trace.segments(c).size(), 1u);
    EXPECT_EQ(trace.proxy_at(c, 15.0), 0u);
  }
}

TEST(ParseWorkloadShapeTest, RoundTripsAndRejectsUnknown) {
  for (const WorkloadShape shape : {WorkloadShape::kUniform, WorkloadShape::kZipf,
                                    WorkloadShape::kFlash, WorkloadShape::kChurn}) {
    WorkloadShape parsed = WorkloadShape::kUniform;
    ASSERT_TRUE(parse_workload_shape(workload_shape_name(shape), &parsed));
    EXPECT_EQ(parsed, shape);
  }
  WorkloadShape parsed = WorkloadShape::kUniform;
  EXPECT_FALSE(parse_workload_shape("bursty", &parsed));
}

TEST(RequestMixTest, SingleRequestAlwaysDrawn) {
  http::HttpRequest req;
  req.path = "/only";
  const RequestMix mix(req);
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(mix.draw(rng).path, "/only");
}

TEST(RequestMixTest, WeightsBiasDraws) {
  http::HttpRequest a, b;
  a.path = "/a";
  b.path = "/b";
  const RequestMix mix({a, b}, {9.0, 1.0});
  util::Rng rng(2);
  int a_count = 0;
  for (int i = 0; i < 2000; ++i) {
    if (mix.draw(rng).path == "/a") ++a_count;
  }
  EXPECT_NEAR(a_count, 1800, 80);
}

TEST(RequestMixTest, RejectsInvalidWeights) {
  http::HttpRequest req;
  EXPECT_THROW(RequestMix({req}, {0.0}), std::invalid_argument);
  EXPECT_THROW(RequestMix({req}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(RequestMix({req, req}, {1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------- driver --

struct DriverWorld {
  netsim::Network net{9};
  runtime::Node cloud;

  DriverWorld() : cloud(net.clock(), spec()) {
    cloud.host(std::make_unique<runtime::ServiceRuntime>(R"JS(
      app.get("/ok", function (req, res) { compute(10); res.send({ok: 1}); });
    )JS"));
    net.connect("client", "cloud", netsim::LinkConfig::fast_wan());
  }
  static runtime::NodeSpec spec() {
    runtime::NodeSpec s;
    s.name = "cloud";
    s.cores = 8;
    s.seconds_per_unit = 1e-5;
    s.request_overhead_s = 1e-4;
    return s;
  }
};

TEST(WorkloadDriverTest, DrivesAndCollects) {
  DriverWorld w;
  runtime::TwoTierPath path(w.net, "client", w.cloud);
  http::HttpRequest req;
  req.path = "/ok";

  WorkloadDriver driver(w.net.clock());
  const WorkloadResult result =
      driver.drive(ArrivalSchedule::poisson(50, 4.0, 5), RequestMix(req),
                   [&](const http::HttpRequest& r, auto done) { path.request(r, done); });
  EXPECT_GT(result.issued, 150u);
  EXPECT_EQ(result.completed, result.issued);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.latencies_ms.mean(), 30.0);  // ~ WAN RTT
  EXPECT_DOUBLE_EQ(result.completion_rate(), 1.0);
}

TEST(WorkloadDriverTest, FailuresCounted) {
  DriverWorld w;
  runtime::TwoTierPath path(w.net, "client", w.cloud);
  http::HttpRequest req;
  req.path = "/missing";  // 404s
  WorkloadDriver driver(w.net.clock());
  const WorkloadResult result =
      driver.drive(ArrivalSchedule::constant(10, 1.0), RequestMix(req),
                   [&](const http::HttpRequest& r, auto done) { path.request(r, done); });
  EXPECT_EQ(result.failed, result.completed);
  EXPECT_GT(result.failed, 0u);
}

TEST(WorkloadDriverTest, PeriodicHookFires) {
  DriverWorld w;
  runtime::TwoTierPath path(w.net, "client", w.cloud);
  http::HttpRequest req;
  req.path = "/ok";
  WorkloadDriver driver(w.net.clock());
  int hooks = 0;
  driver.set_periodic_hook([&] { ++hooks; }, 1.0);
  driver.drive(ArrivalSchedule::constant(5, 5.0), RequestMix(req),
               [&](const http::HttpRequest& r, auto done) { path.request(r, done); });
  EXPECT_GE(hooks, 4);
  EXPECT_LE(hooks, 6);
}

}  // namespace
}  // namespace edgstr::workload
