#include <gtest/gtest.h>

#include "cluster/autoscaler.h"
#include "cluster/balancer.h"
#include "cluster/device.h"
#include "cluster/energy.h"

namespace edgstr::cluster {
namespace {

const char* kServer = R"JS(
app.post("/work", function (req, res) {
  var u = req.params.u;
  compute(u);
  res.send({ done: u });
});
)JS";

http::HttpRequest work(double units) {
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/work";
  req.params = json::Value::object({{"u", units}});
  return req;
}

runtime::NodeSpec spec(const std::string& name) {
  runtime::NodeSpec s;
  s.name = name;
  s.seconds_per_unit = 0.001;
  s.request_overhead_s = 0;
  return s;
}

// ---------------------------------------------------------- DeviceProfile --

TEST(DeviceProfileTest, Rpi4IsPaperFactorFasterThanRpi3) {
  const double ratio = DeviceProfile::rpi3().seconds_per_unit /
                       DeviceProfile::rpi4().seconds_per_unit;
  EXPECT_NEAR(ratio, 1.8, 0.01);  // the cited CPU benchmark factor
}

TEST(DeviceProfileTest, CloudFasterThanEdges) {
  EXPECT_LT(DeviceProfile::optiplex5050().seconds_per_unit,
            DeviceProfile::rpi4().seconds_per_unit);
}

TEST(DeviceProfileTest, SpecConversionCarriesFields) {
  const runtime::NodeSpec s = DeviceProfile::rpi3().spec("edge7");
  EXPECT_EQ(s.name, "edge7");
  EXPECT_DOUBLE_EQ(s.seconds_per_unit, DeviceProfile::rpi3().seconds_per_unit);
  EXPECT_DOUBLE_EQ(s.lowpower_power_w, DeviceProfile::rpi3().lowpower_power_w);
}

TEST(MobileDeviceTest, EnergySplitsPhases) {
  MobileDevice phone;
  // 2 s tx + 5 s wait + 1 s rx.
  const double e = phone.request_energy_j(2, 5, 1);
  EXPECT_NEAR(e, 2 * phone.tx_power_w + 5 * phone.wait_power_w + 1 * phone.rx_power_w +
                     8 * phone.base_power_w,
              1e-9);
}

TEST(MobileDeviceTest, LongerWaitCostsMoreEnergy) {
  MobileDevice phone;
  const double fast = phone.request_energy_from_latency(1.0, 1000, 1000, 10000);
  const double slow = phone.request_energy_from_latency(30.0, 1000, 1000, 10000);
  EXPECT_GT(slow, fast);
}

TEST(MobileDeviceTest, PhasesBoundedByLatency) {
  MobileDevice phone;
  // tx time alone (10 s) exceeds the observed latency (1 s): phases clamp.
  const double e = phone.request_energy_from_latency(1.0, 100000, 0, 10000);
  EXPECT_NEAR(e, phone.tx_power_w * 1.0 + phone.base_power_w * 1.0, 1e-9);
}

// ------------------------------------------------------------ LoadBalancer --

struct ClusterWorld {
  netsim::Network net{3};
  std::vector<std::unique_ptr<runtime::Node>> nodes;
  runtime::Node cloud;

  ClusterWorld(int n) : cloud(net.clock(), spec("cloud")) {
    cloud.host(std::make_unique<runtime::ServiceRuntime>(kServer));
    net.connect("client", "cloud", netsim::LinkConfig::limited_wan());
    for (int i = 0; i < n; ++i) {
      const std::string name = "edge" + std::to_string(i);
      auto node = std::make_unique<runtime::Node>(net.clock(), spec(name));
      node->host(std::make_unique<runtime::ServiceRuntime>(kServer));
      net.connect("client", name, netsim::LinkConfig::lan());
      nodes.push_back(std::move(node));
    }
  }
  std::vector<runtime::Node*> ptrs() {
    std::vector<runtime::Node*> out;
    for (auto& n : nodes) out.push_back(n.get());
    return out;
  }
};

TEST(LoadBalancerTest, PicksLeastConnections) {
  ClusterWorld w(3);
  LoadBalancer lb(w.ptrs());
  // Load node0 with work.
  w.nodes[0]->execute(work(1000), [](runtime::ExecutionResult) {});
  runtime::Node* picked = lb.pick();
  EXPECT_NE(picked, w.nodes[0].get());
  w.net.clock().run();
}

TEST(LoadBalancerTest, SkipsParkedNodes) {
  ClusterWorld w(2);
  LoadBalancer lb(w.ptrs());
  w.nodes[0]->set_power_state(runtime::PowerState::kLowPower);
  EXPECT_EQ(lb.pick(), w.nodes[1].get());
  EXPECT_EQ(lb.active_node_count(), 1u);
  w.nodes[1]->set_power_state(runtime::PowerState::kLowPower);
  EXPECT_EQ(lb.pick(), nullptr);
}

TEST(LoadBalancerTest, CountsConnections) {
  ClusterWorld w(2);
  LoadBalancer lb(w.ptrs());
  w.nodes[0]->execute(work(10), [](runtime::ExecutionResult) {});
  w.nodes[1]->execute(work(10), [](runtime::ExecutionResult) {});
  EXPECT_EQ(lb.total_active_connections(), 2u);
  w.net.clock().run();
  EXPECT_EQ(lb.total_active_connections(), 0u);
}

// ---------------------------------------------------------- ClusterGateway --

TEST(ClusterGatewayTest, ServesAtEdgeAndBalances) {
  ClusterWorld w(2);
  LoadBalancer lb(w.ptrs());
  ClusterGateway gw(w.net, "client", lb, w.cloud, {{http::Verb::kPost, "/work"}});
  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    gw.request(work(500), [&](http::HttpResponse resp, double) {
      EXPECT_TRUE(resp.ok());
      ++completed;
    });
  }
  w.net.clock().run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(gw.stats().served_at_edge, 6u);
  // Both nodes did work (balanced).
  EXPECT_GT(w.nodes[0]->requests_completed(), 0u);
  EXPECT_GT(w.nodes[1]->requests_completed(), 0u);
}

TEST(ClusterGatewayTest, FallsBackToCloudWhenAllParked) {
  ClusterWorld w(1);
  LoadBalancer lb(w.ptrs());
  ClusterGateway gw(w.net, "client", lb, w.cloud, {{http::Verb::kPost, "/work"}});
  w.nodes[0]->set_power_state(runtime::PowerState::kLowPower);
  bool done = false;
  gw.request(work(10), [&](http::HttpResponse resp, double) {
    EXPECT_TRUE(resp.ok());
    done = true;
  });
  w.net.clock().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(gw.stats().forwarded_to_cloud, 1u);
}

TEST(ClusterGatewayTest, UnknownRouteGoesToCloud) {
  ClusterWorld w(1);
  LoadBalancer lb(w.ptrs());
  ClusterGateway gw(w.net, "client", lb, w.cloud, {});
  gw.request(work(10), [&](http::HttpResponse resp, double) { EXPECT_TRUE(resp.ok()); });
  w.net.clock().run();
  EXPECT_EQ(gw.stats().forwarded_to_cloud, 1u);
  EXPECT_EQ(gw.stats().served_at_edge, 0u);
}

// -------------------------------------------------------------- AutoScaler --

TEST(AutoScalerTest, ScalesUpUnderLoad) {
  ClusterWorld w(4);
  LoadBalancer lb(w.ptrs());
  AutoScalerPolicy policy;
  policy.connections_per_node = 2;
  policy.smoothing = 1.0;  // react instantly for the test
  AutoScaler scaler(lb, policy);
  // Park everyone but node0.
  for (int i = 1; i < 4; ++i) w.nodes[i]->set_power_state(runtime::PowerState::kLowPower);

  for (int i = 0; i < 8; ++i) w.nodes[0]->execute(work(500), [](runtime::ExecutionResult) {});
  scaler.evaluate();
  EXPECT_EQ(scaler.target_active(), 4);
  EXPECT_EQ(lb.active_node_count(), 4u);
  EXPECT_GT(scaler.scale_up_events(), 0);
  w.net.clock().run();
}

TEST(AutoScalerTest, ParksIdleNodesDownToMinimum) {
  ClusterWorld w(4);
  LoadBalancer lb(w.ptrs());
  AutoScalerPolicy policy;
  policy.connections_per_node = 2;
  policy.min_active = 1;
  policy.smoothing = 1.0;
  AutoScaler scaler(lb, policy);
  scaler.evaluate();  // zero connections -> park to min
  EXPECT_EQ(scaler.target_active(), 1);
  EXPECT_EQ(lb.active_node_count(), 1u);
  EXPECT_EQ(scaler.scale_down_events(), 3);
}

TEST(AutoScalerTest, NeverParksBusyNodes) {
  ClusterWorld w(2);
  LoadBalancer lb(w.ptrs());
  AutoScalerPolicy policy;
  policy.connections_per_node = 100;  // wants to scale down
  policy.smoothing = 1.0;
  AutoScaler scaler(lb, policy);
  w.nodes[1]->execute(work(1000), [](runtime::ExecutionResult) {});
  scaler.evaluate();
  // node1 is busy: must stay active despite the scale-down target.
  EXPECT_EQ(w.nodes[1]->power_state(), runtime::PowerState::kActive);
  w.net.clock().run();
}

// ------------------------------------------------------------- EnergyMeter --

TEST(EnergyMeterTest, ParkingSavesEnergyVersusAlwaysActive) {
  ClusterWorld w(2);
  // node1 parked the whole window.
  w.nodes[1]->set_power_state(runtime::PowerState::kLowPower);
  w.net.clock().schedule(100.0, [] {});
  w.net.clock().run();
  EnergyMeter meter(w.ptrs());
  EXPECT_GT(meter.always_active_energy_j(), meter.total_energy_j());
  EXPECT_GT(meter.savings_fraction(), 0.0);
  EXPECT_NEAR(meter.total_low_power_seconds(), 100.0, 1e-6);
}

TEST(EnergyMeterTest, NoSavingsWhenAllActive) {
  ClusterWorld w(2);
  w.net.clock().schedule(50.0, [] {});
  w.net.clock().run();
  EnergyMeter meter(w.ptrs());
  EXPECT_NEAR(meter.savings_fraction(), 0.0, 1e-9);
}

}  // namespace
}  // namespace edgstr::cluster
