// Replication plane: ReplicationGraph topologies, batched wire encoding,
// op-log compaction horizons, and sync metrics.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "edgstr/deployment.h"
#include "edgstr/pipeline.h"
#include "runtime/batch_budget.h"
#include "runtime/replication_graph.h"
#include "runtime/sync_engine.h"

namespace edgstr::core {
namespace {

const char* kCounterServer = R"JS(
var count = 0;
db.query("CREATE TABLE events (n)");
app.post("/bump", function (req, res) {
  count = count + req.params.by;
  db.query("INSERT INTO events (n) VALUES (?)", [count]);
  res.send({ count: count });
});
app.get("/read", function (req, res) {
  res.send({ count: count });
});
)JS";

http::HttpRequest bump(double by) {
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/bump";
  req.params = json::Value::object({{"by", by}});
  return req;
}

// A bare replication world: N replica services on a shared network, all
// registered in one graph, with topology left to the test.
struct GraphWorld {
  netsim::Network net{7};
  runtime::ReplicationGraph graph{net};
  std::vector<std::unique_ptr<runtime::ServiceRuntime>> services;
  std::vector<std::shared_ptr<runtime::ReplicaState>> states;

  explicit GraphWorld(std::size_t n) {
    services.push_back(std::make_unique<runtime::ServiceRuntime>(kCounterServer));
    states.push_back(std::make_shared<runtime::ReplicaState>(
        host(0), services[0].get(), std::set<std::string>{}, std::set<std::string>{"*"}));
    const trace::Snapshot snap = services[0]->capture_state();
    states[0]->attach_existing();
    graph.add_endpoint(states[0]);
    for (std::size_t i = 1; i < n; ++i) {
      services.push_back(std::make_unique<runtime::ServiceRuntime>(kCounterServer));
      states.push_back(std::make_shared<runtime::ReplicaState>(
          host(i), services[i].get(), std::set<std::string>{}, std::set<std::string>{"*"}));
      states[i]->initialize_from_snapshot(snap);
      graph.add_endpoint(states[i]);
    }
  }

  static std::string host(std::size_t i) { return "r" + std::to_string(i); }

  void connect(std::size_t a, std::size_t b, const netsim::LinkConfig& cfg) {
    net.connect(host(a), host(b), cfg);
  }
  void link(std::size_t a, std::size_t b) { graph.add_link(host(a), host(b)); }

  int rounds_to_converge(int max_rounds = 16) {
    for (int round = 1; round <= max_rounds; ++round) {
      graph.tick_round();
      net.clock().run();
      if (graph.converged()) return round;
    }
    return -1;
  }
};

// ------------------------------------------------------ graph construction --

TEST(ReplicationGraphTest, RejectsBadLinks) {
  GraphWorld w(2);
  w.connect(0, 1, netsim::LinkConfig::lan());
  w.link(0, 1);
  EXPECT_THROW(w.link(0, 0), std::invalid_argument);            // self link
  EXPECT_THROW(w.link(0, 1), std::invalid_argument);            // duplicate
  EXPECT_THROW(w.link(1, 0), std::invalid_argument);            // duplicate, reversed
  EXPECT_THROW(w.graph.add_link("r0", "nope"), std::invalid_argument);
  EXPECT_EQ(w.graph.link_count(), 1u);
}

TEST(ReplicationGraphTest, DuplicateEndpointRejected) {
  GraphWorld w(1);
  EXPECT_THROW(w.graph.add_endpoint(w.states[0]), std::invalid_argument);
}

// ------------------------------------------------------------------- mesh --

// Satellite: a 4-edge full mesh must converge even with the cloud link cut
// (the edges gossip among themselves; no path goes through r0).
TEST(ReplicationGraphTest, FullMeshConvergesWithCloudLinkCut) {
  GraphWorld w(5);  // r0 = cloud, r1..r4 = edges
  const netsim::LinkConfig lan = netsim::LinkConfig::lan();
  netsim::LinkConfig dead = netsim::LinkConfig::limited_wan();
  dead.loss_probability = 1.0;

  for (std::size_t e = 1; e <= 4; ++e) {
    w.connect(0, e, dead);  // cloud uplinks: 100% loss
    w.link(0, e);
  }
  for (std::size_t a = 1; a <= 4; ++a) {
    for (std::size_t b = a + 1; b <= 4; ++b) {
      w.connect(a, b, lan);
      w.link(a, b);
    }
  }
  EXPECT_EQ(w.graph.link_count(), 4u + 6u);

  for (std::size_t e = 1; e <= 4; ++e) w.services[e]->handle(bump(double(e)));

  // Whole-graph convergence is impossible (cloud is unreachable)...
  EXPECT_EQ(w.rounds_to_converge(4), -1);
  // ...but the island of edges agrees with itself.
  for (std::size_t e = 2; e <= 4; ++e) {
    EXPECT_TRUE(w.states[e]->converged_with(*w.states[1])) << "edge " << e;
  }
  EXPECT_FALSE(w.states[0]->converged_with(*w.states[1]));

  // Heal the uplinks: everything converges, cloud included.
  for (std::size_t e = 1; e <= 4; ++e) w.connect(0, e, netsim::LinkConfig::limited_wan());
  EXPECT_GE(w.rounds_to_converge(8), 1);
  // The LWW global holds one winner (all stamps tie; "r4" wins the replica
  // tie-break), while the OR-set table keeps every edge's inserted row.
  http::HttpRequest read;
  read.path = "/read";
  EXPECT_DOUBLE_EQ(w.services[0]->handle(read).response.body["count"].as_number(), 4.0);
  EXPECT_EQ(w.services[0]->database().execute("SELECT * FROM events").rows.size(), 4u);
}

// -------------------------------------------------------------- hierarchy --

// Satellite: two-level tree — cloud -> 2 regionals -> 4 edges. Edge writes
// must reach every replica through two relay hops in bounded rounds.
TEST(ReplicationGraphTest, TwoLevelHierarchyConvergesBounded) {
  GraphWorld w(7);  // r0 cloud, r1/r2 regionals, r3..r6 edges
  const netsim::LinkConfig wan = netsim::LinkConfig::limited_wan();
  const netsim::LinkConfig lan = netsim::LinkConfig::lan();
  for (std::size_t reg = 1; reg <= 2; ++reg) {
    w.connect(0, reg, wan);
    w.link(0, reg);
  }
  // regional r1 serves edges r3, r4; regional r2 serves r5, r6.
  const std::size_t parent[] = {0, 0, 0, 1, 1, 2, 2};
  for (std::size_t e = 3; e <= 6; ++e) {
    w.connect(parent[e], e, lan);
    w.link(parent[e], e);
  }

  for (std::size_t e = 3; e <= 6; ++e) w.services[e]->handle(bump(double(e)));

  // Each hop takes one round: edge->regional, regional->cloud,
  // cloud->other regional, regional->other edges. 2 * depth is the bound.
  const int rounds = w.rounds_to_converge(8);
  ASSERT_GE(rounds, 1);
  EXPECT_LE(rounds, 4);
  // LWW winner is "r6" (stamp tie, replica tie-break); all four inserted
  // rows survive the merge.
  http::HttpRequest read;
  read.path = "/read";
  EXPECT_DOUBLE_EQ(w.services[0]->handle(read).response.body["count"].as_number(), 6.0);
  EXPECT_EQ(w.services[0]->database().execute("SELECT * FROM events").rows.size(), 4u);
}

// The deployment builder wires the same hierarchy from a config.
TEST(ReplicationGraphTest, DeploymentBuildsHierarchyTopology) {
  const apps::SubjectApp& app = apps::sensor_hub();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok) << result.error;

  DeploymentConfig config;
  config.start_sync = false;
  config.topology = SyncTopology::kHierarchy;
  config.hierarchy_fanout = 2;
  config.edge_devices.assign(4, cluster::DeviceProfile::rpi4());
  ThreeTierDeployment three(result, config);

  EXPECT_EQ(three.regional_count(), 2u);
  // cloud + 4 edges + 2 regionals; links: cloud-regional x2, regional-edge x4.
  EXPECT_EQ(three.replication().endpoint_count(), 7u);
  EXPECT_EQ(three.replication().link_count(), 6u);

  http::HttpRequest ingest;
  ingest.verb = http::Verb::kPost;
  ingest.path = "/ingest";
  ingest.params = json::Value::object(
      {{"sensor", "s"}, {"values", json::Value::array({json::Value(1.0)})}});
  three.request_sync(ingest, 0);
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());
  EXPECT_TRUE(three.regional_state(0).converged_with(three.cloud_state()));
  EXPECT_TRUE(three.regional_state(1).converged_with(three.cloud_state()));
}

// And the star+mesh variant keeps the star links plus all edge pairs.
TEST(ReplicationGraphTest, DeploymentBuildsEdgeMeshTopology) {
  const apps::SubjectApp& app = apps::sensor_hub();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok) << result.error;

  DeploymentConfig config;
  config.start_sync = false;
  config.topology = SyncTopology::kStarEdgeMesh;
  config.edge_devices.assign(3, cluster::DeviceProfile::rpi4());
  ThreeTierDeployment three(result, config);

  EXPECT_EQ(three.replication().endpoint_count(), 4u);
  EXPECT_EQ(three.replication().link_count(), 3u + 3u);  // star + C(3,2) mesh
  EXPECT_TRUE(three.network().connected(edge_host(0), edge_host(2)));
}

// --------------------------------------------------- compaction horizons --

TEST(OpLogCompactionTest, FloorTracksCompactedPrefix) {
  crdt::OpLog log("a");
  for (int i = 0; i < 6; ++i) log.record(log.make_local(json::Value(double(i))));
  EXPECT_TRUE(log.compact_floor().empty());
  EXPECT_EQ(log.compact({{"a", 4}}), 4u);
  EXPECT_EQ(log.compact_floor().at("a"), 4u);
  EXPECT_EQ(log.size(), 2u);
  // Compacting against an older ack is a no-op; the floor never regresses.
  EXPECT_EQ(log.compact({{"a", 2}}), 0u);
  EXPECT_EQ(log.compact_floor().at("a"), 4u);
}

TEST(OpLogCompactionTest, CanServeRespectsFloor) {
  crdt::OpLog log("a");
  for (int i = 0; i < 6; ++i) log.record(log.make_local(json::Value(double(i))));
  log.compact({{"a", 4}});
  EXPECT_TRUE(log.can_serve({{"a", 4}}));   // exactly at the floor
  EXPECT_TRUE(log.can_serve({{"a", 5}}));   // ahead of the floor
  EXPECT_FALSE(log.can_serve({{"a", 3}}));  // behind: ops 4.. exist, 1-3 gone
  EXPECT_FALSE(log.can_serve({}));          // brand-new peer needs a snapshot
}

// A peer behind the compaction floor must be refused outright — serving it
// the surviving suffix would silently skip the compacted ops.
TEST(OpLogCompactionTest, PeerBehindFloorIsRefusedNotServedPartialDelta) {
  GraphWorld w(2);
  w.connect(0, 1, netsim::LinkConfig::lan());
  w.link(0, 1);
  for (int i = 0; i < 4; ++i) w.services[0]->handle(bump(1));
  // The pull direction alternates per round, so the serving round for
  // this direction may be the second one.
  ASSERT_LE(w.rounds_to_converge(), 2);

  // r1 acked everything; compact r0's logs down to the floor.
  const crdt::DocVersions acked = w.states[1]->versions();
  EXPECT_GT(w.states[0]->compact(acked), 0u);

  // A fresh peer (empty version vector) is behind the floor.
  EXPECT_THROW(w.states[0]->collect_changes({}), std::runtime_error);
  // The up-to-date peer is still served fine.
  EXPECT_NO_THROW(w.states[0]->collect_changes(acked));
}

TEST(OpLogCompactionTest, GraphCompactionUsesDirectNeighborAcks) {
  GraphWorld w(3);  // chain: r0 - r1 - r2
  w.connect(0, 1, netsim::LinkConfig::lan());
  w.connect(1, 2, netsim::LinkConfig::lan());
  w.link(0, 1);
  w.link(1, 2);
  w.services[0]->handle(bump(5));
  ASSERT_GE(w.rounds_to_converge(), 1);
  // One more settled round so acks propagate back to every sender.
  w.graph.tick_round();
  w.net.clock().run();

  const std::size_t before =
      w.states[0]->total_op_count() + w.states[1]->total_op_count() + w.states[2]->total_op_count();
  EXPECT_GT(before, 0u);
  EXPECT_GT(w.graph.compact_logs(), 0u);
  const std::size_t after =
      w.states[0]->total_op_count() + w.states[1]->total_op_count() + w.states[2]->total_op_count();
  EXPECT_LT(after, before);
  // Compaction must not disturb convergence or future syncs.
  w.services[2]->handle(bump(3));
  EXPECT_GE(w.rounds_to_converge(), 1);
}

// ------------------------------------------------------------ wire format --

TEST(WireFormatTest, BatchedEncodingRoundTrips) {
  crdt::OpLog log("edge0");
  for (int i = 0; i < 8; ++i) {
    log.record(log.make_local(json::Value::object(
        {{"k", "row" + std::to_string(i)}, {"v", double(i)}})));
  }
  crdt::SyncMessage msg;
  msg.from = "edge0";
  msg.versions["tables"] = log.version();
  msg.ops["tables"] = log.changes_since({});

  const json::Value wire = crdt::encode_message(msg);
  const crdt::SyncMessage back = crdt::decode_message(wire);
  EXPECT_EQ(back.from, msg.from);
  EXPECT_EQ(back.versions, msg.versions);
  ASSERT_EQ(back.ops.at("tables").size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const crdt::Op& a = msg.ops.at("tables")[i];
    const crdt::Op& b = back.ops.at("tables")[i];
    EXPECT_EQ(a.origin, b.origin);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_TRUE(a.stamp == b.stamp);
    EXPECT_EQ(a.payload.dump(), b.payload.dump());
  }
}

TEST(WireFormatTest, RoundTripsMultiOriginRunsAndForeignStamps) {
  // Ops relayed by a middle hop: two origins interleaved, plus one op whose
  // stamp replica differs from its origin (the "r" fallback path).
  crdt::SyncMessage msg;
  msg.from = "relay";
  crdt::Op odd;
  odd.origin = "a";
  odd.seq = 1;
  odd.stamp = {9, "weird"};
  odd.payload = json::Value("x");
  msg.ops["tables"].push_back(odd);
  crdt::Op b1;
  b1.origin = "b";
  b1.seq = 5;
  b1.stamp = {11, "b"};
  b1.payload = json::Value("y");
  msg.ops["tables"].push_back(b1);
  msg.versions["tables"] = {{"a", 1}, {"b", 5}};

  const crdt::SyncMessage back = crdt::decode_message(crdt::encode_message(msg));
  ASSERT_EQ(back.ops.at("tables").size(), 2u);
  EXPECT_TRUE(back.ops.at("tables")[0].stamp == (crdt::Stamp{9, "weird"}));
  EXPECT_TRUE(back.ops.at("tables")[1].stamp == (crdt::Stamp{11, "b"}));
  EXPECT_EQ(back.ops.at("tables")[1].seq, 5u);
}

TEST(WireFormatTest, BatchedBeatsPerOpByTwentyPercent) {
  crdt::OpLog log("edge0");
  for (int i = 0; i < 32; ++i) {
    log.record(log.make_local(json::Value::object(
        {{"t", "readings"}, {"k", "sensor-" + std::to_string(i % 4)}, {"v", double(i)}})));
  }
  crdt::SyncMessage msg;
  msg.from = "edge0";
  msg.versions["tables"] = log.version();
  msg.ops["tables"] = log.changes_since({});

  const std::uint64_t batched = crdt::encode_message(msg).wire_size();
  const std::uint64_t per_op = crdt::encode_message_per_op(msg).wire_size();
  EXPECT_LT(batched, per_op);
  EXPECT_LE(double(batched), 0.8 * double(per_op))
      << "batched=" << batched << " per_op=" << per_op;
}

TEST(WireFormatTest, OpWireSizeIsCachedAndStable) {
  crdt::OpLog log("e");
  const crdt::Op op = log.make_local(json::Value::object({{"k", "v"}}));
  const std::uint64_t first = op.wire_size();
  EXPECT_EQ(first, op.to_json().wire_size());
  EXPECT_EQ(op.wire_size(), first);  // cached path (asserts internally)
}

// ---------------------------------------------------------------- metrics --

TEST(SyncMetricsTest, PerDocAndPerEndpointCountersAccumulate) {
  GraphWorld w(2);
  w.connect(0, 1, netsim::LinkConfig::lan());
  w.link(0, 1);
  w.services[1]->handle(bump(4));
  ASSERT_EQ(w.rounds_to_converge(), 1);

  util::MetricsRegistry& m = w.graph.metrics();
  EXPECT_GE(m.value("sync.rounds"), 1.0);
  EXPECT_GE(m.value("sync.messages"), 2.0);  // both directions
  EXPECT_GT(m.value("sync.bytes.wire"), 0.0);
  // The wire total splits by kind; digests ride alongside the op payloads.
  EXPECT_GT(m.value("sync.bytes.wire.ops"), 0.0);
  EXPECT_GT(m.value("sync.bytes.wire.digest"), 0.0);
  // The per-op-equivalent accounting must exceed the batched wire bytes
  // for the op-bearing messages it models (digest overhead is separate).
  EXPECT_GT(m.value("sync.bytes.per_op_equiv"), m.value("sync.bytes.wire.ops"));
  // r1 executed the write, so its shipped-op counters are non-zero.
  EXPECT_GT(m.sum("sync.ops_shipped.r1."), 0.0);
  EXPECT_GT(m.sum("sync.bytes.doc."), 0.0);

  w.graph.reset_traffic_stats();
  EXPECT_EQ(m.value("sync.bytes.wire"), 0.0);
  EXPECT_EQ(m.value("sync.messages"), 0.0);
  EXPECT_GE(m.value("sync.rounds"), 1.0);  // rounds survive a traffic reset
}

// ---------------------------------------------------- digest anti-entropy --

TEST(DigestSyncTest, QuiescentRoundsAreAllDigestHits) {
  GraphWorld w(2);
  w.connect(0, 1, netsim::LinkConfig::lan());
  w.link(0, 1);
  w.services[1]->handle(bump(2));
  ASSERT_GE(w.rounds_to_converge(), 1);

  util::MetricsRegistry& m = w.graph.metrics();
  EXPECT_GT(m.value("sync.digest.miss"), 0.0);  // the write had to ship

  // Converged and quiet: every further digest is a hit, and not one op
  // byte moves — the whole point of asking before pushing.
  const double ops_bytes = m.value("sync.bytes.wire.ops");
  const double hits = m.value("sync.digest.hit");
  for (int i = 0; i < 3; ++i) {
    w.graph.tick_round();
    w.net.clock().run();
  }
  EXPECT_EQ(m.value("sync.bytes.wire.ops"), ops_bytes);
  // One digest per link per round (the pull direction alternates).
  EXPECT_GE(m.value("sync.digest.hit"), hits + 3.0);
}

TEST(DigestSyncTest, MeshDigestsReportAvoidedRetransmission) {
  GraphWorld w(4);
  const netsim::LinkConfig lan = netsim::LinkConfig::lan();
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      w.connect(a, b, lan);
      w.link(a, b);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) w.services[i]->handle(bump(double(i + 1)));
  ASSERT_GE(w.rounds_to_converge(), 1);

  // Next round every ack floor is one round stale (it predates the ops
  // that arrived via the other five links), so the push baseline would
  // resend cross-path deliveries. The digests prove them present instead.
  w.graph.tick_round();
  w.net.clock().run();
  util::MetricsRegistry& m = w.graph.metrics();
  EXPECT_GT(m.value("sync.redundant_ops_avoided"), 0.0);
  EXPECT_GT(m.value("sync.digest.hit"), 0.0);
  EXPECT_GT(m.value("sync.digest.miss"), 0.0);
}

// A/B the protocols on the same quiescent mesh round: push re-sends from
// stale ack floors, digest sync ships nothing.
TEST(DigestSyncTest, DigestBeatsPushOnMeshOpBytes) {
  const auto mesh_op_bytes = [](bool digest) {
    GraphWorld w(4);
    w.graph.set_digest_sync(digest);
    const netsim::LinkConfig lan = netsim::LinkConfig::lan();
    for (std::size_t a = 0; a < 4; ++a) {
      for (std::size_t b = a + 1; b < 4; ++b) {
        w.connect(a, b, lan);
        w.link(a, b);
      }
    }
    for (std::size_t i = 0; i < 4; ++i) w.services[i]->handle(bump(double(i + 1)));
    EXPECT_GE(w.rounds_to_converge(), 1);
    w.graph.tick_round();
    w.net.clock().run();
    return w.graph.metrics().value("sync.bytes.wire.ops");
  };
  EXPECT_LT(mesh_op_bytes(true), mesh_op_bytes(false));
}

TEST(DigestSyncTest, ForcedTinyBudgetSplitsDeltaAcrossRounds) {
  GraphWorld w(2);
  w.connect(0, 1, netsim::LinkConfig::lan());
  runtime::SyncLink& link = w.graph.add_link("r0", "r1");
  // Pin r1's replies (it serves r0's digests) to the smallest rung so the
  // backlog must travel as resumable truncated prefixes.
  link.budget_from("r1").force_budget(runtime::BatchBudget::ladder().front());
  for (int i = 0; i < 60; ++i) w.services[1]->handle(bump(1));

  ASSERT_GE(w.rounds_to_converge(32), 2);
  util::MetricsRegistry& m = w.graph.metrics();
  EXPECT_GT(m.value("sync.batch.splits"), 0.0);

  // The resumed prefixes reassemble the exact backlog.
  http::HttpRequest read;
  read.path = "/read";
  EXPECT_DOUBLE_EQ(w.services[0]->handle(read).response.body["count"].as_number(), 60.0);
  EXPECT_EQ(w.services[0]->database().execute("SELECT * FROM events").rows.size(), 60u);
}

// ----------------------------------------------------------- batch budget --

TEST(BatchBudgetTest, CleanRoundsClimbTheLadder) {
  runtime::BatchBudget b(0);
  double t = 0;
  for (int round = 0; round < 3; ++round) {
    b.on_send(t);
    b.on_delivery(t + 0.01);
    t += 1.0;
    EXPECT_EQ(b.begin_round(t), 0u);
  }
  EXPECT_EQ(b.index(), 3u);
}

TEST(BatchBudgetTest, LossDropsTwoRungsAndIsCounted) {
  runtime::BatchBudget b(5);
  b.on_send(0.0);  // never delivered
  EXPECT_EQ(b.begin_round(100.0), 1u);
  EXPECT_EQ(b.index(), 3u);
  EXPECT_EQ(b.total_losses(), 1u);
}

TEST(BatchBudgetTest, LatencySpikeDropsOneRung) {
  runtime::BatchBudget b(5);
  double t = 0;
  for (int i = 0; i < 4; ++i) {  // settle the EWMA around 10ms
    b.on_send(t);
    b.on_delivery(t + 0.01);
    t += 1.0;
    b.begin_round(t);
  }
  const std::size_t before = b.index();
  b.on_send(t);
  b.on_delivery(t + 0.5);  // 50x the observed baseline
  b.begin_round(t + 1.0);
  EXPECT_EQ(b.index(), before - 1);
}

TEST(BatchBudgetTest, ForceBudgetPinsTheLadderAgainstIncrease) {
  runtime::BatchBudget b;
  b.force_budget(1024);
  EXPECT_EQ(b.budget(), 1024u);
  double t = 0;
  for (int round = 0; round < 5; ++round) {
    b.on_send(t);
    b.on_delivery(t + 0.01);
    t += 1.0;
    b.begin_round(t);
  }
  EXPECT_EQ(b.budget(), 1024u);  // clean rounds cannot climb past the pin
}

TEST(SyncMetricsTest, ConvergenceLagTracksDivergedEndpoints) {
  GraphWorld w(2);
  netsim::LinkConfig dead = netsim::LinkConfig::lan();
  dead.loss_probability = 1.0;
  w.connect(0, 1, dead);
  w.link(0, 1);
  w.services[1]->handle(bump(1));
  for (int i = 0; i < 3; ++i) {
    w.graph.tick_round();
    w.net.clock().run();
    w.graph.update_convergence_lag();
  }
  EXPECT_GE(w.graph.metrics().value("sync.lag_rounds.r1"), 3.0);

  w.connect(0, 1, netsim::LinkConfig::lan());
  // Up to two healed rounds: the digest's pull direction alternates, so
  // the round that ships r1's write may be the second one.
  for (int i = 0; i < 2; ++i) {
    w.graph.tick_round();
    w.net.clock().run();
    w.graph.update_convergence_lag();
  }
  EXPECT_EQ(w.graph.metrics().value("sync.lag_rounds.r1"), 0.0);
}

}  // namespace
}  // namespace edgstr::core
