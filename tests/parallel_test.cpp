// Sharded-runtime parallelism: mailbox backpressure, lane-scheduler
// determinism, byte-identical same-seed runs, lane-count-invariant
// converged state, and per-doc ordering under concurrent CRDT apply.
//
// These tests are the executable form of the determinism argument in
// src/runtime/sharded_runtime.h: same seed + same lane count must be
// byte-identical; same seed + different lane count must converge to the
// identical CRDT state. They are also the TSan targets for the parallel
// sections (label: parallel).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/lane_scheduler.h"
#include "runtime/mailbox.h"
#include "runtime/replication_graph.h"
#include "runtime/sharded_runtime.h"
#include "sim/schedule.h"
#include "sqldb/parser.h"
#include "util/metrics.h"

namespace edgstr {
namespace {

// ------------------------------------------------------------------ mailbox --

TEST(MailboxTest, FifoWithBoundedCapacity) {
  runtime::Mailbox<int> box(3);
  EXPECT_EQ(box.capacity(), 3u);
  EXPECT_TRUE(box.try_push(1));
  EXPECT_TRUE(box.try_push(2));
  EXPECT_TRUE(box.try_push(3));
  EXPECT_FALSE(box.try_push(4));  // full: non-blocking push refuses
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.high_water(), 3u);

  int v = 0;
  EXPECT_TRUE(box.try_pop(&v));
  EXPECT_EQ(v, 1);  // FIFO
  EXPECT_TRUE(box.try_push(4));
  EXPECT_TRUE(box.try_pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(box.try_pop(&v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(box.try_pop(&v));
  EXPECT_EQ(v, 4);
  EXPECT_FALSE(box.try_pop(&v));
  EXPECT_EQ(box.pushed(), 4u);
}

// Backpressure contract: a producer that outruns the consumer blocks on
// push() instead of dropping or deadlocking, and every item still arrives
// in order.
TEST(MailboxTest, BlockingPushYieldsUntilConsumerDrains) {
  constexpr int kItems = 500;
  runtime::Mailbox<int> box(4);  // far smaller than the item count

  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    int v = 0;
    while (box.pop(&v)) received.push_back(v);
  });

  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(box.push(i));  // blocks when full; never fails while open
  }
  box.close();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
  EXPECT_LE(box.high_water(), 4u);  // the bound really bounded the queue
  EXPECT_EQ(box.pushed(), static_cast<std::uint64_t>(kItems));
}

TEST(MailboxTest, CloseDrainsPendingThenStops) {
  runtime::Mailbox<int> box(8);
  EXPECT_TRUE(box.push(7));
  EXPECT_TRUE(box.push(8));
  box.close();
  EXPECT_FALSE(box.push(9));      // closed: push refuses
  EXPECT_FALSE(box.try_push(9));
  int v = 0;
  EXPECT_TRUE(box.pop(&v));  // pending items survive close
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(box.pop(&v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(box.pop(&v));  // closed + drained
}

// ------------------------------------------------------------- lane scheduler --

TEST(LaneSchedulerTest, LaneAssignmentIsPureFunctionOfSeedAndKey) {
  runtime::LaneScheduler a(4, /*seed=*/11);
  runtime::LaneScheduler b(4, /*seed=*/11);
  runtime::LaneScheduler c(4, /*seed=*/12);

  bool seed_changes_some_assignment = false;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "replica" + std::to_string(i);
    const std::size_t lane = a.lane_for(key);
    EXPECT_LT(lane, 4u);
    EXPECT_EQ(lane, a.lane_for(key));  // stable within a scheduler
    EXPECT_EQ(lane, b.lane_for(key));  // and across same-seed schedulers
    if (c.lane_for(key) != lane) seed_changes_some_assignment = true;
  }
  EXPECT_TRUE(seed_changes_some_assignment);  // the seed actually salts
}

TEST(LaneSchedulerTest, MergeOrderIsSeedDerivedPermutation) {
  runtime::LaneScheduler a(8, 5);
  runtime::LaneScheduler b(8, 5);
  EXPECT_EQ(a.merge_order(), b.merge_order());
  EXPECT_EQ(a.merge_order().size(), 8u);
  std::set<std::size_t> seen(a.merge_order().begin(), a.merge_order().end());
  EXPECT_EQ(seen.size(), 8u);  // permutation of [0, 8)
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 7u);

  bool any_differs = false;
  for (std::uint64_t seed = 1; seed <= 16 && !any_differs; ++seed) {
    any_differs = runtime::LaneScheduler(8, seed).merge_order() != a.merge_order();
  }
  EXPECT_TRUE(any_differs);  // order is seed-derived, not fixed
}

TEST(LaneSchedulerTest, SingleLaneRunsInlineOnCaller) {
  runtime::LaneScheduler sched(1, 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  bool ran_before_submit_returned = false;
  sched.submit(0, [&] {
    ran_on = std::this_thread::get_id();
    ran_before_submit_returned = true;
  });
  EXPECT_TRUE(ran_before_submit_returned);  // inline: done before return
  EXPECT_EQ(ran_on, caller);
  sched.barrier();  // no-op, must not hang
  EXPECT_EQ(sched.executed(0), 1u);
}

TEST(LaneSchedulerTest, BarrierWaitsForEveryTask) {
  runtime::LaneScheduler sched(4, 1);
  std::atomic<int> done{0};
  constexpr int kTasks = 256;
  for (int i = 0; i < kTasks; ++i) {
    sched.submit(static_cast<std::size_t>(i) % 4, [&done] {
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  sched.barrier();
  EXPECT_EQ(done.load(), kTasks);
  std::uint64_t executed = 0;
  for (std::size_t l = 0; l < 4; ++l) executed += sched.executed(l);
  EXPECT_EQ(executed, static_cast<std::uint64_t>(kTasks));
}

TEST(LaneSchedulerTest, ScratchMergesInMergeOrderAndResets) {
  runtime::LaneScheduler sched(4, 3);
  for (std::size_t l = 0; l < 4; ++l) {
    sched.submit(l, [&sched, l] {
      sched.lane_scratch(l).add("work.items", double(l + 1));
      sched.lane_scratch(l).observe("work.cost", double(l));
    });
  }
  sched.barrier();
  util::MetricsRegistry total;
  sched.merge_scratch_into(total);
  EXPECT_DOUBLE_EQ(total.value("work.items"), 1 + 2 + 3 + 4);
  ASSERT_NE(total.histogram("work.cost"), nullptr);
  EXPECT_EQ(total.histogram("work.cost")->count(), 4u);
  // Scratch is cleared by the fold.
  util::MetricsRegistry again;
  sched.merge_scratch_into(again);
  EXPECT_EQ(again.size(), 0u);
}

// -------------------------------------------------------------- metrics merge --

TEST(MetricsMergeTest, CountersAddHistogramsMergeOrCopy) {
  util::MetricsRegistry a, b;
  a.add("x", 2);
  b.add("x", 3);
  b.add("y", 1);
  a.observe("h.shared", 1.0);
  b.observe("h.shared", 2.0);
  b.observe("h.only_b", 5.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("x"), 5.0);
  EXPECT_DOUBLE_EQ(a.value("y"), 1.0);
  ASSERT_NE(a.histogram("h.shared"), nullptr);
  EXPECT_EQ(a.histogram("h.shared")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("h.shared")->sum(), 3.0);
  ASSERT_NE(a.histogram("h.only_b"), nullptr);  // absent histogram copied
  EXPECT_EQ(a.histogram("h.only_b")->count(), 1u);
}

// ------------------------------------------------------------ sharded runtime --

constexpr const char* kEventsService = R"JS(db.query("CREATE TABLE events (user, v)");)JS";

// A small edge -> regional -> cloud hierarchy on a ShardedRuntime whose
// client ops are SQL inserts (the bench's workload shape, shrunk).
struct ShardWorld {
  std::vector<std::unique_ptr<runtime::ServiceRuntime>> services;
  sqldb::Statement insert = sqldb::parse_sql("INSERT INTO events (user, v) VALUES (?, ?)");
  runtime::ShardedRuntime rt;
  std::vector<std::string> edges;

  explicit ShardWorld(std::size_t lanes, std::size_t inbox_capacity = 4096,
                      std::size_t edge_count = 8)
      : rt(make_config(lanes, inbox_capacity),
           [this](runtime::ReplicaState& replica, const runtime::ClientOp& op) {
             replica.service().database().execute(
                 insert, {sqldb::SqlValue(double(op.user)), sqldb::SqlValue(op.value)});
           }) {
    add("cloud");
    add("regional0");
    add("regional1");
    rt.add_uplink("regional0", "cloud");
    rt.add_uplink("regional1", "cloud");
    for (std::size_t e = 0; e < edge_count; ++e) {
      edges.push_back("edge" + std::to_string(e));
      add(edges.back());
      rt.add_uplink(edges.back(), e % 2 == 0 ? "regional0" : "regional1");
    }
  }

  static runtime::ShardedConfig make_config(std::size_t lanes, std::size_t inbox_capacity) {
    runtime::ShardedConfig config;
    config.lanes = lanes;
    config.seed = 1;
    config.inbox_capacity = inbox_capacity;
    return config;
  }

  void add(const std::string& id) {
    services.push_back(std::make_unique<runtime::ServiceRuntime>(kEventsService));
    auto state = std::make_shared<runtime::ReplicaState>(
        id, services.back().get(), std::set<std::string>{}, std::set<std::string>{});
    state->attach_existing();
    rt.add_replica(std::move(state));
  }

  // `rounds` rounds of `per_edge` deterministic client ops per edge.
  void drive(std::size_t rounds, std::size_t per_edge = 4) {
    for (std::size_t round = 0; round < rounds; ++round) {
      for (std::size_t e = 0; e < edges.size(); ++e) {
        std::vector<runtime::ClientOp> batch(per_edge);
        for (std::size_t j = 0; j < per_edge; ++j) {
          batch[j].user = e * 100 + (round * per_edge + j) % 7;
          batch[j].value = double(round * 1000 + j);
        }
        rt.post_client_ops(edges[e], std::move(batch));
      }
      rt.run_round();
    }
  }

  std::string metrics_text() const {
    util::MetricsRegistry reg;
    rt.export_metrics(reg);
    return reg.format();
  }

  std::string all_digests() const {
    std::string out;
    out += "cloud:" + rt.replica("cloud").state_digest() + "\n";
    out += "regional0:" + rt.replica("regional0").state_digest() + "\n";
    out += "regional1:" + rt.replica("regional1").state_digest() + "\n";
    for (const std::string& e : edges) out += e + ":" + rt.replica(e).state_digest() + "\n";
    return out;
  }
};

TEST(ShardedRuntimeTest, SameSeedSameLanesIsByteIdentical) {
  ShardWorld a(2), b(2);
  a.drive(3);
  b.drive(3);
  EXPECT_EQ(a.all_digests(), b.all_digests());
  EXPECT_EQ(a.metrics_text(), b.metrics_text());  // counters, peaks, skew — all of it
  EXPECT_EQ(a.rt.sim_now(), b.rt.sim_now());
  EXPECT_EQ(a.rt.client_ops_processed(), b.rt.client_ops_processed());
  EXPECT_EQ(a.rt.sync_ops_applied(), b.rt.sync_ops_applied());
}

TEST(ShardedRuntimeTest, ConvergedStateIsLaneCountInvariant) {
  ShardWorld serial(1);
  serial.drive(3);
  const std::string expect_digests = serial.all_digests();
  const std::uint64_t expect_client = serial.rt.client_ops_processed();
  const std::uint64_t expect_applied = serial.rt.sync_ops_applied();
  const std::size_t expect_rows = serial.rt.replica("cloud").tables().live_rows();
  EXPECT_EQ(expect_rows, 8u * 3u * 4u);  // every edge op reached the cloud

  for (const std::size_t lanes : {std::size_t{2}, std::size_t{8}}) {
    ShardWorld w(lanes);
    w.drive(3);
    EXPECT_EQ(w.all_digests(), expect_digests) << "lanes=" << lanes;
    EXPECT_EQ(w.rt.client_ops_processed(), expect_client) << "lanes=" << lanes;
    EXPECT_EQ(w.rt.sync_ops_applied(), expect_applied) << "lanes=" << lanes;
    EXPECT_EQ(w.rt.replica("cloud").tables().live_rows(), expect_rows) << "lanes=" << lanes;
  }
}

TEST(ShardedRuntimeTest, LaneAssignmentMatchesSchedulerHash) {
  ShardWorld w(4);
  for (const std::string& e : w.edges) {
    EXPECT_EQ(w.rt.lane_of(e), w.rt.scheduler().lane_for(e));
  }
}

// Per-doc ordering under concurrent apply: ops from one origin must land
// in origin order even when other lanes are applying concurrently. A
// last-writer-wins global makes order violations visible — if FIFO order
// broke anywhere between the edge and the cloud, a stale value could mint
// a later Lamport stamp and win.
TEST(ShardedRuntimeTest, PerDocOrderingSurvivesConcurrentApply) {
  constexpr const char* kLwwService = R"JS(
var last = 0;
db.query("CREATE TABLE events (user, v)");
app.post("/set", function (req, res) {
  last = req.params.v;
  res.send({ last: last });
});
)JS";
  auto set_request = [](double v) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/set";
    req.params = json::Value::object({{"v", v}});
    return req;
  };

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    runtime::ShardedConfig config;
    config.lanes = lanes;
    config.seed = 1;
    std::vector<std::unique_ptr<runtime::ServiceRuntime>> services;
    runtime::ShardedRuntime rt(config, [&set_request](runtime::ReplicaState& replica,
                                                      const runtime::ClientOp& op) {
      replica.service().handle(set_request(op.value));
    });
    auto add = [&](const std::string& id) {
      services.push_back(std::make_unique<runtime::ServiceRuntime>(kLwwService));
      auto state = std::make_shared<runtime::ReplicaState>(
          id, services.back().get(), std::set<std::string>{},
          std::set<std::string>{"*"});  // sync all globals (the LWW register)
      state->attach_existing();
      rt.add_replica(std::move(state));
    };
    add("cloud");
    for (int e = 0; e < 4; ++e) {
      add("edge" + std::to_string(e));
      rt.add_uplink("edge" + std::to_string(e), "cloud");
    }

    // Edge 0 writes an ascending sequence split across several batches and
    // rounds; the other edges churn concurrently with strictly smaller
    // values. The cloud must end on edge 0's final write.
    double next = 100;
    for (int round = 0; round < 3; ++round) {
      for (int e = 1; e < 4; ++e) {
        rt.post_client_ops("edge" + std::to_string(e),
                           {{std::uint64_t(e), 1.0}, {std::uint64_t(e), 2.0}});
      }
      std::vector<runtime::ClientOp> seq;
      for (int j = 0; j < 5; ++j) seq.push_back({0, next++});
      rt.post_client_ops("edge0", std::move(seq));
      rt.run_round();
    }

    // The LWW global replicated to the cloud must be edge 0's last write.
    const std::optional<json::Value> last = rt.replica("cloud").globals().get("last");
    ASSERT_TRUE(last.has_value()) << "lanes=" << lanes;
    EXPECT_DOUBLE_EQ(last->as_number(), next - 1) << "lanes=" << lanes;
  }
}

// A tiny inbox forces the relief-drain backpressure path; the run must
// neither deadlock nor change the converged state.
TEST(ShardedRuntimeTest, TinyInboxBackpressuresWithoutDeadlock) {
  ShardWorld roomy(2, /*inbox_capacity=*/4096);
  ShardWorld tiny(2, /*inbox_capacity=*/2);
  roomy.drive(3);
  tiny.drive(3);
  EXPECT_EQ(tiny.all_digests(), roomy.all_digests());
  EXPECT_EQ(tiny.rt.client_ops_processed(), roomy.rt.client_ops_processed());
  EXPECT_EQ(tiny.rt.sync_ops_applied(), roomy.rt.sync_ops_applied());
  // And the bound was honored (relief drains, not bigger queues).
  util::MetricsRegistry reg;
  tiny.rt.export_metrics(reg);
  for (const auto& [name, value] : reg.snapshot("runtime.lanes.")) {
    if (name.find(".inbox_peak") != std::string::npos) {
      EXPECT_LE(value, 2.0) << name;
    }
  }
  // Same-seed reruns of the backpressured configuration stay byte-identical
  // (relief events are part of the deterministic schedule, not a race).
  ShardWorld tiny2(2, /*inbox_capacity=*/2);
  tiny2.drive(3);
  EXPECT_EQ(tiny2.metrics_text(), tiny.metrics_text());
}

// ------------------------------------------------------------------ sim plane --

sim::ScheduleConfig small_sim(std::uint64_t seed, std::size_t lanes) {
  sim::ScheduleConfig config;
  config.seed = seed;
  config.rounds = 8;
  config.max_edges = 3;
  config.lanes = lanes;
  return config;
}

// The deployment's parallel sections (record_local harvest, convergence
// digests) commute, so the whole simulated schedule — trace and converged
// state — is lane-count-invariant.
TEST(SimParallelTest, ScheduleDigestsAreLaneCountInvariant) {
  for (const std::uint64_t seed : {7u, 21u, 42u}) {
    const sim::ScheduleResult serial = sim::run_schedule(small_sim(seed, 1));
    const sim::ScheduleResult parallel = sim::run_schedule(small_sim(seed, 4));
    EXPECT_TRUE(serial.passed) << "seed=" << seed;
    EXPECT_TRUE(parallel.passed) << "seed=" << seed;
    EXPECT_EQ(serial.trace_digest, parallel.trace_digest) << "seed=" << seed;
    EXPECT_EQ(serial.state_digest, parallel.state_digest) << "seed=" << seed;
    EXPECT_EQ(serial.requests, parallel.requests) << "seed=" << seed;
  }
}

// Same seed + same lane count: the exported telemetry bytes are identical,
// lanes > 1 included (thread-safe observability must not perturb them).
TEST(SimParallelTest, SameSeedTelemetryExportIsByteIdentical) {
  sim::ScheduleConfig config = small_sim(11, 4);
  config.capture_telemetry = true;
  const sim::ScheduleResult a = sim::run_schedule(config);
  const sim::ScheduleResult b = sim::run_schedule(config);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.metrics_snapshot, b.metrics_snapshot);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_FALSE(a.metrics_snapshot.empty());
}

// lanes=1 is the literal serial path: no scheduler is constructed, so the
// metrics snapshot carries no runtime.lanes.* keys and is byte-identical
// to what the pre-sharding code exported.
TEST(SimParallelTest, SerialLanesAddNoMetricKeys) {
  sim::ScheduleConfig config = small_sim(11, 1);
  config.capture_telemetry = true;
  const sim::ScheduleResult serial = sim::run_schedule(config);
  EXPECT_EQ(serial.metrics_snapshot.find("runtime.lanes."), std::string::npos);

  sim::ScheduleConfig parallel = small_sim(11, 4);
  parallel.capture_telemetry = true;
  EXPECT_NE(sim::run_schedule(parallel).metrics_snapshot.find("runtime.lanes."),
            std::string::npos);
}

}  // namespace
}  // namespace edgstr
