// Mutation fuzz over the sync wire codec: 10k seeded cases per run.
//
// Each case encodes a randomly generated message of a random kind (ops,
// digest, bootstrap), then corrupts the serialized text — truncation, bit
// flips, digit/length/seq corruption, slice deletion and duplication, and
// deliberate kind-confusion splices (a digest key grafted onto an ops
// frame, a bootstrap tag on a digest, ...). The contract under attack:
//
//   * if the mutant still parses as JSON, decode_message() either returns
//     a well-formed message (which must then survive an encode/decode
//     round-trip) or throws crdt::WireError — never anything else, never
//     UB (the suite runs under the ASan/UBSan CI matrix);
//   * unmutated frames of every kind decode back to what was encoded.
//
// Everything draws from one seeded Rng, so a failure report's case number
// plus the seed is a complete reproduction.
#include <gtest/gtest.h>

#include <string>

#include "crdt/wire.h"
#include "json/parse.h"
#include "util/rng.h"

namespace edgstr::crdt {
namespace {

constexpr std::uint64_t kFuzzSeed = 0xed65727ULL;  // stable across runs
constexpr int kCases = 10000;

// ---- generators ------------------------------------------------------------

DocVersions random_versions(util::Rng& rng) {
  DocVersions versions;
  const char* docs[] = {"tables", "files", "globals"};
  for (const char* doc : docs) {
    if (rng.chance(0.25)) continue;
    VersionVector v;
    const int origins = int(rng.uniform_int(0, 4));
    for (int o = 0; o < origins; ++o) {
      v["edge" + std::to_string(o)] = std::uint64_t(rng.uniform_int(1, 100000));
    }
    versions[doc] = std::move(v);
  }
  return versions;
}

SyncMessage random_ops_message(util::Rng& rng) {
  SyncMessage msg;
  msg.from = "replica" + std::to_string(rng.uniform_int(0, 5));
  const char* docs[] = {"tables", "files", "globals"};
  for (const char* doc : docs) {
    if (rng.chance(0.3)) continue;
    VersionVector version;
    std::vector<Op> ops;
    const int origins = int(rng.uniform_int(1, 3));
    std::uint64_t lamport = rng.uniform_int(1, 50);
    for (int o = 0; o < origins; ++o) {
      const std::string origin = "edge" + std::to_string(o);
      std::uint64_t seq = rng.uniform_int(1, 20);
      const int count = int(rng.uniform_int(0, 6));
      for (int i = 0; i < count; ++i) {
        Op op;
        op.origin = origin;
        op.seq = seq++;
        lamport += rng.uniform_int(1, 9);
        op.stamp.counter = lamport;
        op.stamp.replica = rng.chance(0.15) ? "relay" : origin;
        op.payload = json::Value::object(
            {{"key", rng.token(4)}, {"value", double(rng.uniform_int(0, 1000))}});
        ops.push_back(std::move(op));
      }
      version[origin] = seq - 1;
    }
    msg.versions[doc] = std::move(version);
    if (!ops.empty()) msg.ops[doc] = std::move(ops);
  }
  msg.truncated = rng.chance(0.2);
  msg.rejoin = rng.chance(0.1);
  return msg;
}

SyncMessage random_digest(util::Rng& rng) {
  SyncMessage msg;
  msg.kind = SyncKind::kDigest;
  msg.from = "replica" + std::to_string(rng.uniform_int(0, 5));
  msg.versions = random_versions(rng);
  msg.rejoin = rng.chance(0.25);
  return msg;
}

SyncMessage random_bootstrap(util::Rng& rng) {
  SyncMessage msg;
  msg.kind = SyncKind::kBootstrap;
  msg.from = "replica" + std::to_string(rng.uniform_int(0, 5));
  msg.versions = random_versions(rng);
  msg.bootstrap = json::Value::object(
      {{"tables", json::Value::object({{"rows", double(rng.uniform_int(0, 99))}})},
       {"token", rng.token(6)}});
  msg.rejoin = rng.chance(0.4);
  return msg;
}

SyncMessage random_message(util::Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return random_digest(rng);
    case 1: return random_bootstrap(rng);
    default: return random_ops_message(rng);
  }
}

// ---- mutators --------------------------------------------------------------

/// Grafts another kind's tag or payload field onto the frame (right after
/// the opening brace, so the JSON stays parseable and the confusion has to
/// be caught by the codec's own cross-kind validation, not the parser).
std::string confuse_kind(std::string text, util::Rng& rng) {
  static const char* kSplices[] = {
      R"("k":"dig",)",           R"("k":"boot",)",      R"("k":"zzz",)",
      R"("g":{"tables":[1]},)",  R"("o":["edge0"],)",   R"("b":{},)",
      R"("d":{},)",              R"("b":7,)",           R"("t":true,)",
      R"("rj":"maybe",)",        R"("v":3,)",
  };
  if (!text.empty() && text.front() == '{') {
    text.insert(1, kSplices[rng.index(std::size(kSplices))]);
  }
  return text;
}

std::string mutate(std::string text, util::Rng& rng) {
  if (text.empty()) return text;
  switch (rng.uniform_int(0, 6)) {
    case 0:  // truncation
      text.resize(rng.index(text.size()));
      return text;
    case 1: {  // bit flips
      const int flips = int(rng.uniform_int(1, 4));
      for (int i = 0; i < flips; ++i) {
        text[rng.index(text.size())] ^= char(1u << rng.uniform_int(0, 7));
      }
      return text;
    }
    case 2: {  // digit corruption: lengths, seqs, counters, versions
      for (int attempt = 0; attempt < 32; ++attempt) {
        const std::size_t at = rng.index(text.size());
        if (text[at] >= '0' && text[at] <= '9') {
          // Grow the number too — "1" -> "1e300", "-5", "90071992547409931"
          static const char* kDigits[] = {"0", "7", "-", ".", "e3", "99999999999999999"};
          text.replace(at, 1, kDigits[rng.index(std::size(kDigits))]);
          break;
        }
      }
      return text;
    }
    case 3: {  // delete a slice
      const std::size_t at = rng.index(text.size());
      text.erase(at, rng.uniform_int(1, 12));
      return text;
    }
    case 4: {  // duplicate a slice (repeated keys, doubled runs)
      const std::size_t at = rng.index(text.size());
      const std::size_t len = std::min<std::size_t>(text.size() - at, rng.uniform_int(1, 24));
      text.insert(at, text.substr(at, len));
      return text;
    }
    case 5:  // random byte splat
      text[rng.index(text.size())] = char(rng.uniform_int(32, 126));
      return text;
    default:
      return confuse_kind(std::move(text), rng);
  }
}

bool kinds_equal(const SyncMessage& a, const SyncMessage& b) {
  return a.kind == b.kind && a.from == b.from && a.op_count() == b.op_count() &&
         a.truncated == b.truncated && a.rejoin == b.rejoin;
}

// ---- the fuzz loop ---------------------------------------------------------

TEST(WireFuzzTest, TenThousandMutantsDecodeOrThrowWireError) {
  util::Rng rng(kFuzzSeed);
  int decoded_ok = 0, rejected = 0, unparseable = 0, pass_through = 0;

  for (int c = 0; c < kCases; ++c) {
    const SyncMessage original = random_message(rng);
    std::string text = encode_message(original).dump();
    const bool mutated = !rng.chance(0.1);
    if (mutated) {
      const int layers = int(rng.uniform_int(1, 2));
      for (int i = 0; i < layers; ++i) text = mutate(std::move(text), rng);
    }

    json::Value parsed;
    try {
      parsed = json::parse(text);
    } catch (const json::ParseError&) {
      ++unparseable;  // parser rejected the mutant before the codec saw it
      continue;
    }

    try {
      const SyncMessage decoded = decode_message(parsed);
      // Whatever the codec accepts it must also be able to re-emit, and
      // the re-emitted frame must mean the same thing.
      const SyncMessage again = decode_message(encode_message(decoded));
      ASSERT_TRUE(kinds_equal(again, decoded))
          << "case " << c << " (seed " << kFuzzSeed << "): accepted frame did not round-trip";
      if (!mutated) {
        ++pass_through;
        ASSERT_TRUE(kinds_equal(decoded, original))
            << "case " << c << " (seed " << kFuzzSeed << "): clean frame decoded differently";
      } else {
        ++decoded_ok;
      }
    } catch (const WireError&) {
      ASSERT_TRUE(mutated) << "case " << c << " (seed " << kFuzzSeed
                           << "): clean frame rejected: " << text;
      ++rejected;
    } catch (const std::exception& e) {
      FAIL() << "case " << c << " (seed " << kFuzzSeed << "): decode threw "
             << typeid(e).name() << " (" << e.what() << ") instead of WireError on: " << text;
    }
  }

  // The corpus must actually exercise every path, not collapse into one
  // bucket (e.g. a mutator so destructive nothing ever reaches the codec).
  EXPECT_EQ(decoded_ok + rejected + unparseable + pass_through, kCases);
  EXPECT_GT(pass_through, 100) << "clean round-trip cases";
  EXPECT_GT(decoded_ok, 100) << "mutants the codec legitimately tolerated";
  EXPECT_GT(rejected, 500) << "mutants rejected with WireError";
  EXPECT_GT(unparseable, 1000) << "mutants rejected by the JSON parser";
}

}  // namespace
}  // namespace edgstr::crdt
