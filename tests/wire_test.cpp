// Wire-codec hardening: the batched sync encoding must survive hostile
// input — truncated headers, mismatched run lengths, non-integral seqs,
// gap-ridden runs — by throwing crdt::WireError, never by corrupting state
// or crashing. Plus a seeded round-trip property: decode(encode(m)) == m
// for arbitrary generated messages.
#include <gtest/gtest.h>

#include "crdt/wire.h"
#include "json/parse.h"
#include "util/rng.h"

namespace edgstr::crdt {
namespace {

json::Value wire_from(const std::string& text) { return json::parse(text); }

TEST(WireHostileTest, MissingSenderIsRejected) {
  EXPECT_THROW(decode_message(wire_from(R"({"v": {}})")), WireError);
  EXPECT_THROW(decode_message(wire_from(R"({"from": 7, "v": {}})")), WireError);
}

TEST(WireHostileTest, MissingVersionsIsRejected) {
  EXPECT_THROW(decode_message(wire_from(R"({"from": "a"})")), WireError);
  EXPECT_THROW(decode_message(wire_from(R"({"from": "a", "v": 3})")), WireError);
}

TEST(WireHostileTest, TruncatedRunHeaderIsRejected) {
  // Each of o/s/c/p missing in turn.
  for (const char* run : {R"({"s": 1, "c": [1], "p": [{}]})",   //
                          R"({"o": "e", "c": [1], "p": [{}]})",  //
                          R"({"o": "e", "s": 1, "p": [{}]})",    //
                          R"({"o": "e", "s": 1, "c": [1]})"}) {
    const std::string msg =
        std::string(R"({"from": "a", "v": {}, "d": {"tables": [)") + run + "]}}";
    EXPECT_THROW(decode_message(wire_from(msg)), WireError) << run;
  }
}

TEST(WireHostileTest, RunLengthMismatchIsRejected) {
  // More payloads than counters: naive decoding would read counters out of
  // bounds (UB) before validation existed.
  const std::string msg = R"({"from": "a", "v": {}, "d": {"tables": [
      {"o": "e", "s": 1, "c": [1], "p": [{}, {}, {}]}]}})";
  EXPECT_THROW(decode_message(wire_from(msg)), WireError);
  // Short replica array on a run that carries one.
  const std::string msg2 = R"({"from": "a", "v": {}, "d": {"tables": [
      {"o": "e", "s": 1, "c": [1, 1], "p": [{}, {}], "r": ["x"]}]}})";
  EXPECT_THROW(decode_message(wire_from(msg2)), WireError);
}

TEST(WireHostileTest, BadFirstSeqIsRejected) {
  for (const char* seq : {"0", "-4", "1.5", "1e300"}) {
    const std::string msg = std::string(R"({"from": "a", "v": {}, "d": {"tables": [)") +
                            R"({"o": "e", "s": )" + seq + R"(, "c": [1], "p": [{}]}]}})";
    EXPECT_THROW(decode_message(wire_from(msg)), WireError) << "s=" << seq;
  }
}

TEST(WireHostileTest, NonGapFreeSameOriginRunsAreRejected) {
  // Origin "e" jumps from seqs [1,2] to 9: a gap the encoder can never
  // produce, and which would otherwise explode deep inside OpLog::record.
  const std::string msg = R"({"from": "a", "v": {}, "d": {"tables": [
      {"o": "e", "s": 1, "c": [1, 1], "p": [{}, {}]},
      {"o": "other", "s": 5, "c": [9], "p": [{}]},
      {"o": "e", "s": 9, "c": [1], "p": [{}]}]}})";
  EXPECT_THROW(decode_message(wire_from(msg)), WireError);
  // The same shape WITHOUT the gap (resuming at 3) is legitimate: origins
  // interleave in log order, seqs stay contiguous per origin.
  const std::string ok = R"({"from": "a", "v": {}, "d": {"tables": [
      {"o": "e", "s": 1, "c": [1, 1], "p": [{}, {}]},
      {"o": "other", "s": 5, "c": [9], "p": [{}]},
      {"o": "e", "s": 3, "c": [1], "p": [{}]}]}})";
  EXPECT_EQ(decode_message(wire_from(ok)).op_count(), 4u);
}

TEST(WireHostileTest, LamportCounterOutOfRangeIsRejected) {
  const std::string msg = R"({"from": "a", "v": {}, "d": {"tables": [
      {"o": "e", "s": 1, "c": [5, -100], "p": [{}, {}]}]}})";
  EXPECT_THROW(decode_message(wire_from(msg)), WireError);
}

TEST(WireHostileTest, WrongTypesInsideRunsAreRejected) {
  for (const char* run : {R"({"o": 5, "s": 1, "c": [1], "p": [{}]})",
                          R"({"o": "e", "s": "one", "c": [1], "p": [{}]})",
                          R"({"o": "e", "s": 1, "c": 1, "p": [{}]})",
                          R"({"o": "e", "s": 1, "c": ["x"], "p": [{}]})"}) {
    const std::string msg =
        std::string(R"({"from": "a", "v": {}, "d": {"tables": [)") + run + "]}}";
    EXPECT_THROW(decode_message(wire_from(msg)), WireError) << run;
  }
}

TEST(WireHostileTest, RejectionDoesNotDisturbSubsequentDecodes) {
  EXPECT_THROW(decode_message(wire_from(R"({"from": "a"})")), WireError);
  const SyncMessage ok = decode_message(wire_from(
      R"({"from": "b", "v": {"tables": {"b": 2}}, "d": {"tables": [
          {"o": "b", "s": 1, "c": [1, 1], "p": [{"k": 1}, {"k": 2}]}]}})"));
  EXPECT_EQ(ok.from, "b");
  EXPECT_EQ(ok.op_count(), 2u);
  EXPECT_EQ(ok.ops.at("tables")[1].seq, 2u);
}

// ---- seeded round-trip property --------------------------------------------

SyncMessage random_message(util::Rng& rng) {
  SyncMessage msg;
  msg.from = "replica" + std::to_string(rng.uniform_int(0, 5));
  const char* docs[] = {"tables", "files", "globals"};
  for (const char* doc : docs) {
    if (rng.chance(0.3)) continue;  // exercise absent doc units
    VersionVector version;
    std::vector<Op> ops;
    const int origins = int(rng.uniform_int(1, 3));
    std::uint64_t lamport = rng.uniform_int(1, 50);
    for (int o = 0; o < origins; ++o) {
      const std::string origin = "edge" + std::to_string(o);
      std::uint64_t seq = rng.uniform_int(1, 20);
      const int count = int(rng.uniform_int(0, 6));
      for (int i = 0; i < count; ++i) {
        Op op;
        op.origin = origin;
        op.seq = seq++;
        lamport += rng.uniform_int(1, 9);
        op.stamp.counter = lamport;
        // Occasionally a relayed stamp whose replica differs from the
        // origin, forcing the explicit "r" fallback onto the wire.
        op.stamp.replica = rng.chance(0.15) ? "relay" : origin;
        op.payload = json::Value::object(
            {{"key", rng.token(4)}, {"value", double(rng.uniform_int(0, 1000))}});
        ops.push_back(std::move(op));
      }
      version[origin] = seq - 1;
    }
    msg.versions[doc] = std::move(version);
    if (!ops.empty()) msg.ops[doc] = std::move(ops);
  }
  return msg;
}

bool ops_equal(const Op& a, const Op& b) {
  return a.origin == b.origin && a.seq == b.seq && a.stamp == b.stamp &&
         a.payload.dump() == b.payload.dump();
}

TEST(WireRoundTripProperty, DecodeOfEncodeIsIdentity) {
  util::Rng rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    const SyncMessage original = random_message(rng);
    SyncMessage decoded;
    ASSERT_NO_THROW(decoded = decode_message(encode_message(original))) << "trial " << trial;

    EXPECT_EQ(decoded.from, original.from) << "trial " << trial;
    // Empty per-doc versions are dropped by the encoder by design; every
    // non-empty one must survive exactly.
    for (const auto& [doc, version] : original.versions) {
      if (version.empty()) continue;
      ASSERT_TRUE(decoded.versions.count(doc)) << "trial " << trial << " doc " << doc;
      EXPECT_TRUE(decoded.versions.at(doc) == version) << "trial " << trial << " doc " << doc;
    }
    ASSERT_EQ(decoded.op_count(), original.op_count()) << "trial " << trial;
    for (const auto& [doc, ops] : original.ops) {
      if (ops.empty()) continue;
      const auto& got = decoded.ops.at(doc);
      ASSERT_EQ(got.size(), ops.size()) << "trial " << trial << " doc " << doc;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        EXPECT_TRUE(ops_equal(got[i], ops[i]))
            << "trial " << trial << " doc " << doc << " op " << i
            << " (replay: seed 20260807)";
      }
    }
  }
}

}  // namespace
}  // namespace edgstr::crdt
