// Resolver coverage and engine differentials.
//
// The fast path (lexical slot resolution + copy-on-write checkpoints) must
// be invisible to everything above the interpreter: same responses, same
// RW-log facts, same extraction plans. The unit tests pin the tricky
// scoping cases (shadowing, use-before-declare fallback, closures across
// restore, req/res rebinding); the differential test runs the full
// fuzz+analysis front end over every subject app under all four engine
// configurations and requires byte-identical traces.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/app.h"
#include "edgstr/pipeline.h"
#include "minijs/parser.h"
#include "minijs/printer.h"
#include "refactor/dependence.h"
#include "refactor/normalize.h"
#include "trace/fuzzer.h"
#include "trace/state_capture.h"

namespace edgstr {
namespace {

trace::ProfilingHarness make_harness(const std::string& source, bool resolve, bool cow = true,
                                     bool vm = false) {
  minijs::InterpreterConfig config;
  config.resolve = resolve;
  config.vm = vm;
  trace::HarnessOptions options;
  options.cow = cow;
  return trace::ProfilingHarness(source, config, options);
}

http::HttpRequest get_request(const std::string& path, json::Value params) {
  http::HttpRequest req;
  req.verb = http::Verb::kGet;
  req.path = path;
  req.params = std::move(params);
  return req;
}

// ---------------------------------------------------------------- scoping --

TEST(ResolverTest, ShadowingResolvesInnermostBinding) {
  const char* source = R"JS(
var x = 1;
function outer() {
  var x = 10;
  function inner() { var x = 100; return x; }
  return inner() + x;
}
app.get("/shadow", function (req, res) {
  res.send({ sum: outer(), global_x: x });
});
)JS";
  for (const bool resolve : {true, false}) {
    SCOPED_TRACE(resolve ? "resolved" : "named");
    trace::ProfilingHarness harness = make_harness(source, resolve);
    const http::HttpResponse resp =
        harness.invoke({http::Verb::kGet, "/shadow"}, get_request("/shadow", json::Value::object({})));
    EXPECT_EQ(resp.body["sum"].as_number(), 110);
    EXPECT_EQ(resp.body["global_x"].as_number(), 1);
    if (resolve) {
      EXPECT_GT(harness.interpreter().slot_reads(), 0u);
    }
  }
}

TEST(ResolverTest, UseBeforeDeclareFallsBackToOuterBinding) {
  // `y` is pre-claimed as a local slot by the declaration pre-pass, but the
  // read happens before the binding executes — the unbound-slot fallback
  // must find the *global* y, exactly like the named slow path.
  const char* source = R"JS(
var y = 7;
function ubd() {
  var seen = y;
  var y = 100;
  return seen + y;
}
app.get("/ubd", function (req, res) { res.send({ v: ubd() }); });
)JS";
  for (const bool resolve : {true, false}) {
    SCOPED_TRACE(resolve ? "resolved" : "named");
    trace::ProfilingHarness harness = make_harness(source, resolve);
    const http::HttpResponse resp =
        harness.invoke({http::Verb::kGet, "/ubd"}, get_request("/ubd", json::Value::object({})));
    EXPECT_EQ(resp.body["v"].as_number(), 107);
  }
}

TEST(ResolverTest, ClosureStateSurvivesRestore) {
  // A closure captures a frame slot at init. restore() rewrites *globals*,
  // not closure frames — so the captured slot must keep working after
  // restore_init, and the global it also reads must be rolled back.
  const char* source = R"JS(
var counter = 0;
function makeAdder(base) {
  var secret = base * 2;
  return function (x) { counter = counter + 1; return secret + x + counter; };
}
var add = makeAdder(5);
app.get("/add", function (req, res) {
  res.send({ v: add(req.params.x) });
});
)JS";
  for (const bool resolve : {true, false}) {
    SCOPED_TRACE(resolve ? "resolved" : "named");
    trace::ProfilingHarness harness = make_harness(source, resolve);
    const http::Route route{http::Verb::kGet, "/add"};
    const auto params = json::Value::object({{"x", json::Value(1.0)}});
    // secret=10, counter: 0 -> 1 at first call.
    EXPECT_EQ(harness.invoke(route, get_request("/add", params)).body["v"].as_number(), 12);
    EXPECT_EQ(harness.invoke(route, get_request("/add", params)).body["v"].as_number(), 13);
    harness.restore_init();  // counter rolls back to 0; secret is frame state
    EXPECT_EQ(harness.invoke(route, get_request("/add", params)).body["v"].as_number(), 12);
  }
}

TEST(ResolverTest, ReqResRebindBetweenExecutions) {
  // req/res are parameters of the handler frame: each invoke must bind
  // fresh values into the same resolved slots, with no bleed-through from
  // the previous request.
  const char* source = R"JS(
app.get("/echo", function (req, res) {
  var tag = req.params.tag;
  res.send({ tag: tag });
});
)JS";
  for (const bool resolve : {true, false}) {
    SCOPED_TRACE(resolve ? "resolved" : "named");
    trace::ProfilingHarness harness = make_harness(source, resolve);
    const http::Route route{http::Verb::kGet, "/echo"};
    const http::HttpResponse first = harness.invoke(
        route, get_request("/echo", json::Value::object({{"tag", json::Value("alpha")}})));
    const http::HttpResponse second = harness.invoke(
        route, get_request("/echo", json::Value::object({{"tag", json::Value("beta")}})));
    EXPECT_EQ(first.body["tag"].as_string(), "alpha");
    EXPECT_EQ(second.body["tag"].as_string(), "beta");
  }
}

// ----------------------------------------------------------- differential --

void append_report(std::ostream& out, const trace::FuzzReport& report) {
  out << "route " << http::to_string(report.route.verb) << ' ' << report.route.path << '\n';
  for (const trace::FuzzRun& run : report.runs) {
    out << "req " << run.request.params.dump() << " payload=" << run.request.payload_bytes
        << '\n';
    out << "resp " << run.response.status << ' ' << run.response.body.dump()
        << " digest=" << run.response_digest << '\n';
    for (const auto& [key, digest] : run.param_digests) out << "pd " << key << '=' << digest << '\n';
    for (const trace::RwEvent& e : run.events) {
      out << "rw " << int(e.kind) << ' ' << e.stmt_id << ' ' << e.name() << ' ' << e.digest << ' '
          << e.order << '\n';
    }
    for (const trace::SqlEvent& e : run.sql_events) {
      out << "sql " << e.stmt_id << ' ' << e.mutation << ' ' << e.table << ' ' << e.sql << '\n';
    }
    for (const trace::FileEvent& e : run.file_events) {
      out << "file " << e.stmt_id << ' ' << e.write << ' ' << e.path << '\n';
    }
    for (const trace::InvokeEvent& e : run.invoke_events) {
      out << "inv " << e.stmt_id << ' ' << e.function() << ' ' << e.order << '\n';
    }
    for (const trace::FlowEdge& e : run.flow_edges) {
      out << "flow " << e.reader_stmt << ' ' << e.writer_stmt << ' ' << e.variable() << '\n';
    }
    out << "stmts";
    for (const int s : run.executed_statements) out << ' ' << s;
    out << "\ndiff";
    for (const std::string& t : run.state_diff.changed_tables) out << " T:" << t;
    for (const std::string& f : run.state_diff.changed_files) out << " F:" << f;
    for (const std::string& g : run.state_diff.changed_globals) out << " G:" << g;
    out << '\n';
  }
}

void append_plan(std::ostream& out, const refactor::ExtractionPlan& plan) {
  out << "plan ok=" << plan.ok << " err=" << plan.error << " entry=" << plan.entry_stmt
      << " exit=" << plan.exit_stmt << " unmar=" << plan.unmar_var << " mar=" << plan.mar_var
      << " fb=" << plan.entry_is_fallback << plan.exit_is_fallback
      << " facts=" << plan.fact_count << " deps=" << plan.derived_dep_count << '\n';
  const auto dump_set = [&out](const char* label, const std::set<std::string>& items) {
    out << label;
    for (const std::string& item : items) out << ' ' << item;
    out << '\n';
  };
  out << "included";
  for (const int s : plan.included) out << ' ' << s;
  out << '\n';
  dump_set("fns", plan.called_functions);
  dump_set("need_t", plan.needed_tables);
  dump_set("need_f", plan.needed_files);
  dump_set("need_g", plan.needed_globals);
  dump_set("mut_t", plan.mutated_tables);
  dump_set("mut_f", plan.mutated_files);
  dump_set("mut_g", plan.mutated_globals);
}

/// Runs the full profiling front end (fuzz every inferred service, analyze
/// each report) under one engine configuration and serializes everything
/// the downstream transformation consumes.
std::string engine_trace(const apps::SubjectApp& app, bool resolve, bool cow, bool vm = false) {
  const http::TrafficRecorder traffic = core::record_traffic(app.server_source, app.workload);
  trace::ProfilingHarness harness = make_harness(
      minijs::print_program(refactor::normalize(minijs::parse_program(app.server_source))),
      resolve, cow, vm);
  refactor::DependenceAnalyzer analyzer(harness.interpreter().program());
  trace::Fuzzer fuzzer(harness, util::Rng(17));
  std::ostringstream out;
  for (const http::ServiceProfile& profile : traffic.infer_services()) {
    const trace::FuzzReport report = fuzzer.fuzz(profile, 4);
    append_report(out, report);
    append_plan(out, analyzer.analyze(report));
  }
  return out.str();
}

TEST(EngineDifferentialTest, FactsAndPlansIdenticalAcrossEngineConfigs) {
  for (const apps::SubjectApp* app : apps::all_subject_apps()) {
    SCOPED_TRACE(app->name);
    const std::string fast = engine_trace(*app, /*resolve=*/true, /*cow=*/true);
    ASSERT_FALSE(fast.empty());
    // Legacy engine (named lookups + full-state snapshots) and the two
    // single-axis ablations all produce the same bytes.
    EXPECT_EQ(fast, engine_trace(*app, /*resolve=*/false, /*cow=*/false)) << "vs legacy";
    EXPECT_EQ(fast, engine_trace(*app, /*resolve=*/false, /*cow=*/true)) << "vs named+cow";
    EXPECT_EQ(fast, engine_trace(*app, /*resolve=*/true, /*cow=*/false)) << "vs resolved+full";
    // The bytecode VM must be just as invisible: same facts, same plans.
    EXPECT_EQ(fast, engine_trace(*app, /*resolve=*/true, /*cow=*/true, /*vm=*/true)) << "vs vm";
  }
}

}  // namespace
}  // namespace edgstr
