#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace edgstr::util {
namespace {

// ------------------------------------------------------------------ Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntThrowsOnInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 2), std::invalid_argument);
}

TEST(RngTest, NormalHasRoughlyRightMoments) {
  Rng rng(42);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  Rng rng(5);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(RngTest, TokenHasRequestedLength) {
  Rng rng(3);
  EXPECT_EQ(rng.token(12).size(), 12u);
  EXPECT_EQ(rng.token(0).size(), 0u);
}

TEST(RngTest, IndexThrowsOnEmptyRange) {
  Rng rng(3);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------- stats --

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SummaryTest, QuantileInterpolates) {
  Summary s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
}

TEST(SummaryTest, QuantileRejectsOutOfRange) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(SummaryTest, MergeCombinesSamples) {
  Summary a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(StatsTest, BoxStatsOrdering) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  const BoxStats box = box_stats(s);
  EXPECT_LT(box.min, box.q1);
  EXPECT_LT(box.q1, box.median);
  EXPECT_LT(box.median, box.q3);
  EXPECT_LT(box.q3, box.max);
}

TEST(StatsTest, LinearRegressionExactLine) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {3, 5, 7, 9};  // y = 2x + 1
  const LinearFit fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(StatsTest, LinearRegressionNeedsTwoPoints) {
  EXPECT_THROW(linear_regression({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(linear_regression({1.0, 2.0}, {2.0}), std::invalid_argument);
}

TEST(StatsTest, LinearRegressionDegenerateXs) {
  const LinearFit fit = linear_regression({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

// -------------------------------------------------------------- strings --

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, ReplaceAllOccurrences) {
  EXPECT_EQ(replace_all("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(StringsTest, Fnv1aStableAndDiscriminating) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(StringsTest, FormatBytesUnits) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(3 * 1024.0 * 1024.0), "3.00 MB");
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

// -------------------------------------------------------------- logging --

TEST(LoggingTest, SinkReceivesMessagesAboveThreshold) {
  std::vector<std::string> captured;
  set_log_sink([&](const LogRecord& rec) {
    captured.push_back(std::string(to_string(rec.level)) + ":" + std::string(rec.message));
  });
  set_log_level(LogLevel::kInfo);
  EDGSTR_DEBUG() << "hidden";
  EDGSTR_INFO() << "shown " << 42;
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "INFO:shown 42");
}

TEST(LoggingTest, StructuredRecordCarriesLevelAndMessage) {
  // rec.message is only valid during the sink call — copy into owned strings.
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](const LogRecord& rec) {
    captured.emplace_back(rec.level, std::string(rec.message));
  });
  set_log_level(LogLevel::kTrace);
  EDGSTR_WARN() << "disk " << 93 << "% full";
  EDGSTR_ERROR() << "sync failed";
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "disk 93% full");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "sync failed");
}

TEST(LoggingTest, ReentrantSinkDoesNotDeadlockOrRecurse) {
  // A sink that itself logs must neither self-deadlock on the logging
  // mutex nor recurse: the nested emission is dropped.
  int calls = 0;
  set_log_sink([&](const LogRecord&) {
    ++calls;
    EDGSTR_ERROR() << "from inside the sink";
  });
  set_log_level(LogLevel::kInfo);
  EDGSTR_INFO() << "trigger";
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(calls, 1);
}

TEST(LoggingTest, ConcurrentLoggingIsSafe) {
  std::mutex mu;  // sinks may run concurrently; this one synchronizes itself
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](const LogRecord& rec) {
    std::lock_guard lock(mu);
    captured.emplace_back(rec.level, std::string(rec.message));
  });
  set_log_level(LogLevel::kInfo);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) EDGSTR_INFO() << "t" << t << " msg " << i;
    });
  }
  for (std::thread& t : threads) t.join();
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  // Every record arrives exactly once, unsheared.
  ASSERT_EQ(captured.size(), 200u);
  for (const auto& [level, message] : captured) {
    EXPECT_EQ(level, LogLevel::kInfo);
    EXPECT_NE(message.find(" msg "), std::string::npos);
  }
}

TEST(LoggingTest, ParseLogLevelNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(parse_log_level("trace", &level));
  EXPECT_EQ(level, LogLevel::kTrace);
  EXPECT_TRUE(parse_log_level("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(parse_log_level("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(parse_log_level("loud", &level));
  EXPECT_EQ(level, LogLevel::kError);  // unchanged on failure
}

// -------------------------------------------------------------- metrics --

TEST(MetricsTest, CountersAddAndSet) {
  MetricsRegistry reg;
  reg.add("a.count");
  reg.add("a.count", 2.0);
  reg.set("a.gauge", 7.5);
  EXPECT_DOUBLE_EQ(reg.value("a.count"), 3.0);
  EXPECT_DOUBLE_EQ(reg.value("a.gauge"), 7.5);
  EXPECT_DOUBLE_EQ(reg.value("missing"), 0.0);
}

TEST(MetricsTest, SnapshotAndSumRespectOverlappingPrefixes) {
  MetricsRegistry reg;
  reg.set("sync.bytes.wire", 100);
  reg.set("sync.bytes.per_op_equiv", 400);
  reg.set("sync.rounds", 3);
  reg.set("runtime.request.count.local", 5);

  // The longer prefix selects a strict subset of the shorter one.
  const auto bytes = reg.snapshot("sync.bytes.");
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_DOUBLE_EQ(reg.sum("sync.bytes."), 500.0);

  const auto all_sync = reg.snapshot("sync.");
  EXPECT_EQ(all_sync.size(), 3u);
  EXPECT_DOUBLE_EQ(reg.sum("sync."), 503.0);

  // Empty prefix means everything.
  EXPECT_EQ(reg.snapshot("").size(), 4u);
  EXPECT_DOUBLE_EQ(reg.sum(""), 508.0);

  // Prefix matching is literal, not segment-aware: "sync.round" also
  // matches "sync.rounds".
  EXPECT_DOUBLE_EQ(reg.sum("sync.round"), 3.0);
}

TEST(MetricsTest, ResetDropsOnlyMatchingPrefix) {
  MetricsRegistry reg;
  reg.set("sync.bytes.wire", 100);
  reg.set("sync.rounds", 3);
  reg.set("runtime.request.count.local", 5);
  reg.observe("sync.round.duration", 0.5);
  reg.observe("runtime.request.latency.local", 0.01);

  reg.reset("sync.");
  EXPECT_DOUBLE_EQ(reg.value("sync.bytes.wire"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("sync.rounds"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("runtime.request.count.local"), 5.0);
  EXPECT_EQ(reg.histogram("sync.round.duration"), nullptr);
  ASSERT_NE(reg.histogram("runtime.request.latency.local"), nullptr);
  EXPECT_EQ(reg.histogram("runtime.request.latency.local")->count(), 1u);

  reg.reset();  // full wipe
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.histogram_count(), 0u);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h(Histogram::default_latency_bounds());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, ExactMinMaxAndMean) {
  Histogram h(Histogram::default_count_bounds());
  for (double v : {1.0, 5.0, 9.0}) h.observe(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(HistogramTest, QuantilesOfUniformDistribution) {
  // 1..1000 uniformly: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990. The fixed 1-2-5
  // bucket ladder limits resolution to the enclosing bucket, so allow the
  // bucket width as tolerance.
  Histogram h(Histogram::default_count_bounds());
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.quantile(0.50), 500.0, 300.0);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 500.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 500.0);
  // Quantiles are monotone and clamped to the observed range.
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);
}

TEST(HistogramTest, QuantileOfSingleBucketIsExactValue) {
  Histogram h(Histogram::default_latency_bounds());
  for (int i = 0; i < 10; ++i) h.observe(0.003);
  // All samples identical: min/max clamp every quantile to the value.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.003);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.003);
}

TEST(HistogramTest, OverflowBucketCatchesOutOfRange) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(100.0);  // beyond the last bound → overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(HistogramTest, MergeCombinesCountsAndRange) {
  Histogram a(Histogram::default_count_bounds());
  Histogram b(Histogram::default_count_bounds());
  a.observe(10.0);
  b.observe(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 10.0);
  EXPECT_DOUBLE_EQ(a.max(), 1000.0);
}

TEST(HistogramTest, BoundsAreInclusiveUpperBounds) {
  // Pins the bucket-assignment convention the exporters and the SLO
  // watchdog's quantile rules depend on: a bound is an *inclusive* upper
  // bound, so a value exactly on a bound lands in that bound's bucket and
  // anything above it spills into the next.
  Histogram h({1.0, 2.0, 5.0});
  h.observe(1.0);        // == bound 1.0 → bucket 0
  h.observe(1.0000001);  // just above → bucket 1
  h.observe(2.0);        // == bound 2.0 → bucket 1
  h.observe(5.0);        // == last bound → bucket 2, not overflow
  h.observe(5.1);        // above the last bound → overflow
  const std::vector<std::uint64_t>& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, QuantileInterpolatesWithinObservedRange) {
  // All four samples share one bucket; interpolation runs between the
  // observed min and max (2 and 8), not the nominal bucket edges (0, 10).
  Histogram h({10.0});
  for (double v : {2.0, 4.0, 6.0, 8.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);   // clamps to observed min
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);   // midpoint of [2, 8]
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);   // clamps to observed max
}

TEST(HistogramTest, OverflowBucketQuantileUsesObservedMax) {
  // Overflow samples have no nominal upper edge; the observed max caps the
  // interpolation instead of returning an unbounded estimate.
  Histogram h({1.0});
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 150.0);  // midpoint of [100, 200]
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);
}

TEST(MetricsTest, RegistryObserveAndQuantile) {
  MetricsRegistry reg;
  for (int i = 0; i < 100; ++i) reg.observe("req.latency", 0.001 * (i + 1));
  ASSERT_NE(reg.histogram("req.latency"), nullptr);
  EXPECT_EQ(reg.histogram("req.latency")->count(), 100u);
  const double p50 = reg.quantile("req.latency", 0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 0.1);
  EXPECT_DOUBLE_EQ(reg.quantile("missing", 0.5), 0.0);
}

TEST(MetricsTest, HistogramsByPrefix) {
  MetricsRegistry reg;
  reg.observe("runtime.request.latency.local", 0.01);
  reg.observe("runtime.request.latency.forward", 0.05);
  reg.observe("sync.round.duration", 0.2);
  EXPECT_EQ(reg.histograms("runtime.request.latency.").size(), 2u);
  EXPECT_EQ(reg.histograms("sync.").size(), 1u);
  EXPECT_EQ(reg.histograms("").size(), 3u);
}

TEST(MetricsTest, FormatListsCountersAndHistograms) {
  MetricsRegistry reg;
  reg.set("sync.rounds", 2);
  reg.observe("sync.round.duration", 0.25);
  const std::string text = reg.format();
  EXPECT_NE(text.find("sync.rounds"), std::string::npos);
  EXPECT_NE(text.find("sync.round.duration"), std::string::npos);
}

}  // namespace
}  // namespace edgstr::util
