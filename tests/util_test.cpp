#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace edgstr::util {
namespace {

// ------------------------------------------------------------------ Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntThrowsOnInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 2), std::invalid_argument);
}

TEST(RngTest, NormalHasRoughlyRightMoments) {
  Rng rng(42);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  Rng rng(5);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(RngTest, TokenHasRequestedLength) {
  Rng rng(3);
  EXPECT_EQ(rng.token(12).size(), 12u);
  EXPECT_EQ(rng.token(0).size(), 0u);
}

TEST(RngTest, IndexThrowsOnEmptyRange) {
  Rng rng(3);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------- stats --

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SummaryTest, QuantileInterpolates) {
  Summary s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
}

TEST(SummaryTest, QuantileRejectsOutOfRange) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(SummaryTest, MergeCombinesSamples) {
  Summary a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(StatsTest, BoxStatsOrdering) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  const BoxStats box = box_stats(s);
  EXPECT_LT(box.min, box.q1);
  EXPECT_LT(box.q1, box.median);
  EXPECT_LT(box.median, box.q3);
  EXPECT_LT(box.q3, box.max);
}

TEST(StatsTest, LinearRegressionExactLine) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {3, 5, 7, 9};  // y = 2x + 1
  const LinearFit fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(StatsTest, LinearRegressionNeedsTwoPoints) {
  EXPECT_THROW(linear_regression({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(linear_regression({1.0, 2.0}, {2.0}), std::invalid_argument);
}

TEST(StatsTest, LinearRegressionDegenerateXs) {
  const LinearFit fit = linear_regression({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

// -------------------------------------------------------------- strings --

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, ReplaceAllOccurrences) {
  EXPECT_EQ(replace_all("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(StringsTest, Fnv1aStableAndDiscriminating) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(StringsTest, FormatBytesUnits) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(3 * 1024.0 * 1024.0), "3.00 MB");
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

// -------------------------------------------------------------- logging --

TEST(LoggingTest, SinkReceivesMessagesAboveThreshold) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel level, std::string_view msg) {
    captured.push_back(std::string(to_string(level)) + ":" + std::string(msg));
  });
  set_log_level(LogLevel::kInfo);
  EDGSTR_DEBUG() << "hidden";
  EDGSTR_INFO() << "shown " << 42;
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "INFO:shown 42");
}

}  // namespace
}  // namespace edgstr::util
