// Property-based CRDT suite: strong eventual consistency under random
// concurrent updates and delivery orders. Parameterized over seeds so each
// instantiation explores a different interleaving.
#include <gtest/gtest.h>

#include "crdt/gcounter.h"
#include "crdt/json_doc.h"
#include "crdt/lww.h"
#include "crdt/orset.h"
#include "crdt/table.h"
#include "util/rng.h"

namespace edgstr::crdt {
namespace {

class CrdtPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// ---- LwwMap: merge is commutative, associative, idempotent --------------

LwwMap random_lww(util::Rng& rng, const std::string& replica) {
  LwwMap m;
  const int ops = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 4));
    const Stamp stamp{static_cast<std::uint64_t>(rng.uniform_int(1, 20)), replica};
    if (rng.chance(0.25)) {
      m.remove(key, stamp);
    } else {
      m.put(key, json::Value(static_cast<double>(rng.uniform_int(0, 99))), stamp);
    }
  }
  return m;
}

TEST_P(CrdtPropertyTest, LwwMapMergeCommutative) {
  util::Rng rng(GetParam());
  const LwwMap a = random_lww(rng, "a");
  const LwwMap b = random_lww(rng, "b");
  LwwMap ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
}

TEST_P(CrdtPropertyTest, LwwMapMergeAssociative) {
  util::Rng rng(GetParam() ^ 0x5555);
  const LwwMap a = random_lww(rng, "a");
  const LwwMap b = random_lww(rng, "b");
  const LwwMap c = random_lww(rng, "c");
  LwwMap left = a;   // (a ∪ b) ∪ c
  left.merge(b);
  left.merge(c);
  LwwMap bc = b;     // a ∪ (b ∪ c)
  bc.merge(c);
  LwwMap right = a;
  right.merge(bc);
  EXPECT_TRUE(left == right);
}

TEST_P(CrdtPropertyTest, LwwMapMergeIdempotent) {
  util::Rng rng(GetParam() ^ 0xaaaa);
  const LwwMap a = random_lww(rng, "a");
  const LwwMap b = random_lww(rng, "b");
  LwwMap once = a, twice = a;
  once.merge(b);
  twice.merge(b);
  twice.merge(b);
  EXPECT_TRUE(once == twice);
}

// ---- OrSet: same algebraic laws ------------------------------------------

OrSet random_orset(util::Rng& rng, const std::string& replica) {
  OrSet s;
  const int ops = static_cast<int>(rng.uniform_int(1, 10));
  for (int i = 0; i < ops; ++i) {
    const std::string el = "e" + std::to_string(rng.uniform_int(0, 3));
    if (rng.chance(0.3)) s.remove(el);
    else s.add(el, replica);
  }
  return s;
}

TEST_P(CrdtPropertyTest, OrSetMergeCommutative) {
  util::Rng rng(GetParam());
  const OrSet a = random_orset(rng, "a");
  const OrSet b = random_orset(rng, "b");
  OrSet ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
}

TEST_P(CrdtPropertyTest, OrSetMergeIdempotent) {
  util::Rng rng(GetParam() ^ 0x77);
  const OrSet a = random_orset(rng, "a");
  const OrSet b = random_orset(rng, "b");
  OrSet once = a, twice = a;
  once.merge(b);
  twice.merge(b);
  twice.merge(b);
  EXPECT_TRUE(once == twice);
}

// ---- GCounter -------------------------------------------------------------

TEST_P(CrdtPropertyTest, GCounterValueEqualsTotalIncrements) {
  util::Rng rng(GetParam());
  GCounter a, b, c;
  std::uint64_t total = 0;
  GCounter* replicas[3] = {&a, &b, &c};
  const char* names[3] = {"a", "b", "c"};
  for (int i = 0; i < 30; ++i) {
    const std::size_t r = rng.index(3);
    const std::uint64_t by = static_cast<std::uint64_t>(rng.uniform_int(1, 5));
    replicas[r]->increment(names[r], by);
    total += by;
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.value(), total);
  // Merging in another order gives the same value.
  c.merge(b);
  c.merge(a);
  EXPECT_EQ(c.value(), total);
}

// ---- CrdtJson: convergence under random op exchange ------------------------

TEST_P(CrdtPropertyTest, CrdtJsonThreeReplicasConvergeViaStar) {
  util::Rng rng(GetParam());
  CrdtJson cloud("cloud"), e0("e0"), e1("e1");
  const json::Value base = json::Value::object({{"v", 0}});
  cloud.initialize(base);
  e0.initialize(base);
  e1.initialize(base);

  CrdtJson* replicas[3] = {&cloud, &e0, &e1};
  for (int round = 0; round < 6; ++round) {
    // Random local writes.
    for (CrdtJson* r : replicas) {
      const int writes = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < writes; ++i) {
        r->set("k" + std::to_string(rng.uniform_int(0, 4)),
               json::Value(static_cast<double>(rng.uniform_int(0, 999))));
      }
    }
    // Star exchange in random edge order.
    std::vector<CrdtJson*> edges = {&e0, &e1};
    rng.shuffle(edges);
    for (CrdtJson* edge : edges) {
      cloud.applyChanges(edge->getChanges(cloud.version()));
      edge->applyChanges(cloud.getChanges(edge->version()));
    }
  }
  // One final full exchange to flush stragglers.
  for (CrdtJson* edge : {&e0, &e1}) {
    cloud.applyChanges(edge->getChanges(cloud.version()));
  }
  for (CrdtJson* edge : {&e0, &e1}) {
    edge->applyChanges(cloud.getChanges(edge->version()));
  }
  EXPECT_TRUE(e0.converged_with(cloud));
  EXPECT_TRUE(e1.converged_with(cloud));
  EXPECT_TRUE(e0.converged_with(e1));
}

// ---- CrdtTable: convergence with random SQL workloads ----------------------

TEST_P(CrdtPropertyTest, CrdtTableReplicasConvergeUnderRandomWorkload) {
  util::Rng rng(GetParam());
  sqldb::Database seed;
  seed.execute("CREATE TABLE t (k, v)");
  seed.execute("INSERT INTO t (k, v) VALUES ('seed', 0)");
  const json::Value snap = seed.snapshot();

  sqldb::Database d_cloud, d_e0, d_e1;
  CrdtTable cloud("cloud", &d_cloud), e0("e0", &d_e0), e1("e1", &d_e1);
  cloud.initialize(snap);
  e0.initialize(snap);
  e1.initialize(snap);

  struct Rep {
    sqldb::Database* db;
    CrdtTable* table;
  };
  std::vector<Rep> reps = {{&d_e0, &e0}, {&d_e1, &e1}, {&d_cloud, &cloud}};

  for (int round = 0; round < 5; ++round) {
    for (auto& rep : reps) {
      const int ops = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < ops; ++i) {
        const double roll = rng.next_double();
        if (roll < 0.6) {
          rep.db->execute("INSERT INTO t (k, v) VALUES (?, ?)",
                          {sqldb::SqlValue("k" + std::to_string(rng.uniform_int(0, 50))),
                           sqldb::SqlValue(rng.uniform_int(0, 9))});
        } else if (roll < 0.85) {
          rep.db->execute("UPDATE t SET v = ? WHERE k = 'seed'",
                          {sqldb::SqlValue(rng.uniform_int(10, 99))});
        } else {
          rep.db->execute("DELETE FROM t WHERE v = ?", {sqldb::SqlValue(rng.uniform_int(0, 9))});
        }
      }
      rep.table->record_local_mutations();
    }
    for (CrdtTable* edge : {&e0, &e1}) {
      cloud.applyChanges(edge->getChanges(cloud.version()));
      edge->applyChanges(cloud.getChanges(edge->version()));
    }
  }
  // Final flush.
  for (CrdtTable* edge : {&e0, &e1}) cloud.applyChanges(edge->getChanges(cloud.version()));
  for (CrdtTable* edge : {&e0, &e1}) edge->applyChanges(cloud.getChanges(edge->version()));

  EXPECT_TRUE(e0.converged_with(cloud));
  EXPECT_TRUE(e1.converged_with(cloud));
  // Materialized databases agree on live content.
  EXPECT_EQ(d_e0.execute("SELECT * FROM t").rows.size(),
            d_cloud.execute("SELECT * FROM t").rows.size());
  EXPECT_EQ(d_e1.execute("SELECT * FROM t").rows.size(),
            d_cloud.execute("SELECT * FROM t").rows.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrdtPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace edgstr::crdt
// NOTE: appended suite — RGA convergence properties.
#include "crdt/rga.h"

namespace edgstr::crdt {
namespace {

class RgaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RgaPropertyTest, ThreeReplicasConvergeUnderRandomEdits) {
  util::Rng rng(GetParam());
  Rga a("a"), b("b"), hub("hub");
  Rga* replicas[3] = {&a, &b, &hub};

  for (int round = 0; round < 6; ++round) {
    for (Rga* r : replicas) {
      const int edits = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < edits; ++i) {
        const auto entries = r->entries();
        if (!entries.empty() && rng.chance(0.25)) {
          r->erase(entries[rng.index(entries.size())].first);
        } else if (!entries.empty() && rng.chance(0.4)) {
          r->insert_after(entries[rng.index(entries.size())].first,
                          json::Value(static_cast<double>(rng.uniform_int(0, 99))));
        } else {
          r->push_back(json::Value(static_cast<double>(rng.uniform_int(0, 99))));
        }
      }
    }
    // Star exchange through the hub, random order.
    std::vector<Rga*> edges = {&a, &b};
    rng.shuffle(edges);
    for (Rga* edge : edges) {
      hub.applyChanges(edge->getChanges(hub.version()));
      edge->applyChanges(hub.getChanges(edge->version()));
    }
  }
  for (Rga* edge : {&a, &b}) hub.applyChanges(edge->getChanges(hub.version()));
  for (Rga* edge : {&a, &b}) edge->applyChanges(hub.getChanges(edge->version()));

  EXPECT_TRUE(a.converged_with(hub));
  EXPECT_TRUE(b.converged_with(hub));
  EXPECT_TRUE(a.converged_with(b));
}

TEST_P(RgaPropertyTest, ConcurrentAppendsNeverLoseElements) {
  util::Rng rng(GetParam() ^ 0x1111);
  Rga a("a"), b("b");
  std::size_t total = 0;
  for (int round = 0; round < 4; ++round) {
    const int na = static_cast<int>(rng.uniform_int(0, 4));
    const int nb = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < na; ++i) a.push_back(json::Value("a" + std::to_string(total++)));
    for (int i = 0; i < nb; ++i) b.push_back(json::Value("b" + std::to_string(total++)));
    b.applyChanges(a.getChanges(b.version()));
    a.applyChanges(b.getChanges(a.version()));
  }
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_EQ(a.size(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RgaPropertyTest,
                         ::testing::Values(3, 7, 11, 19, 23, 31, 43, 59));

}  // namespace
}  // namespace edgstr::crdt
// NOTE: appended suite — ReplicatedDoc-uniform properties.
//
// CrdtTable, CrdtFiles, and CrdtJson each get bespoke coverage above, but
// the replication plane only ever sees them through crdt::ReplicatedDoc.
// This suite drives all three through that one interface: seeded random
// mutations on the backing view harvested by record_local(), op batches
// shipped via changes_since()/apply() in shuffled (sender, receiver)
// orders with some batches held back a round (commutativity: delivery
// order must not matter), deliberate duplicate delivery mid-run and a
// whole-log re-delivery at the end (idempotence), and state_digest()
// equality across replicas after the flush (convergence). Every
// expectation carries the failing seed for replay.
#include <functional>
#include <utility>

#include "crdt/files.h"

namespace edgstr::crdt {
namespace {

/// One replica seen purely through the uniform interface, plus a
/// type-specific hook that performs one random mutation on its backing
/// view (SQL statement, VFS write, JSON set, ...).
struct UniformReplica {
  ReplicatedDoc* doc = nullptr;
  std::function<void(util::Rng&)> mutate;
};

struct JsonFleet {
  CrdtJson cloud{"cloud"}, e0{"e0"}, e1{"e1"};
  std::vector<UniformReplica> reps;
  JsonFleet() {
    const json::Value base = json::Value::object({{"v", 0.0}});
    for (CrdtJson* d : {&cloud, &e0, &e1}) {
      d->initialize(base);
      reps.push_back({d, [d](util::Rng& rng) {
                        d->set("k" + std::to_string(rng.uniform_int(0, 4)),
                               json::Value(double(rng.uniform_int(0, 999))));
                      }});
    }
  }
};

struct TableFleet {
  sqldb::Database d_cloud, d_e0, d_e1;
  CrdtTable cloud{"cloud", &d_cloud}, e0{"e0", &d_e0}, e1{"e1", &d_e1};
  std::vector<UniformReplica> reps;
  TableFleet() {
    sqldb::Database seed;
    seed.execute("CREATE TABLE t (k, v)");
    seed.execute("INSERT INTO t (k, v) VALUES ('seed', 0)");
    const json::Value snap = seed.snapshot();
    const std::pair<sqldb::Database*, CrdtTable*> all[] = {
        {&d_cloud, &cloud}, {&d_e0, &e0}, {&d_e1, &e1}};
    for (const auto& [db, table] : all) {
      table->initialize(snap);
      reps.push_back({table, [db = db](util::Rng& rng) {
                        const double roll = rng.next_double();
                        if (roll < 0.6) {
                          db->execute("INSERT INTO t (k, v) VALUES (?, ?)",
                                      {sqldb::SqlValue("k" + std::to_string(rng.uniform_int(0, 30))),
                                       sqldb::SqlValue(rng.uniform_int(0, 9))});
                        } else if (roll < 0.85) {
                          db->execute("UPDATE t SET v = ? WHERE k = 'seed'",
                                      {sqldb::SqlValue(rng.uniform_int(10, 99))});
                        } else {
                          db->execute("DELETE FROM t WHERE v = ?",
                                      {sqldb::SqlValue(rng.uniform_int(0, 9))});
                        }
                      }});
    }
  }
};

struct FilesFleet {
  vfs::Vfs f_cloud, f_e0, f_e1;
  CrdtFiles cloud{"cloud", &f_cloud}, e0{"e0", &f_e0}, e1{"e1", &f_e1};
  std::vector<UniformReplica> reps;
  FilesFleet() {
    vfs::Vfs seed;
    seed.write("data/readme.txt", "init");
    seed.write("data/events.log", "t0\n");
    const json::Value snap = seed.snapshot();
    const std::pair<vfs::Vfs*, CrdtFiles*> all[] = {
        {&f_cloud, &cloud}, {&f_e0, &e0}, {&f_e1, &e1}};
    for (const auto& [fs, files] : all) {
      files->initialize(snap);
      reps.push_back({files, [fs = fs](util::Rng& rng) {
                        const double roll = rng.next_double();
                        if (roll < 0.5) {
                          fs->write("data/f" + std::to_string(rng.uniform_int(0, 3)) + ".txt",
                                    rng.token(6));
                        } else if (roll < 0.8) {
                          fs->append("data/events.log", rng.token(4) + "\n");
                        } else {
                          fs->remove("data/f" + std::to_string(rng.uniform_int(0, 3)) + ".txt");
                        }
                      }});
    }
  }
};

/// The uniform driver: everything below this line touches the docs only
/// through the ReplicatedDoc interface.
void drive_uniform_properties(std::vector<UniformReplica>& reps, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = reps.size();

  for (int round = 0; round < 6; ++round) {
    for (UniformReplica& r : reps) {
      const int muts = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < muts; ++i) r.mutate(rng);
      r.doc->record_local();
    }
    // Ship batches in a shuffled (sender, receiver) order and hold some
    // back a round: if delivery order mattered, digests would diverge.
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a != b) pairs.emplace_back(a, b);
      }
    }
    rng.shuffle(pairs);
    for (const auto& [from, to] : pairs) {
      if (rng.chance(0.25)) continue;
      const std::vector<Op> batch = reps[from].doc->changes_since(reps[to].doc->version());
      reps[to].doc->apply(batch);
      if (rng.chance(0.3)) {
        // Duplicate delivery mid-run: apply must be a no-op the second time.
        const std::string digest = reps[to].doc->state_digest();
        EXPECT_EQ(reps[to].doc->apply(batch), 0u) << "seed " << seed << " round " << round;
        EXPECT_EQ(reps[to].doc->state_digest(), digest) << "seed " << seed << " round " << round;
      }
    }
  }

  // Flush: one all-pairs pass delivers every retained op directly; the
  // second catches anything relayed into a replica late in the first.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a != b) reps[b].doc->apply(reps[a].doc->changes_since(reps[b].doc->version()));
      }
    }
  }

  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(reps[i].doc->state_digest(), reps[0].doc->state_digest())
        << "seed " << seed << ": replica " << i << " diverged";
  }

  // Whole-log re-delivery is a no-op: the strongest idempotence check the
  // interface allows without reaching into a concrete type.
  const std::vector<Op> everything = reps[0].doc->changes_since(VersionVector{});
  const std::string before = reps[1].doc->state_digest();
  EXPECT_EQ(reps[1].doc->apply(everything), 0u) << "seed " << seed;
  EXPECT_EQ(reps[1].doc->state_digest(), before) << "seed " << seed;
}

class ReplicatedDocPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplicatedDocPropertyTest, CrdtJsonHoldsUniformProperties) {
  JsonFleet fleet;
  drive_uniform_properties(fleet.reps, GetParam());
}

TEST_P(ReplicatedDocPropertyTest, CrdtTableHoldsUniformProperties) {
  TableFleet fleet;
  drive_uniform_properties(fleet.reps, GetParam());
}

TEST_P(ReplicatedDocPropertyTest, CrdtFilesHoldsUniformProperties) {
  FilesFleet fleet;
  drive_uniform_properties(fleet.reps, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatedDocPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace edgstr::crdt
