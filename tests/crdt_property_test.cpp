// Property-based CRDT suite: strong eventual consistency under random
// concurrent updates and delivery orders. Parameterized over seeds so each
// instantiation explores a different interleaving.
#include <gtest/gtest.h>

#include "crdt/gcounter.h"
#include "crdt/json_doc.h"
#include "crdt/lww.h"
#include "crdt/orset.h"
#include "crdt/table.h"
#include "util/rng.h"

namespace edgstr::crdt {
namespace {

class CrdtPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// ---- LwwMap: merge is commutative, associative, idempotent --------------

LwwMap random_lww(util::Rng& rng, const std::string& replica) {
  LwwMap m;
  const int ops = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 4));
    const Stamp stamp{static_cast<std::uint64_t>(rng.uniform_int(1, 20)), replica};
    if (rng.chance(0.25)) {
      m.remove(key, stamp);
    } else {
      m.put(key, json::Value(static_cast<double>(rng.uniform_int(0, 99))), stamp);
    }
  }
  return m;
}

TEST_P(CrdtPropertyTest, LwwMapMergeCommutative) {
  util::Rng rng(GetParam());
  const LwwMap a = random_lww(rng, "a");
  const LwwMap b = random_lww(rng, "b");
  LwwMap ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
}

TEST_P(CrdtPropertyTest, LwwMapMergeAssociative) {
  util::Rng rng(GetParam() ^ 0x5555);
  const LwwMap a = random_lww(rng, "a");
  const LwwMap b = random_lww(rng, "b");
  const LwwMap c = random_lww(rng, "c");
  LwwMap left = a;   // (a ∪ b) ∪ c
  left.merge(b);
  left.merge(c);
  LwwMap bc = b;     // a ∪ (b ∪ c)
  bc.merge(c);
  LwwMap right = a;
  right.merge(bc);
  EXPECT_TRUE(left == right);
}

TEST_P(CrdtPropertyTest, LwwMapMergeIdempotent) {
  util::Rng rng(GetParam() ^ 0xaaaa);
  const LwwMap a = random_lww(rng, "a");
  const LwwMap b = random_lww(rng, "b");
  LwwMap once = a, twice = a;
  once.merge(b);
  twice.merge(b);
  twice.merge(b);
  EXPECT_TRUE(once == twice);
}

// ---- OrSet: same algebraic laws ------------------------------------------

OrSet random_orset(util::Rng& rng, const std::string& replica) {
  OrSet s;
  const int ops = static_cast<int>(rng.uniform_int(1, 10));
  for (int i = 0; i < ops; ++i) {
    const std::string el = "e" + std::to_string(rng.uniform_int(0, 3));
    if (rng.chance(0.3)) s.remove(el);
    else s.add(el, replica);
  }
  return s;
}

TEST_P(CrdtPropertyTest, OrSetMergeCommutative) {
  util::Rng rng(GetParam());
  const OrSet a = random_orset(rng, "a");
  const OrSet b = random_orset(rng, "b");
  OrSet ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
}

TEST_P(CrdtPropertyTest, OrSetMergeIdempotent) {
  util::Rng rng(GetParam() ^ 0x77);
  const OrSet a = random_orset(rng, "a");
  const OrSet b = random_orset(rng, "b");
  OrSet once = a, twice = a;
  once.merge(b);
  twice.merge(b);
  twice.merge(b);
  EXPECT_TRUE(once == twice);
}

// ---- GCounter -------------------------------------------------------------

TEST_P(CrdtPropertyTest, GCounterValueEqualsTotalIncrements) {
  util::Rng rng(GetParam());
  GCounter a, b, c;
  std::uint64_t total = 0;
  GCounter* replicas[3] = {&a, &b, &c};
  const char* names[3] = {"a", "b", "c"};
  for (int i = 0; i < 30; ++i) {
    const std::size_t r = rng.index(3);
    const std::uint64_t by = static_cast<std::uint64_t>(rng.uniform_int(1, 5));
    replicas[r]->increment(names[r], by);
    total += by;
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.value(), total);
  // Merging in another order gives the same value.
  c.merge(b);
  c.merge(a);
  EXPECT_EQ(c.value(), total);
}

// ---- CrdtJson: convergence under random op exchange ------------------------

TEST_P(CrdtPropertyTest, CrdtJsonThreeReplicasConvergeViaStar) {
  util::Rng rng(GetParam());
  CrdtJson cloud("cloud"), e0("e0"), e1("e1");
  const json::Value base = json::Value::object({{"v", 0}});
  cloud.initialize(base);
  e0.initialize(base);
  e1.initialize(base);

  CrdtJson* replicas[3] = {&cloud, &e0, &e1};
  for (int round = 0; round < 6; ++round) {
    // Random local writes.
    for (CrdtJson* r : replicas) {
      const int writes = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < writes; ++i) {
        r->set("k" + std::to_string(rng.uniform_int(0, 4)),
               json::Value(static_cast<double>(rng.uniform_int(0, 999))));
      }
    }
    // Star exchange in random edge order.
    std::vector<CrdtJson*> edges = {&e0, &e1};
    rng.shuffle(edges);
    for (CrdtJson* edge : edges) {
      cloud.applyChanges(edge->getChanges(cloud.version()));
      edge->applyChanges(cloud.getChanges(edge->version()));
    }
  }
  // One final full exchange to flush stragglers.
  for (CrdtJson* edge : {&e0, &e1}) {
    cloud.applyChanges(edge->getChanges(cloud.version()));
  }
  for (CrdtJson* edge : {&e0, &e1}) {
    edge->applyChanges(cloud.getChanges(edge->version()));
  }
  EXPECT_TRUE(e0.converged_with(cloud));
  EXPECT_TRUE(e1.converged_with(cloud));
  EXPECT_TRUE(e0.converged_with(e1));
}

// ---- CrdtTable: convergence with random SQL workloads ----------------------

TEST_P(CrdtPropertyTest, CrdtTableReplicasConvergeUnderRandomWorkload) {
  util::Rng rng(GetParam());
  sqldb::Database seed;
  seed.execute("CREATE TABLE t (k, v)");
  seed.execute("INSERT INTO t (k, v) VALUES ('seed', 0)");
  const json::Value snap = seed.snapshot();

  sqldb::Database d_cloud, d_e0, d_e1;
  CrdtTable cloud("cloud", &d_cloud), e0("e0", &d_e0), e1("e1", &d_e1);
  cloud.initialize(snap);
  e0.initialize(snap);
  e1.initialize(snap);

  struct Rep {
    sqldb::Database* db;
    CrdtTable* table;
  };
  std::vector<Rep> reps = {{&d_e0, &e0}, {&d_e1, &e1}, {&d_cloud, &cloud}};

  for (int round = 0; round < 5; ++round) {
    for (auto& rep : reps) {
      const int ops = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < ops; ++i) {
        const double roll = rng.next_double();
        if (roll < 0.6) {
          rep.db->execute("INSERT INTO t (k, v) VALUES (?, ?)",
                          {sqldb::SqlValue("k" + std::to_string(rng.uniform_int(0, 50))),
                           sqldb::SqlValue(rng.uniform_int(0, 9))});
        } else if (roll < 0.85) {
          rep.db->execute("UPDATE t SET v = ? WHERE k = 'seed'",
                          {sqldb::SqlValue(rng.uniform_int(10, 99))});
        } else {
          rep.db->execute("DELETE FROM t WHERE v = ?", {sqldb::SqlValue(rng.uniform_int(0, 9))});
        }
      }
      rep.table->record_local_mutations();
    }
    for (CrdtTable* edge : {&e0, &e1}) {
      cloud.applyChanges(edge->getChanges(cloud.version()));
      edge->applyChanges(cloud.getChanges(edge->version()));
    }
  }
  // Final flush.
  for (CrdtTable* edge : {&e0, &e1}) cloud.applyChanges(edge->getChanges(cloud.version()));
  for (CrdtTable* edge : {&e0, &e1}) edge->applyChanges(cloud.getChanges(edge->version()));

  EXPECT_TRUE(e0.converged_with(cloud));
  EXPECT_TRUE(e1.converged_with(cloud));
  // Materialized databases agree on live content.
  EXPECT_EQ(d_e0.execute("SELECT * FROM t").rows.size(),
            d_cloud.execute("SELECT * FROM t").rows.size());
  EXPECT_EQ(d_e1.execute("SELECT * FROM t").rows.size(),
            d_cloud.execute("SELECT * FROM t").rows.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrdtPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace edgstr::crdt
// NOTE: appended suite — RGA convergence properties.
#include "crdt/rga.h"

namespace edgstr::crdt {
namespace {

class RgaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RgaPropertyTest, ThreeReplicasConvergeUnderRandomEdits) {
  util::Rng rng(GetParam());
  Rga a("a"), b("b"), hub("hub");
  Rga* replicas[3] = {&a, &b, &hub};

  for (int round = 0; round < 6; ++round) {
    for (Rga* r : replicas) {
      const int edits = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < edits; ++i) {
        const auto entries = r->entries();
        if (!entries.empty() && rng.chance(0.25)) {
          r->erase(entries[rng.index(entries.size())].first);
        } else if (!entries.empty() && rng.chance(0.4)) {
          r->insert_after(entries[rng.index(entries.size())].first,
                          json::Value(static_cast<double>(rng.uniform_int(0, 99))));
        } else {
          r->push_back(json::Value(static_cast<double>(rng.uniform_int(0, 99))));
        }
      }
    }
    // Star exchange through the hub, random order.
    std::vector<Rga*> edges = {&a, &b};
    rng.shuffle(edges);
    for (Rga* edge : edges) {
      hub.applyChanges(edge->getChanges(hub.version()));
      edge->applyChanges(hub.getChanges(edge->version()));
    }
  }
  for (Rga* edge : {&a, &b}) hub.applyChanges(edge->getChanges(hub.version()));
  for (Rga* edge : {&a, &b}) edge->applyChanges(hub.getChanges(edge->version()));

  EXPECT_TRUE(a.converged_with(hub));
  EXPECT_TRUE(b.converged_with(hub));
  EXPECT_TRUE(a.converged_with(b));
}

TEST_P(RgaPropertyTest, ConcurrentAppendsNeverLoseElements) {
  util::Rng rng(GetParam() ^ 0x1111);
  Rga a("a"), b("b");
  std::size_t total = 0;
  for (int round = 0; round < 4; ++round) {
    const int na = static_cast<int>(rng.uniform_int(0, 4));
    const int nb = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < na; ++i) a.push_back(json::Value("a" + std::to_string(total++)));
    for (int i = 0; i < nb; ++i) b.push_back(json::Value("b" + std::to_string(total++)));
    b.applyChanges(a.getChanges(b.version()));
    a.applyChanges(b.getChanges(a.version()));
  }
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_EQ(a.size(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RgaPropertyTest,
                         ::testing::Values(3, 7, 11, 19, 23, 31, 43, 59));

}  // namespace
}  // namespace edgstr::crdt
