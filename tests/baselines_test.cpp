#include <gtest/gtest.h>

#include "edgstr/baselines.h"
#include "runtime/node.h"

namespace edgstr::core {
namespace {

const char* kServer = R"JS(
var calls = 0;
app.get("/double", function (req, res) {
  var n = req.params.n;
  compute(20);
  calls = calls + 1;
  res.send({ doubled: n * 2, call: calls });
});
app.get("/pure", function (req, res) {
  var n = req.params.n;
  res.send({ square: n * n });
});
)JS";

struct World {
  netsim::Network net{5};
  runtime::Node cloud;

  World() : cloud(net.clock(), make_spec()) {
    cloud.host(std::make_unique<runtime::ServiceRuntime>(kServer));
    net.connect("client", "edgeP", netsim::LinkConfig::lan());
    net.connect("edgeP", "cloud", netsim::LinkConfig::limited_wan());
  }
  static runtime::NodeSpec make_spec() {
    runtime::NodeSpec s;
    s.name = "cloud";
    s.seconds_per_unit = 1e-5;
    s.request_overhead_s = 1e-3;
    return s;
  }
  http::HttpRequest request(const char* path, double n) {
    http::HttpRequest req;
    req.path = path;
    req.params = json::Value::object({{"n", n}});
    return req;
  }
  double timed(auto& proxy, const http::HttpRequest& req, http::HttpResponse* out = nullptr) {
    double latency = -1;
    bool done = false;
    proxy.request(req, [&](http::HttpResponse resp, double l) {
      if (out) *out = std::move(resp);
      latency = l;
      done = true;
    });
    while (!done && net.clock().step()) {
    }
    return latency;
  }
};

// ------------------------------------------------------------ CachingProxy --

TEST(CachingProxyTest, HitIsOrdersOfMagnitudeFasterThanMiss) {
  World w;
  CachingProxy proxy(w.net, "client", "edgeP", w.cloud);
  const http::HttpRequest req = w.request("/pure", 6);
  const double miss = w.timed(proxy, req);
  const double hit = w.timed(proxy, req);
  EXPECT_EQ(proxy.misses(), 1u);
  EXPECT_EQ(proxy.hits(), 1u);
  EXPECT_LT(hit * 20, miss);
}

TEST(CachingProxyTest, HitReturnsCachedBody) {
  World w;
  CachingProxy proxy(w.net, "client", "edgeP", w.cloud);
  const http::HttpRequest req = w.request("/pure", 6);
  http::HttpResponse first, second;
  w.timed(proxy, req, &first);
  w.timed(proxy, req, &second);
  EXPECT_EQ(first.body, second.body);
  EXPECT_DOUBLE_EQ(second.body["square"].as_number(), 36.0);
}

TEST(CachingProxyTest, DistinctParamsMissSeparately) {
  World w;
  CachingProxy proxy(w.net, "client", "edgeP", w.cloud);
  w.timed(proxy, w.request("/pure", 1));
  w.timed(proxy, w.request("/pure", 2));
  EXPECT_EQ(proxy.misses(), 2u);
  EXPECT_EQ(proxy.hits(), 0u);
}

TEST(CachingProxyTest, StaleEntriesRevalidate) {
  World w;
  CachingConfig config;
  config.revalidate_every = 2;
  CachingProxy proxy(w.net, "client", "edgeP", w.cloud, config);
  const http::HttpRequest req = w.request("/pure", 3);
  w.timed(proxy, req);  // miss, fills
  w.timed(proxy, req);  // hit 1
  w.timed(proxy, req);  // hit 2
  w.timed(proxy, req);  // forced revalidation -> miss
  EXPECT_EQ(proxy.hits(), 2u);
  EXPECT_EQ(proxy.misses(), 2u);
}

TEST(CachingProxyTest, CachedStatefulServiceServesStaleResults) {
  // The staleness hazard of §IV-E2: /double bumps a counter, but the cache
  // keeps returning the first counter value — exactly why caching is
  // inapplicable to stateful services.
  World w;
  CachingProxy proxy(w.net, "client", "edgeP", w.cloud);
  const http::HttpRequest req = w.request("/double", 5);
  http::HttpResponse first, second;
  w.timed(proxy, req, &first);
  w.timed(proxy, req, &second);
  EXPECT_DOUBLE_EQ(first.body["call"].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(second.body["call"].as_number(), 1.0);  // stale!
}

TEST(CachingProxyTest, ErrorsAreNotCached) {
  World w;
  CachingProxy proxy(w.net, "client", "edgeP", w.cloud);
  http::HttpRequest req;
  req.path = "/missing";
  http::HttpResponse resp;
  w.timed(proxy, req, &resp);
  EXPECT_EQ(resp.status, 404);
  w.timed(proxy, req, &resp);
  EXPECT_EQ(proxy.misses(), 2u);  // the 404 was never cached
}

// ----------------------------------------------------------- BatchingProxy --

TEST(BatchingProxyTest, FullBatchShipsTogether) {
  World w;
  BatchingConfig config;
  config.batch_size = 3;
  config.flush_timeout_s = 0;  // no timer: only size triggers
  BatchingProxy proxy(w.net, "client", "edgeP", w.cloud, config);
  std::vector<double> latencies;
  std::vector<double> results;
  for (int i = 1; i <= 3; ++i) {
    proxy.request(w.request("/pure", i), [&](http::HttpResponse resp, double latency) {
      latencies.push_back(latency);
      results.push_back(resp.body["square"].as_number());
    });
  }
  w.net.clock().run();
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_EQ(proxy.batches_sent(), 1u);
  EXPECT_EQ(results, (std::vector<double>{1, 4, 9}));  // responses matched up
}

TEST(BatchingProxyTest, PartialBatchFlushesOnTimeout) {
  World w;
  BatchingConfig config;
  config.batch_size = 10;
  config.flush_timeout_s = 1.0;
  BatchingProxy proxy(w.net, "client", "edgeP", w.cloud, config);
  bool done = false;
  proxy.request(w.request("/pure", 4), [&](http::HttpResponse resp, double) {
    EXPECT_DOUBLE_EQ(resp.body["square"].as_number(), 16.0);
    done = true;
  });
  w.net.clock().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(proxy.batches_sent(), 1u);
}

TEST(BatchingProxyTest, ManualFlushShipsTail) {
  World w;
  BatchingConfig config;
  config.batch_size = 10;
  config.flush_timeout_s = 0;
  BatchingProxy proxy(w.net, "client", "edgeP", w.cloud, config);
  bool done = false;
  proxy.request(w.request("/pure", 2), [&](http::HttpResponse, double) { done = true; });
  // Deliver the LAN leg so the request is enqueued, then flush manually.
  w.net.clock().run();
  EXPECT_FALSE(done);
  proxy.flush();
  w.net.clock().run();
  EXPECT_TRUE(done);
}

TEST(BatchingProxyTest, BatchingAmortizesConnectionSetup) {
  // With per-message connection setup on the WAN, k batched requests pay
  // one handshake instead of k: the bulk turnaround beats k sequential
  // round trips in total.
  World w;
  netsim::LinkConfig wan = netsim::LinkConfig::limited_wan();
  wan.per_message_setup_s = 2 * wan.latency_s;
  w.net.connect("edgeP", "cloud", wan);
  w.net.connect("client", "cloud", wan);

  // Sequential unproxied total.
  runtime::TwoTierPath direct(w.net, "client", w.cloud);
  double sequential_total = 0;
  for (int i = 1; i <= 4; ++i) {
    sequential_total += w.timed(direct, w.request("/pure", i));
  }

  // Batched total: all four handed over at once.
  BatchingConfig config;
  config.batch_size = 4;
  BatchingProxy proxy(w.net, "client", "edgeP", w.cloud, config);
  double batch_total = 0;
  int completions = 0;
  for (int i = 1; i <= 4; ++i) {
    proxy.request(w.request("/pure", i), [&](http::HttpResponse, double latency) {
      batch_total = std::max(batch_total, latency);
      ++completions;
    });
  }
  w.net.clock().run();
  ASSERT_EQ(completions, 4);
  EXPECT_LT(batch_total, sequential_total);
}

// ------------------------------------------------------------ CrossIsaSync --

TEST(CrossIsaSyncTest, Arithmetic) {
  CrossIsaSync sync(1000);
  EXPECT_EQ(sync.state_bytes(), 1000u);
  EXPECT_EQ(sync.bytes_per_invocation(), 2000u);
  EXPECT_EQ(sync.bytes_for_rounds(5), 10000u);
}

TEST(CrossIsaSyncTest, RuntimeImageAddsToSnapshot) {
  const trace::Snapshot snap = trace::Snapshot::from_units(
      json::Value::object({{"tables", json::Value::array({})}}), json::Value::object({}),
      json::Value::object({}));
  const CrossIsaSync bare = CrossIsaSync::from_snapshot(snap);
  const CrossIsaSync with_image = CrossIsaSync::from_snapshot(snap, 1 << 20);
  EXPECT_EQ(with_image.state_bytes(), bare.state_bytes() + (1 << 20));
}

}  // namespace
}  // namespace edgstr::core
