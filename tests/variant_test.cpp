// Online multi-variant divergence checking (runtime::VariantHarness).
//
// The harness's job is to notice when two engine variants disagree about
// the same request. A detector is only trustworthy if it (a) stays silent
// on a correct system and (b) actually fires on a broken one — so these
// tests drive both directions: clean cross-checks over mixed read/write
// traffic must produce zero divergences, and a deliberately planted
// semantic fault (a test-only hook that skews the legacy shadow's data on
// every replay) must be flagged with the offending request and the
// RW-log delta attached.
#include <gtest/gtest.h>

#include "edgstr/deployment.h"
#include "edgstr/pipeline.h"
#include "apps/app.h"
#include "runtime/service_runtime.h"
#include "runtime/variant_harness.h"

namespace edgstr::runtime {
namespace {

constexpr const char* kService = R"JS(
db.query("CREATE TABLE readings (sensor, value)");
app.post("/ingest", function (req, res) {
  db.query("INSERT INTO readings (sensor, value) VALUES (?, ?)",
           [req.params.sensor, req.params.value]);
  res.send({ ok: 1 });
});
app.get("/summary", function (req, res) {
  var rows = db.query("SELECT sensor, value FROM readings");
  var total = 0;
  for (var i = 0; i < rows.length; i++) total += rows[i].value;
  res.send({ count: rows.length, total: total });
});
)JS";

http::HttpRequest ingest(const std::string& sensor, double value) {
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/ingest";
  req.params = json::Value::object({{"sensor", sensor}, {"value", value}});
  return req;
}

http::HttpRequest summary() {
  http::HttpRequest req;
  req.path = "/summary";
  return req;
}

/// fast (resolver on) + legacy (tree-walker), optionally with a fault
/// planted on the legacy shadow.
std::unique_ptr<VariantHarness> make_harness(std::function<void(ServiceRuntime&)> fault = {}) {
  std::vector<VariantSpec> specs(2);
  specs[0].name = "fast";
  specs[0].config.resolve = true;
  specs[1].name = "legacy";
  specs[1].config.resolve = false;
  specs[1].test_fault = std::move(fault);
  return std::make_unique<VariantHarness>(kService, std::move(specs));
}

TEST(VariantHarnessTest, CleanVariantsAgreeOnEveryRequest) {
  ServiceRuntime primary(kService);
  auto harness = make_harness();
  primary.set_variant_harness(harness.get());

  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(primary.handle(ingest("s" + std::to_string(i % 3), 10.0 * i)).failed);
    EXPECT_FALSE(primary.handle(summary()).failed);
  }
  EXPECT_EQ(harness->checks(), 12u);
  EXPECT_TRUE(harness->divergences().empty())
      << harness->divergences().front().kind << ": " << harness->divergences().front().detail;
}

TEST(VariantHarnessTest, FailedRequestsStillAgree) {
  ServiceRuntime primary(kService);
  auto harness = make_harness();
  primary.set_variant_harness(harness.get());
  http::HttpRequest missing;
  missing.path = "/nope";
  EXPECT_TRUE(primary.handle(missing).response.status == 404 ||
              primary.handle(missing).failed);
  EXPECT_TRUE(harness->divergences().empty());
}

TEST(VariantHarnessTest, PlantedSemanticFaultIsFlaggedWithRequestAndDelta) {
  ServiceRuntime primary(kService);
  // The fault skews every reading to 999999 on the legacy shadow after
  // each pre-state restore — any /summary over non-empty data must
  // diverge in both the response and the RW-log.
  auto harness = make_harness([](ServiceRuntime& rt) {
    rt.database().execute("UPDATE readings SET value = 999999");
  });
  primary.set_variant_harness(harness.get());

  ASSERT_FALSE(primary.handle(ingest("s0", 21.0)).failed);
  const std::size_t before = harness->divergences().size();
  ASSERT_FALSE(primary.handle(summary()).failed);
  ASSERT_GT(harness->divergences().size(), before) << "fault not detected";

  bool saw_response = false, saw_rwlog = false;
  for (const Divergence& d : harness->divergences()) {
    EXPECT_EQ(d.variant, "legacy");
    // Every divergence names the offending request.
    EXPECT_EQ(d.request.path, "/summary");
    EXPECT_FALSE(d.detail.empty());
    if (d.kind == "response") {
      saw_response = true;
      // The detail carries the disagreeing bodies (999999 visible).
      EXPECT_NE(d.detail.find("999999"), std::string::npos) << d.detail;
    }
    if (d.kind == "rwlog") saw_rwlog = true;
  }
  EXPECT_TRUE(saw_response);
  EXPECT_TRUE(saw_rwlog) << "RW-log delta missing from the divergence report";
}

TEST(VariantHarnessTest, DetachedHarnessCostsNothing) {
  ServiceRuntime primary(kService);
  EXPECT_EQ(primary.variant_harness(), nullptr);
  EXPECT_FALSE(primary.handle(ingest("s0", 1.0)).failed);
}

// ------------------------------------------------------------ deployment --

const core::TransformResult& transformed_sensor_hub() {
  static const core::TransformResult result = [] {
    const apps::SubjectApp& app = apps::sensor_hub();
    const http::TrafficRecorder traffic = core::record_traffic(app.server_source, app.workload);
    return core::Pipeline().transform(app.name, app.server_source, traffic);
  }();
  return result;
}

TEST(DeploymentVariantTest, CrossChecksEveryServedRequestCleanly) {
  const core::TransformResult& result = transformed_sensor_hub();
  ASSERT_TRUE(result.ok) << result.error;
  core::DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices.assign(2, cluster::DeviceProfile::rpi4());
  config.variant_check = true;
  core::ThreeTierDeployment three(result, config);

  std::size_t i = 0;
  for (const http::HttpRequest& req : apps::sensor_hub().workload) {
    three.request_sync(req, i++ % 2);
  }
  EXPECT_GT(three.variant_checks(), 0u);
  EXPECT_EQ(three.variant_divergence_count(), 0u);

  // The metrics snapshot exports the counters...
  const std::string snapshot = three.metrics_snapshot().dump();
  EXPECT_NE(snapshot.find("variant.checks"), std::string::npos);
  EXPECT_NE(snapshot.find("variant.divergence.count"), std::string::npos);
  // ...and only when harnesses exist (variant-off snapshots unchanged).
  core::DeploymentConfig off = config;
  off.variant_check = false;
  core::ThreeTierDeployment plain(result, off);
  EXPECT_EQ(plain.metrics_snapshot().dump().find("variant."), std::string::npos);
  EXPECT_EQ(plain.variant_checks(), 0u);
}

TEST(DeploymentVariantTest, PlantedFaultSurfacesInDivergenceCount) {
  const core::TransformResult& result = transformed_sensor_hub();
  ASSERT_TRUE(result.ok) << result.error;
  core::DeploymentConfig config;
  config.start_sync = false;
  config.variant_check = true;
  config.variant_test_fault = [](runtime::ServiceRuntime& rt) {
    rt.database().execute("UPDATE readings SET value = 999999");
  };
  core::ThreeTierDeployment three(result, config);

  for (const http::HttpRequest& req : apps::sensor_hub().workload) {
    three.request_sync(req, 0);
  }
  EXPECT_GT(three.variant_divergence_count(), 0u);
  const std::vector<runtime::Divergence> divergences = three.variant_divergences();
  ASSERT_FALSE(divergences.empty());
  EXPECT_EQ(divergences.front().variant, "legacy");
  EXPECT_FALSE(divergences.front().detail.empty());
}

}  // namespace
}  // namespace edgstr::runtime
