// Bytecode VM differentials and compiler goldens.
//
// The VM (InterpreterConfig::vm) must be observably identical to the
// tree-walker: same responses, same console output, same deterministic
// step counts, same instrumentation event stream, same error text. The
// parity helper runs every program on both engines and compares all of
// those at once, so a divergence fails with the exact program attached.
// The golden tests pin the compiler's output shape (disassembly is
// intern-order independent by construction), and the IC tests walk a
// property cache through the monomorphic hit -> shape-change miss ->
// refill lifecycle via the public hit/miss counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json/parse.h"
#include "minijs/chunk.h"
#include "minijs/compile.h"
#include "minijs/interpreter.h"
#include "minijs/parser.h"
#include "minijs/resolve.h"

namespace edgstr::minijs {
namespace {

/// Everything observable about one engine run of a `/t` service.
struct EngineRun {
  std::string body;
  int status = 0;
  std::string error;  ///< JsError text when the invoke threw
  std::uint64_t steps = 0;
  std::uint64_t slot_reads = 0;
  std::uint64_t slot_writes = 0;
  std::uint64_t named_reads = 0;
  std::uint64_t named_writes = 0;
  std::vector<std::string> console;
  std::vector<std::string> events;  ///< instrumentation hook stream
};

struct RecordingHooks : InstrumentationHooks {
  std::vector<std::string>* out;
  explicit RecordingHooks(std::vector<std::string>* o) : out(o) {}
  void on_declare(int stmt, util::Symbol name, const JsValue& v) override {
    out->push_back("D " + std::to_string(stmt) + " " + util::symbol_name(name) + " " +
                   v.to_display());
  }
  void on_read(int stmt, util::Symbol name, const JsValue& v) override {
    out->push_back("R " + std::to_string(stmt) + " " + util::symbol_name(name) + " " +
                   v.to_display());
  }
  void on_write(int stmt, util::Symbol name, const JsValue& v) override {
    out->push_back("W " + std::to_string(stmt) + " " + util::symbol_name(name) + " " +
                   v.to_display());
  }
  void on_invoke(int stmt, util::Symbol fn, const std::vector<JsValue>& args,
                 const JsValue& result) override {
    std::string line = "I " + std::to_string(stmt) + " " + util::symbol_name(fn) + "(";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) line += ",";
      line += args[i].to_display();
    }
    out->push_back(line + ")=" + result.to_display());
  }
};

EngineRun run_engine(const std::string& source, bool vm, bool hooks,
                     json::Value params = json::Value::object({})) {
  InterpreterConfig config;
  config.vm = vm;
  Interpreter interp(parse_program(source), config);
  EngineRun run;
  RecordingHooks recorder(&run.events);
  if (hooks) interp.set_hooks(&recorder);
  sqldb::Database db;
  vfs::Vfs fs;
  interp.bind_database(&db);
  interp.bind_vfs(&fs);
  try {
    interp.run_toplevel();
    http::HttpRequest req;
    req.verb = http::Verb::kGet;
    req.path = "/t";
    req.params = std::move(params);
    const http::HttpResponse resp = interp.invoke(http::Route{http::Verb::kGet, "/t"}, req);
    run.body = resp.body.dump();
    run.status = resp.status;
  } catch (const JsError& err) {
    run.error = err.what();
  }
  run.steps = interp.steps();
  run.slot_reads = interp.slot_reads();
  run.slot_writes = interp.slot_writes();
  run.named_reads = interp.named_reads();
  run.named_writes = interp.named_writes();
  run.console = interp.console_output();
  return run;
}

/// Runs `source` on the tree-walker and the VM (hooks off and on) and
/// requires identical observable behaviour everywhere.
void expect_parity(const std::string& source, json::Value params = json::Value::object({})) {
  for (const bool hooks : {false, true}) {
    SCOPED_TRACE(hooks ? "hooks on" : "hooks off");
    const EngineRun tree = run_engine(source, /*vm=*/false, hooks, params);
    const EngineRun vm = run_engine(source, /*vm=*/true, hooks, params);
    EXPECT_EQ(tree.body, vm.body);
    EXPECT_EQ(tree.status, vm.status);
    EXPECT_EQ(tree.error, vm.error);
    // Step totals match exactly on error-free runs. The tree-walker ticks
    // expression nodes pre-order and the VM post-order, so an *engine*
    // error thrown mid-expression can skip operator ticks the tree-walker
    // already counted; everything else is identical either way.
    if (tree.error.empty()) {
      EXPECT_EQ(tree.steps, vm.steps);
    }
    EXPECT_EQ(tree.console, vm.console);
    EXPECT_EQ(tree.events, vm.events);
    EXPECT_EQ(tree.slot_reads, vm.slot_reads);
    EXPECT_EQ(tree.slot_writes, vm.slot_writes);
    EXPECT_EQ(tree.named_reads, vm.named_reads);
    EXPECT_EQ(tree.named_writes, vm.named_writes);
  }
}

// ------------------------------------------------------------------ parity --

TEST(VmParity, ArithmeticAndStrings) {
  expect_parity(R"JS(
app.get("/t", function (req, res) {
  var s = "v=" + (1 + 2 * 3) + "/" + (10 % 4) + "/" + (7 / 2) + "/" + (-4 + 1);
  res.send({ s: s, cmp: "a" < "b", eq: "abc" == "abc", ne: 1 != 2 });
});
)JS");
}

TEST(VmParity, ControlFlowLoops) {
  expect_parity(R"JS(
app.get("/t", function (req, res) {
  var total = 0;
  for (var i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 7) { break; }
    total = total + i;
  }
  var w = 0;
  while (w < 3) { w += 1; }
  var t = w > 1 ? "big" : "small";
  res.send({ total: total, w: w, t: t, and: w > 0 && total, or: 0 || "fb" });
});
)JS");
}

TEST(VmParity, ClosuresAndHigherOrder) {
  expect_parity(R"JS(
function makeCounter() {
  var n = 0;
  return function () { n = n + 1; return n; };
}
var c = makeCounter();
function apply(f, x) { return f(x); }
app.get("/t", function (req, res) {
  c(); c();
  res.send({ n: c(), sq: apply(function (v) { return v * v; }, 6) });
});
)JS");
}

TEST(VmParity, ObjectsArraysAndIndexing) {
  expect_parity(R"JS(
var store = { items: [], meta: { count: 0 } };
app.get("/t", function (req, res) {
  store.items.push({ id: 1, tag: "a" });
  store.items.push({ id: 2, tag: "b" });
  store.meta.count += 2;
  var tags = store.items.map(function (it) { return it.tag; });
  var first = store.items[0];
  first.id = first.id + 10;
  var grid = [[1, 2], [3, 4]];
  grid[1][0] = 9;
  res.send({ tags: tags.join(","), id0: store.items[0].id, g: grid,
             n: store.meta.count, missing: store.nope });
});
)JS");
}

TEST(VmParity, StringBuiltins) {
  expect_parity(R"JS(
app.get("/t", function (req, res) {
  var s = "  Hello,World ";
  res.send({
    parts: s.trim().split(","),
    up: s.toUpperCase(),
    sub: s.substring(2, 7),
    has: s.includes("World"),
    idx: s.indexOf("World"),
    code: s.charCodeAt(2)
  });
});
)JS");
}

TEST(VmParity, TryCatchThrow) {
  expect_parity(R"JS(
function boom(kind) {
  if (kind == "value") { throw { code: 42 }; }
  if (kind == "deep") { return boom("value"); }
  return "no";
}
app.get("/t", function (req, res) {
  var caught = [];
  try { boom("value"); } catch (e) { caught.push(e.code); }
  try { boom("deep"); } catch (e) { caught.push(e.code + 1); }
  try {
    try { throw "inner"; } catch (e) { caught.push(e); throw "outer"; }
  } catch (e2) { caught.push(e2); }
  res.send({ caught: caught });
});
)JS");
}

TEST(VmParity, TypeErrorTextMatchesTreeWalker) {
  // Uncaught engine errors must carry byte-identical text.
  expect_parity(R"JS(
app.get("/t", function (req, res) { res.send({ v: missingVar }); });
)JS");
  expect_parity(R"JS(
app.get("/t", function (req, res) { var o = null; res.send({ v: o.field }); });
)JS");
  expect_parity(R"JS(
app.get("/t", function (req, res) { var n = 3; res.send({ v: n.nothing() }); });
)JS");
}

TEST(VmParity, ScopingShadowingAndUseBeforeDeclare) {
  expect_parity(R"JS(
var x = 1;
var y = 7;
function outer() {
  var x = 10;
  function inner() { var x = 100; return x; }
  return inner() + x;
}
function ubd() {
  var seen = y;
  var y = 100;
  return seen + y;
}
app.get("/t", function (req, res) {
  res.send({ sum: outer(), global_x: x, ubd: ubd() });
});
)JS");
}

TEST(VmParity, ConsoleAndGlobalMutation) {
  expect_parity(R"JS(
var hits = 0;
app.get("/t", function (req, res) {
  hits = hits + 1;
  console.log("serving " + hits);
  res.send({ hits: hits });
});
)JS");
}

TEST(VmParity, RequestParams) {
  expect_parity(R"JS(
app.get("/t", function (req, res) {
  res.send({ doubled: req.params.x * 2 });
});
)JS",
                json::Value::object({{"x", json::Value(21.0)}}));
}

TEST(VmParity, CrossEngineClosureInterop) {
  // A chunked closure handed to a builtin (map) re-enters the VM through
  // the tree-walker's call_value; both directions must agree.
  expect_parity(R"JS(
function describe(v) { return "<" + v + ">"; }
app.get("/t", function (req, res) {
  var out = [1, 2, 3].map(describe);
  var picked = [4, 5, 6].filter(function (v) { return v % 2 == 0; });
  res.send({ out: out.join(""), picked: picked });
});
)JS");
}

// -------------------------------------------------------------- goldens --

std::string disassemble_source(const std::string& source) {
  Program program = parse_program(source);
  resolve_program(program);
  return disassemble_program(compile_program(program));
}

TEST(VmCompilerGolden, ToplevelVarAndCall) {
  const std::string text = disassemble_source("var limit = 3;\nreport(limit + 1);\n");
  EXPECT_EQ(text, R"(== <toplevel> ==  (46 bytes, 2 consts, 3 ic)
    0  stmt              #1
    5  const             0  ; 3
    8  declare_named     limit
   13  stmt              #2
   18  load_global       report ic=0
   25  load_global       limit ic=1
   32  add_const         1  ; 1
   35  call              argc=1 ic=0  ; report
   43  pop
   44  null
   45  return
)");
}

TEST(VmCompilerGolden, FunctionLoopAndMember) {
  const std::string text = disassemble_source(
      "function tally(items) {\n"
      "  var total = 0;\n"
      "  for (var i = 0; i < items.length; i += 1) { total += items[i].v; }\n"
      "  return total;\n"
      "}\n");
  EXPECT_EQ(text, R"(== <toplevel> ==  (15 bytes, 0 consts, 0 ic)
    0  stmt              #8
    5  make_closure      fn=0  ; tally
    8  declare_fn_named  tally
   13  null
   14  return
== tally ==  (150 bytes, 2 consts, 2 ic)
    0  stmt              #1
    5  const             0  ; 0
    8  declare_slot      slot=1  ; total
   15  stmt              #2
   20  push_scope        scope=0
   23  stmt              #3
   28  const             0  ; 0
   31  declare_slot      slot=0  ; i
   38  stmt_id           #2
   43  load_slot         depth=0 slot=0  ; i
   51  get_member_slot   depth=1 slot=0 items.length[ic=0]
   66  lt
   67  jump_if_false     -> 133
   72  tick
   73  stmt              #4
   78  load_slot         depth=1 slot=0  ; items
   86  load_slot         depth=0 slot=0  ; i
   94  get_index
   95  get_member        .v ic=1
  102  store_slot        depth=1 slot=1  ; total += (stmt)
  111  stmt_id           #2
  116  inc_slot          depth=0 slot=0 += 1  ; i (compound)
  128  jump              -> 38
  133  pop_scope
  134  stmt              #6
  139  load_slot         depth=0 slot=1  ; total
  147  return
  148  null
  149  return
)");
}

// --------------------------------------------------------- inline caches --

TEST(VmInlineCache, MonomorphicHitShapeChangeMissRefill) {
  InterpreterConfig config;
  config.vm = true;
  Interpreter interp(parse_program("function rd(o) { return o.x; }\n"), config);
  interp.run_toplevel();
  ASSERT_TRUE(interp.vm_enabled());

  const auto make_obj = [](std::vector<std::pair<std::string, double>> props) {
    JsValue obj = JsValue::new_object();
    for (const auto& [key, val] : props) obj.as_object()->set(key, JsValue(val));
    return obj;
  };
  const JsValue same_shape_a = make_obj({{"x", 1.0}, {"y", 2.0}});
  const JsValue same_shape_b = make_obj({{"x", 3.0}, {"y", 4.0}});
  const JsValue shifted = make_obj({{"y", 5.0}, {"x", 6.0}});  // x at a new index

  const auto read_x = [&](const JsValue& obj) {
    const std::uint64_t hits = interp.ic_hits(), misses = interp.ic_misses();
    const JsValue out = interp.call_global("rd", {obj});
    return std::make_tuple(out.as_number(), interp.ic_hits() - hits,
                           interp.ic_misses() - misses);
  };

  // Cold site: first access misses and fills the cache.
  EXPECT_EQ(read_x(same_shape_a), std::make_tuple(1.0, std::uint64_t(0), std::uint64_t(1)));
  // Monomorphic: every same-layout receiver hits, including other objects.
  EXPECT_EQ(read_x(same_shape_a), std::make_tuple(1.0, std::uint64_t(1), std::uint64_t(0)));
  EXPECT_EQ(read_x(same_shape_b), std::make_tuple(3.0, std::uint64_t(1), std::uint64_t(0)));
  // Shape change: the cached index no longer holds `x` -> miss + refill.
  EXPECT_EQ(read_x(shifted), std::make_tuple(6.0, std::uint64_t(0), std::uint64_t(1)));
  // Refill took: the new layout is now the monomorphic one...
  EXPECT_EQ(read_x(shifted), std::make_tuple(6.0, std::uint64_t(1), std::uint64_t(0)));
  // ...and going back to the old layout misses again.
  EXPECT_EQ(read_x(same_shape_a), std::make_tuple(1.0, std::uint64_t(0), std::uint64_t(1)));
}

TEST(VmInlineCache, GlobalAndCallCachesServeHotLoop) {
  // A hot loop calling a global function: after warmup every iteration's
  // global load and call dispatch should hit, so hits dominate misses.
  InterpreterConfig config;
  config.vm = true;
  Interpreter interp(parse_program(R"JS(
var acc = 0;
function bump(v) { return v + 1; }
function spin(n) {
  for (var i = 0; i < n; i += 1) { acc = bump(acc); }
  return acc;
}
)JS"),
                     config);
  interp.run_toplevel();
  const JsValue out = interp.call_global("spin", {JsValue(1000.0)});
  EXPECT_DOUBLE_EQ(out.as_number(), 1000.0);
  EXPECT_GT(interp.ic_hits(), interp.ic_misses() * 100);
}

TEST(VmInlineCache, GlobalCacheInvalidatesOnBindingSetChange) {
  // Rebinding a global *in place* keeps caches valid; adding a new global
  // bumps the environment version and forces a re-probe (miss), so stale
  // pointers can never be dereferenced.
  InterpreterConfig config;
  config.vm = true;
  Interpreter interp(parse_program(R"JS(
var target = 1;
function rd() { return target; }
)JS"),
                     config);
  interp.run_toplevel();
  (void)interp.call_global("rd", {});  // fill
  std::uint64_t hits = interp.ic_hits(), misses = interp.ic_misses();
  (void)interp.call_global("rd", {});
  EXPECT_EQ(interp.ic_hits() - hits, 1u);
  EXPECT_EQ(interp.ic_misses() - misses, 0u);

  interp.globals()->define("freshly_added", JsValue(9.0));  // binding-set change
  hits = interp.ic_hits();
  misses = interp.ic_misses();
  const JsValue out = interp.call_global("rd", {});
  EXPECT_DOUBLE_EQ(out.as_number(), 1.0);
  EXPECT_EQ(interp.ic_hits() - hits, 0u);
  EXPECT_EQ(interp.ic_misses() - misses, 1u);
}

}  // namespace
}  // namespace edgstr::minijs
