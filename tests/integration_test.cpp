// End-to-end RQ1 correctness (§IV-B): for all 7 subject apps and their 42
// services, the EdgStr-transformed three-tier deployment must return the
// same results as the original two-tier deployment for the apps' regression
// workloads, and the replicated state must converge after synchronization.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "edgstr/deployment.h"
#include "edgstr/pipeline.h"

namespace edgstr::core {
namespace {

class SubjectAppTest : public ::testing::TestWithParam<const apps::SubjectApp*> {};

TEST_P(SubjectAppTest, EveryServiceReplicates) {
  const apps::SubjectApp& app = *GetParam();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.replicable_count(), app.services.size());
  for (const ServiceAnalysis& svc : result.services) {
    EXPECT_TRUE(svc.replicable) << svc.route.to_string() << ": " << svc.failure_reason;
  }
}

TEST_P(SubjectAppTest, RegressionEquivalenceTwoVsThreeTier) {
  const apps::SubjectApp& app = *GetParam();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok) << result.error;

  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(result, config);
  TwoTierDeployment two(result.cloud_source, config);

  for (const http::HttpRequest& req : app.workload) {
    const http::HttpResponse original = two.request_sync(req);
    const http::HttpResponse transformed = three.request_sync(req);
    EXPECT_EQ(original.status, transformed.status) << req.path;
    EXPECT_EQ(original.body, transformed.body)
        << req.path << "\n  two:   " << original.body.dump()
        << "\n  three: " << transformed.body.dump();
  }
  // The replicated state converges once synchronization runs.
  EXPECT_GE(three.sync().sync_until_converged(), 1);
  EXPECT_TRUE(three.converged());
}

TEST_P(SubjectAppTest, EdgeLatencyBeatsCloudOnLimitedWan) {
  const apps::SubjectApp& app = *GetParam();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok);

  DeploymentConfig config;
  config.start_sync = false;
  config.wan = netsim::LinkConfig::limited_wan();
  ThreeTierDeployment three(result, config);
  TwoTierDeployment two(result.cloud_source, config);

  // Compare on the app's primary (heaviest) route.
  http::HttpRequest req;
  for (const http::HttpRequest& r : app.workload) {
    if (http::Route{r.verb, r.path} == app.primary_route) {
      req = r;
      break;
    }
  }
  double cloud_latency = 0, edge_latency = 0;
  two.request_sync(req, &cloud_latency);
  three.request_sync(req, 0, &edge_latency);
  EXPECT_LT(edge_latency, cloud_latency)
      << app.name << ": edge " << edge_latency << "s vs cloud " << cloud_latency << "s";
}

TEST_P(SubjectAppTest, BackgroundSyncConvergesDuringLiveTraffic) {
  const apps::SubjectApp& app = *GetParam();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok);

  DeploymentConfig config;
  config.start_sync = true;
  config.sync_interval_s = 0.25;
  ThreeTierDeployment three(result, config);
  for (const http::HttpRequest& req : app.workload) {
    three.request_sync(req);
  }
  // Let the periodic sync run, then stop it and flush.
  three.network().clock().run_until(three.network().clock().now() + 10.0);
  three.sync().stop();
  three.network().clock().run_until(three.network().clock().now() + 10.0);
  EXPECT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());
  EXPECT_GT(three.sync().total_sync_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, SubjectAppTest,
                         ::testing::ValuesIn(apps::all_subject_apps()),
                         [](const ::testing::TestParamInfo<const apps::SubjectApp*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(MultiEdgeIntegration, TwoEdgesShareStateThroughCloud) {
  const apps::SubjectApp& app = apps::sensor_hub();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok) << result.error;

  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi3()};
  ThreeTierDeployment three(result, config);

  // Ingest different sensor batches at each edge.
  auto ingest = [&](std::size_t edge, const std::string& sensor, double v) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/ingest";
    req.params = json::Value::object(
        {{"sensor", sensor}, {"values", json::Value::array({v, v + 1})}});
    three.request_sync(req, edge);
  };
  ingest(0, "a", 10);
  ingest(1, "b", 90);

  ASSERT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_TRUE(three.converged());

  // Edge 0 now sees edge 1's readings (relayed through the cloud).
  http::HttpRequest summary;
  summary.verb = http::Verb::kGet;
  summary.path = "/summary";
  summary.params = json::Value::object({{"sensor", "b"}});
  const http::HttpResponse resp = three.request_sync(summary, 0);
  EXPECT_DOUBLE_EQ(resp.body["count"].as_number(), 2.0);
}

TEST(FailureHandlingIntegration, EdgeFailureForwardsToCloud) {
  // A service whose handler fails at the edge for lack of a file that only
  // the cloud has (simulating an un-replicable dependency).
  const char* source = R"JS(
    var n = 0;
    fs.writeFile("data/common.txt", "shared");
    app.get("/fragile", function (req, res) {
      var q = req.params.q;
      var data = fs.readFile("data/secret-" + q + ".txt");
      res.send({ data: data, q: q });
    });
    app.get("/solid", function (req, res) {
      var q = req.params.q;
      n = n + 1;
      res.send({ ok: q, n: n });
    });
  )JS";
  std::vector<http::HttpRequest> workload;
  for (int q : {1, 2}) {
    http::HttpRequest req;
    req.path = "/solid";
    req.params = json::Value::object({{"q", q}});
    workload.push_back(req);
  }
  const http::TrafficRecorder traffic = record_traffic(source, workload);
  const TransformResult result = Pipeline().transform("fragile-app", source, traffic);
  ASSERT_TRUE(result.ok) << result.error;

  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(result, config);
  // Plant the secret file only on the cloud.
  three.cloud().service()->filesystem().write("data/secret-9.txt", "cloud-only");

  // Manually widen the served set so the edge *attempts* /fragile.
  http::HttpRequest req;
  req.path = "/fragile";
  req.params = json::Value::object({{"q", 9}});
  // /fragile was never in the traffic, so the proxy forwards it; the cloud
  // answers successfully.
  const http::HttpResponse resp = three.request_sync(req);
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.body["data"].as_string(), "cloud-only");
  EXPECT_EQ(three.proxy(0).stats().forwarded_to_cloud, 1u);
}

}  // namespace
}  // namespace edgstr::core
