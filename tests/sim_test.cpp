// Simulation-harness tests: fixed-seed smoke runs, the determinism
// contract (same seed => byte-identical trace and state), and the
// harness-catches-a-real-regression guarantee.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <utility>
#include <vector>

#include "sim/schedule.h"

namespace edgstr::sim {
namespace {

// Every failure message leads with the seed: paste it into
// `sim_explore --trace --seed N` to replay the exact run.

TEST(SimSmokeTest, FixedSeedsPassAllInvariants) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99991ull}) {
    ScheduleConfig config;
    config.seed = seed;
    const ScheduleResult result = run_schedule(config);
    EXPECT_TRUE(result.passed) << result.summary();
    // The run must have actually exercised the plane, not vacuously passed.
    EXPECT_GT(result.writes_acked, 0u) << result.summary();
    EXPECT_GT(result.requests, 0u) << result.summary();
  }
}

TEST(SimSmokeTest, EveryTopologyAppearsAcrossSeeds) {
  std::set<std::string> seen;
  for (std::uint64_t seed = 1; seed <= 12 && seen.size() < 3; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.rounds = 4;  // topology is drawn up front; keep the runs short
    seen.insert(run_schedule(config).topology);
  }
  EXPECT_EQ(seen.size(), 3u) << "star, star+mesh, and hierarchy should all be drawn";
}

TEST(SimDeterminismTest, SameSeedProducesIdenticalTraceAndState) {
  for (const std::uint64_t seed : {3ull, 42ull, 777ull}) {
    ScheduleConfig config;
    config.seed = seed;
    const ScheduleResult first = run_schedule(config);
    const ScheduleResult second = run_schedule(config);

    EXPECT_EQ(first.trace_digest, second.trace_digest) << "seed " << seed;
    EXPECT_EQ(first.state_digest, second.state_digest) << "seed " << seed;
    EXPECT_EQ(first.passed, second.passed) << "seed " << seed;
    EXPECT_EQ(first.requests, second.requests) << "seed " << seed;
    EXPECT_EQ(first.crashes, second.crashes) << "seed " << seed;

    // Digest equality must reflect event-by-event equality, not a hash
    // fluke over differing traces.
    ASSERT_EQ(first.trace.size(), second.trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < first.trace.size(); ++i) {
      EXPECT_EQ(EventTrace::format(first.trace.events()[i]),
                EventTrace::format(second.trace.events()[i]))
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(SimDeterminismTest, DifferentSeedsProduceDifferentRuns) {
  ScheduleConfig a, b;
  a.seed = 5;
  b.seed = 6;
  EXPECT_NE(run_schedule(a).trace_digest, run_schedule(b).trace_digest);
}

TEST(SimDeterminismTest, SameSeedProducesIdenticalTelemetryExports) {
  // Span ids, timestamps, and histogram contents all come from the seeded
  // simulation, so the serialized Chrome trace and metrics snapshot must be
  // byte-identical across same-seed runs.
  ScheduleConfig config;
  config.seed = 42;
  config.capture_telemetry = true;
  const ScheduleResult first = run_schedule(config);
  const ScheduleResult second = run_schedule(config);

  EXPECT_FALSE(first.chrome_trace.empty());
  EXPECT_FALSE(first.metrics_snapshot.empty());
  EXPECT_EQ(first.chrome_trace, second.chrome_trace);
  EXPECT_EQ(first.metrics_snapshot, second.metrics_snapshot);

  // Off by default: no serialization cost on plain runs.
  ScheduleConfig plain;
  plain.seed = 42;
  EXPECT_TRUE(run_schedule(plain).chrome_trace.empty());
}

// The harness exists to catch replication bugs. Prove it does: disabling
// retransmission (acks recorded at send time, so lost sync messages are
// never re-sent) must be flagged — as divergence after quiescence, as an
// acked-op loss, or as an exception escaping the replication plane — and
// the failing seed must be reported for replay. The planted bug lives in
// the push protocol's ack bookkeeping; digest sync's floors are the
// peer's own advertisements, which would (correctly) heal right over it,
// so these runs pin the push baseline.
TEST(SimRegressionCatchTest, OptimisticAcksRegressionIsCaught) {
  std::size_t caught = 0;
  std::vector<std::uint64_t> failing;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.optimistic_acks = true;
    config.digest_sync = false;
    const ScheduleResult result = run_schedule(config);
    if (!result.passed) {
      ++caught;
      failing.push_back(seed);
      EXPECT_FALSE(result.violations.empty());
      // The report carries the seed — the whole point of the harness.
      EXPECT_NE(result.summary().find("seed=" + std::to_string(seed)), std::string::npos);
      EXPECT_NE(result.summary().find("FAIL"), std::string::npos);
    }
  }
  // Not every seed need trip over a lost message, but most must.
  EXPECT_GE(caught, 5u) << "retransmission-disabled regression escaped the harness";
}

TEST(SimRegressionCatchTest, ConvergenceInvariantCatchesSilentDivergence) {
  // Seed 24 (found by sweep) diverges *silently* under push-mode
  // optimistic acks: no exception escapes and no acked write is lost,
  // just replicas that still disagree after forced quiescence — exactly
  // what the convergence invariant exists to catch.
  ScheduleConfig config;
  config.seed = 24;
  config.optimistic_acks = true;
  config.digest_sync = false;
  const ScheduleResult result = run_schedule(config);
  ASSERT_FALSE(result.passed) << result.summary();
  bool convergence_violation = false;
  for (const Violation& v : result.violations) {
    if (v.invariant == "convergence") convergence_violation = true;
  }
  EXPECT_TRUE(convergence_violation) << result.summary();
}

// Every seed in tests/seeds/regressions.txt once exposed a real
// replication bug (the file says which); replaying the corpus keeps the
// exact schedules that caught them in the gate forever. Each seed runs
// under both sync protocols — some of the recorded bugs were push-only,
// some digest-only, and the schedule is identical either way. A line may
// carry a prefix: a workload shape ("churn 19") replays migration/handoff
// bugs only a shaped schedule can reach; "durable N" replays the seed with
// durable op logs and power-loss injection on; "durable-fault N" pins a
// planted-fault TRUE POSITIVE — the lying-fsync regression must keep
// failing that schedule with a durable-op-loss violation forever.
TEST(SimRegressionCatchTest, RegressionSeedCorpusStaysGreen) {
  std::ifstream corpus(std::string(EDGSTR_TESTS_DIR) + "/seeds/regressions.txt");
  ASSERT_TRUE(corpus.is_open()) << "tests/seeds/regressions.txt missing";
  struct CorpusLine {
    workload::WorkloadShape shape = workload::WorkloadShape::kUniform;
    std::uint64_t seed = 0;
    bool durable = false;
    bool durability_fault = false;  ///< expected to FAIL (true positive)
  };
  std::vector<CorpusLine> seeds;
  std::string line;
  while (std::getline(corpus, line)) {
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    CorpusLine entry;
    const std::size_t space = line.find(' ', start);
    if (space != std::string::npos && !std::isdigit(static_cast<unsigned char>(line[start]))) {
      const std::string token = line.substr(start, space - start);
      if (token == "durable") {
        entry.durable = true;
      } else if (token == "durable-fault") {
        entry.durable = entry.durability_fault = true;
      } else {
        ASSERT_TRUE(workload::parse_workload_shape(token, &entry.shape))
            << "bad prefix in corpus line: " << line;
      }
      start = line.find_first_not_of(" \t", space);
      ASSERT_NE(start, std::string::npos) << "prefix without seed: " << line;
    }
    entry.seed = std::stoull(line.substr(start));
    seeds.push_back(entry);
  }
  ASSERT_FALSE(seeds.empty()) << "empty regression corpus";
  bool saw_shaped = false, saw_durable = false, saw_fault = false;
  for (const CorpusLine& entry : seeds) {
    saw_shaped = saw_shaped || entry.shape != workload::WorkloadShape::kUniform;
    saw_durable = saw_durable || (entry.durable && !entry.durability_fault);
    saw_fault = saw_fault || entry.durability_fault;
    for (const bool digest : {true, false}) {
      ScheduleConfig config;
      config.seed = entry.seed;
      config.digest_sync = digest;
      config.workload = entry.shape;
      config.durable = entry.durable;
      config.power_loss = entry.durable && !entry.durability_fault;
      config.durability_fault = entry.durability_fault;
      const ScheduleResult result = run_schedule(config);
      if (entry.durability_fault) {
        // The planted fault stays caught: a green run here means the
        // durable-op-loss invariant went blind.
        ASSERT_FALSE(result.passed)
            << "lying-fsync fault escaped (" << (digest ? "digest" : "push")
            << " sync): " << result.summary();
        bool loss_violation = false;
        for (const Violation& v : result.violations) {
          if (v.invariant == "durable-op-loss") loss_violation = true;
        }
        EXPECT_TRUE(loss_violation) << result.summary();
      } else {
        EXPECT_TRUE(result.passed) << "regression seed resurfaced ("
                                   << (digest ? "digest" : "push")
                                   << " sync): " << result.summary();
      }
    }
  }
  EXPECT_TRUE(saw_shaped) << "migration regression seeds missing from the corpus";
  EXPECT_TRUE(saw_durable) << "durable regression seeds missing from the corpus";
  EXPECT_TRUE(saw_fault) << "durable-fault true-positive seed missing from the corpus";
}

// ------------------------------------------------- workload & variants --

TEST(SimWorkloadTest, ShapesKeepTheBaseScheduleIntact) {
  // Shape draws come from a separate RNG stream, so the topology and the
  // fault schedule for a seed are identical under every shape — shapes
  // add adversity on top, they never reshuffle the run underneath.
  for (const std::uint64_t seed : {3ull, 19ull, 42ull}) {
    ScheduleConfig base;
    base.seed = seed;
    const ScheduleResult uniform = run_schedule(base);
    for (const workload::WorkloadShape shape :
         {workload::WorkloadShape::kZipf, workload::WorkloadShape::kFlash,
          workload::WorkloadShape::kChurn}) {
      ScheduleConfig shaped = base;
      shaped.workload = shape;
      const ScheduleResult result = run_schedule(shaped);
      EXPECT_EQ(result.topology, uniform.topology) << "seed " << seed;
      EXPECT_EQ(result.edges, uniform.edges) << "seed " << seed;
      EXPECT_EQ(result.crashes, uniform.crashes) << "seed " << seed;
      EXPECT_EQ(result.partitions, uniform.partitions) << "seed " << seed;
      EXPECT_TRUE(result.passed) << result.summary();
    }
  }
}

TEST(SimWorkloadTest, ShapedRunsAreSeedDeterministic) {
  for (const workload::WorkloadShape shape :
       {workload::WorkloadShape::kZipf, workload::WorkloadShape::kFlash,
        workload::WorkloadShape::kChurn}) {
    ScheduleConfig config;
    config.seed = 19;
    config.workload = shape;
    const ScheduleResult first = run_schedule(config);
    const ScheduleResult second = run_schedule(config);
    EXPECT_EQ(first.trace_digest, second.trace_digest);
    EXPECT_EQ(first.state_digest, second.state_digest);
    EXPECT_EQ(first.migrations, second.migrations);
  }
}

TEST(SimWorkloadTest, ChurnExercisesTheMigrationInvariant) {
  // Seed 195 (hierarchy) performs repeated cross-edge migrations with
  // successful handoffs; the migration-ryw invariant must actually run
  // (migrations > 0) and hold.
  ScheduleConfig config;
  config.seed = 195;
  config.workload = workload::WorkloadShape::kChurn;
  const ScheduleResult result = run_schedule(config);
  EXPECT_TRUE(result.passed) << result.summary();
  EXPECT_GT(result.migrations, 10u) << result.summary();
  EXPECT_LT(result.handoffs_failed, result.migrations) << result.summary();
}

TEST(SimVariantTest, ShadowsAreScheduleInvisible) {
  // The variant shadows replay off-network from CoW pre-state; turning
  // the cross-check off must not move a single byte of the schedule.
  for (const std::uint64_t seed : {7ull, 24ull}) {
    ScheduleConfig on, off;
    on.seed = off.seed = seed;
    off.variant_check = false;
    const ScheduleResult checked = run_schedule(on);
    const ScheduleResult plain = run_schedule(off);
    EXPECT_EQ(checked.trace_digest, plain.trace_digest) << "seed " << seed;
    EXPECT_EQ(checked.state_digest, plain.state_digest) << "seed " << seed;
    EXPECT_GT(checked.variant_checks, 0u);
    EXPECT_EQ(plain.variant_checks, 0u);
  }
}

TEST(SimVariantTest, PlantedVariantFaultIsCaught) {
  // Mirrors OptimisticAcksRegressionIsCaught for the execution engine: a
  // semantic fault planted on the legacy shadow (an unconditional UPDATE
  // skew on every replay) must surface as variant-agreement violations on
  // virtually every seed, each carrying the offending request.
  std::size_t caught = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.variant_fault = true;
    const ScheduleResult result = run_schedule(config);
    if (result.passed) continue;
    bool variant_violation = false;
    for (const Violation& v : result.violations) {
      if (v.invariant == "variant-agreement") variant_violation = true;
    }
    if (variant_violation) ++caught;
    EXPECT_GT(result.variant_divergences, 0u) << result.summary();
  }
  EXPECT_GE(caught, 4u) << "planted engine fault escaped the variant harness";
}

// ------------------------------------------------------------ durability --

TEST(SimDurabilityTest, DurableRunsPassAndRecoverFromEveryCrash) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    ScheduleConfig config;
    config.seed = seed;
    config.durable = true;
    const ScheduleResult result = run_schedule(config);
    EXPECT_TRUE(result.passed) << result.summary();
    // Every durable-edge crash ran a log recovery; a crash-bearing
    // schedule that recovered nothing would mean the log never engaged.
    if (result.crashes > 0) {
      EXPECT_GT(result.durable_recoveries, 0u) << result.summary();
    }
  }
}

TEST(SimDurabilityTest, DurabilityKeepsTheBaseScheduleIntact) {
  // Durability draws come from a separate RNG stream: the topology and the
  // fault schedule for a seed are identical with the knob on or off — the
  // durable log changes what a crash *loses*, never what the run does.
  for (const std::uint64_t seed : {3ull, 7ull, 42ull}) {
    ScheduleConfig plain;
    plain.seed = seed;
    const ScheduleResult base = run_schedule(plain);
    for (const bool power_loss : {false, true}) {
      ScheduleConfig durable = plain;
      durable.durable = true;
      durable.power_loss = power_loss;
      const ScheduleResult result = run_schedule(durable);
      EXPECT_EQ(result.topology, base.topology) << "seed " << seed;
      EXPECT_EQ(result.edges, base.edges) << "seed " << seed;
      EXPECT_EQ(result.crashes, base.crashes) << "seed " << seed;
      EXPECT_EQ(result.partitions, base.partitions) << "seed " << seed;
      EXPECT_TRUE(result.passed) << result.summary();
    }
  }
}

TEST(SimDurabilityTest, DurableRunsAreSeedDeterministic) {
  ScheduleConfig config;
  config.seed = 7;
  config.durable = true;
  config.power_loss = true;
  const ScheduleResult first = run_schedule(config);
  const ScheduleResult second = run_schedule(config);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
  EXPECT_EQ(first.state_digest, second.state_digest);
  EXPECT_EQ(first.durable_recoveries, second.durable_recoveries);
  EXPECT_EQ(first.recovered_ops, second.recovered_ops);
  EXPECT_EQ(first.truncated_records, second.truncated_records);
}

TEST(SimDurabilityTest, DurableDigestsAreLaneCountInvariant) {
  ScheduleConfig serial;
  serial.seed = 7;
  serial.durable = true;
  ScheduleConfig wide = serial;
  wide.lanes = 4;
  const ScheduleResult a = run_schedule(serial);
  const ScheduleResult b = run_schedule(wide);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.state_digest, b.state_digest);
  EXPECT_EQ(a.recovered_ops, b.recovered_ops);
}

TEST(SimDurabilityTest, PowerLossSweepStaysGreen) {
  // Torn-tail injection at stream-drawn offsets: recovery truncates the
  // tear and every invariant still holds (acked => fsynced => recovered).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.durable = true;
    config.power_loss = true;
    const ScheduleResult result = run_schedule(config);
    EXPECT_TRUE(result.passed) << result.summary();
  }
}

TEST(SimDurabilityTest, MetricsCarryDurabilityKeysOnlyWhenDurable) {
  ScheduleConfig plain;
  plain.seed = 42;
  plain.capture_telemetry = true;
  const ScheduleResult off = run_schedule(plain);
  EXPECT_EQ(off.metrics_snapshot.find("durability."), std::string::npos);
  EXPECT_EQ(off.metrics_snapshot.find("bootstrap.snapshot"), std::string::npos);

  ScheduleConfig durable = plain;
  durable.durable = true;
  const ScheduleResult on = run_schedule(durable);
  EXPECT_NE(on.metrics_snapshot.find("durability.fsyncs"), std::string::npos);
  EXPECT_NE(on.metrics_snapshot.find("durability.appended_ops"), std::string::npos);
  EXPECT_NE(on.metrics_snapshot.find("durability.recoveries"), std::string::npos);
}

// Mirrors OptimisticAcksRegressionIsCaught for the durability plane: a
// disk that lies about fsync (claims durability, provides none) must be
// flagged by the durable-op-loss invariant on (most) seeds that crash an
// edge holding acked data.
TEST(SimRegressionCatchTest, DurabilityFaultIsCaught) {
  std::size_t caught = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.durable = true;
    config.durability_fault = true;
    const ScheduleResult result = run_schedule(config);
    if (result.passed) continue;
    bool loss_violation = false;
    for (const Violation& v : result.violations) {
      if (v.invariant == "durable-op-loss") loss_violation = true;
    }
    if (loss_violation) ++caught;
    EXPECT_NE(result.summary().find("FAIL"), std::string::npos);
  }
  EXPECT_GE(caught, 7u) << "lying-fsync regression escaped the harness";
}

// ------------------------------------------------- observability plane --

TEST(SimObservabilityTest, TimeseriesExportIsByteIdenticalAcrossRunsAndLanes) {
  ScheduleConfig config;
  config.seed = 42;
  config.capture_timeseries = true;
  const ScheduleResult first = run_schedule(config);
  const ScheduleResult second = run_schedule(config);
  ASSERT_FALSE(first.timeseries.empty());
  EXPECT_EQ(first.timeseries, second.timeseries);
  // The series actually saw the run: request counters and staleness
  // samples, windowed.
  EXPECT_NE(first.timeseries.find("req."), std::string::npos);
  EXPECT_NE(first.timeseries.find("staleness.seconds"), std::string::npos);
  EXPECT_NE(first.timeseries.find("sync.ops"), std::string::npos);

  // Lane-parallel sections record through the driver thread only, so the
  // export is lane-count-invariant byte for byte.
  ScheduleConfig wide = config;
  wide.lanes = 4;
  EXPECT_EQ(run_schedule(wide).timeseries, first.timeseries);
}

TEST(SimObservabilityTest, CaptureStaysOutOfTheScheduleAndTheOldExports) {
  // Turning the whole obs plane on must not move a byte of the run: same
  // trace digest, same converged state.
  ScheduleConfig off;
  off.seed = 7;
  off.flight_ring = 0;
  ScheduleConfig on = off;
  on.capture_timeseries = true;
  on.flight_ring = 96;
  on.slo_watchdog = true;
  const ScheduleResult plain = run_schedule(off);
  const ScheduleResult observed = run_schedule(on);
  EXPECT_EQ(plain.trace_digest, observed.trace_digest);
  EXPECT_EQ(plain.state_digest, observed.state_digest);
  EXPECT_TRUE(plain.timeseries.empty());  // capture off: nothing serialized

  // And the pre-existing telemetry exports keep their exact bytes when the
  // time-series capture is off — the flight recorder (on by default)
  // touches no export at all.
  ScheduleConfig tele = off;
  tele.capture_telemetry = true;
  ScheduleConfig tele_flight = tele;
  tele_flight.flight_ring = 96;
  const ScheduleResult bare = run_schedule(tele);
  const ScheduleResult with_flight = run_schedule(tele_flight);
  EXPECT_EQ(bare.chrome_trace, with_flight.chrome_trace);
  EXPECT_EQ(bare.metrics_snapshot, with_flight.metrics_snapshot);
}

TEST(SimObservabilityTest, FlightDumpIsAttachedOnlyToFailures) {
  ScheduleConfig clean;
  clean.seed = 42;
  const ScheduleResult passed = run_schedule(clean);
  ASSERT_TRUE(passed.passed) << passed.summary();
  EXPECT_TRUE(passed.flight_dump.empty());

  // Seed 24 under push-mode optimistic acks diverges; the black box must
  // come out with the failure report.
  ScheduleConfig failing;
  failing.seed = 24;
  failing.optimistic_acks = true;
  failing.digest_sync = false;
  const ScheduleResult failed = run_schedule(failing);
  ASSERT_FALSE(failed.passed) << failed.summary();
  EXPECT_NE(failed.flight_dump.find("flight recorder:"), std::string::npos);
  // The ring saw the replication plane, not just bookkeeping.
  EXPECT_NE(failed.flight_dump.find("send"), std::string::npos);

  ScheduleConfig no_ring = failing;
  no_ring.flight_ring = 0;
  EXPECT_TRUE(run_schedule(no_ring).flight_dump.empty());
}

TEST(SimSloTest, DefaultRulesStaySilentOnCleanSeeds) {
  // The clean-sweep contract: the default rule set must produce zero false
  // positives on healthy runs (the nightly sweep checks 1000 seeds; this
  // is the in-gate slice, across every workload shape).
  for (const workload::WorkloadShape shape :
       {workload::WorkloadShape::kUniform, workload::WorkloadShape::kChurn,
        workload::WorkloadShape::kFlash}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      ScheduleConfig config;
      config.seed = seed;
      config.workload = shape;
      config.slo_watchdog = true;
      config.forbid_alerts = true;
      const ScheduleResult result = run_schedule(config);
      EXPECT_TRUE(result.passed) << result.summary();
      EXPECT_TRUE(result.slo_alerts.empty()) << result.summary();
    }
  }
}

TEST(SimSloTest, PlantedHandoffFaultFiresTheHandoffRateRule) {
  // The watchdog's reason to exist: every cross-host handoff failing is
  // invisible to the invariants (a failed flush lawfully lapses the
  // migration-ryw obligation) — only the handoff-fail-rate rule sees the
  // unbroken consecutive-failure run the broken flush path produces. Seed
  // 195 churn performs 17 migrations, all of which the fault fails, so the
  // run grows to 17 — past the sweep-calibrated threshold of 14.
  ScheduleConfig config;
  config.seed = 195;
  config.workload = workload::WorkloadShape::kChurn;
  config.handoff_fault = true;
  config.slo_watchdog = true;
  config.require_alerts = {"handoff-fail-rate"};
  const ScheduleResult result = run_schedule(config);
  EXPECT_TRUE(result.passed) << result.summary();
  ASSERT_FALSE(result.slo_alerts.empty()) << result.summary();
  // The alert names the offending window — evidence, not detection time.
  EXPECT_NE(result.slo_alerts[0].find("handoff-fail-rate"), std::string::npos);
  EXPECT_NE(result.slo_alerts[0].find("window"), std::string::npos);

  // And without the planted fault, the same schedule stays silent — the
  // rule keys on the sustained run, not on churn itself.
  ScheduleConfig healthy = config;
  healthy.handoff_fault = false;
  healthy.require_alerts.clear();
  healthy.forbid_alerts = true;
  EXPECT_TRUE(run_schedule(healthy).passed);
}

TEST(SimSloTest, PlantedVariantFaultFiresTheDivergenceRule) {
  // kTotal rule with threshold 0: a single divergence anywhere must alert,
  // once, at the window where the total first crossed.
  ScheduleConfig config;
  config.seed = 1;
  config.variant_fault = true;
  config.slo_watchdog = true;
  config.require_alerts = {"variant-divergence"};
  const ScheduleResult result = run_schedule(config);
  // The run fails on variant-agreement (the planted fault is real), but
  // the watchdog must ALSO have caught it — and only once.
  EXPECT_GT(result.variant_divergences, 0u) << result.summary();
  std::size_t divergence_alerts = 0;
  for (const std::string& alert : result.slo_alerts) {
    if (alert.find("variant-divergence") != std::string::npos) ++divergence_alerts;
  }
  EXPECT_EQ(divergence_alerts, 1u) << result.summary();
  bool missed = false;
  for (const Violation& v : result.violations) {
    if (v.invariant == "slo-missed-alert") missed = true;
  }
  EXPECT_FALSE(missed) << result.summary();
}

TEST(SimSloTest, StalenessRuleCatchesAWedgedReplicationPlane) {
  // A tight custom quantile rule over a flash-crowd schedule: staleness
  // p95 above 1.5 simulated seconds for 2 consecutive windows. Clean runs
  // ride under it only when the plane keeps up; with sync wedged (every
  // link lossy under optimistic acks) staleness climbs monotonically and
  // the rule must fire, naming the offending window.
  obs::SloRule rule;
  rule.name = "staleness-tight";
  rule.kind = obs::SloRule::Kind::kQuantile;
  rule.metric = "staleness.seconds";
  rule.q = 0.95;
  rule.threshold = 1.5;
  rule.windows = 2;

  ScheduleConfig config;
  config.seed = 9;
  config.workload = workload::WorkloadShape::kFlash;
  config.optimistic_acks = true;
  config.digest_sync = false;
  config.slo_watchdog = true;
  config.slo_rules = {rule};
  config.require_alerts = {"staleness-tight"};
  const ScheduleResult result = run_schedule(config);
  bool missed = false;
  for (const Violation& v : result.violations) {
    if (v.invariant == "slo-missed-alert") missed = true;
  }
  EXPECT_FALSE(missed) << result.summary();
  ASSERT_FALSE(result.slo_alerts.empty()) << result.summary();
  EXPECT_NE(result.slo_alerts[0].find("staleness-tight"), std::string::npos);
  EXPECT_NE(result.slo_alerts[0].find("window"), std::string::npos);
}

TEST(SimSloTest, AlertsAreSeedDeterministic) {
  ScheduleConfig config;
  config.seed = 195;
  config.workload = workload::WorkloadShape::kChurn;
  config.handoff_fault = true;
  config.slo_watchdog = true;
  const ScheduleResult first = run_schedule(config);
  const ScheduleResult second = run_schedule(config);
  EXPECT_EQ(first.slo_alerts, second.slo_alerts);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
}

TEST(SimTraceTest, DigestIsOrderSensitive) {
  EventTrace a, b;
  a.record(1.0, "write", "x");
  a.record(2.0, "sync", "y");
  b.record(2.0, "sync", "y");
  b.record(1.0, "write", "x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SimTraceTest, DumpElidesTheMiddleOfLongTraces) {
  EventTrace trace;
  for (int i = 0; i < 100; ++i) trace.record(i, "e", std::to_string(i));
  const std::string dump = trace.dump(10);
  EXPECT_NE(dump.find("..."), std::string::npos);
  EXPECT_NE(dump.find("e 0"), std::string::npos);
  EXPECT_NE(dump.find("e 99"), std::string::npos);
}

}  // namespace
}  // namespace edgstr::sim
