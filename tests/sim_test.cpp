// Simulation-harness tests: fixed-seed smoke runs, the determinism
// contract (same seed => byte-identical trace and state), and the
// harness-catches-a-real-regression guarantee.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <vector>

#include "sim/schedule.h"

namespace edgstr::sim {
namespace {

// Every failure message leads with the seed: paste it into
// `sim_explore --trace --seed N` to replay the exact run.

TEST(SimSmokeTest, FixedSeedsPassAllInvariants) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99991ull}) {
    ScheduleConfig config;
    config.seed = seed;
    const ScheduleResult result = run_schedule(config);
    EXPECT_TRUE(result.passed) << result.summary();
    // The run must have actually exercised the plane, not vacuously passed.
    EXPECT_GT(result.writes_acked, 0u) << result.summary();
    EXPECT_GT(result.requests, 0u) << result.summary();
  }
}

TEST(SimSmokeTest, EveryTopologyAppearsAcrossSeeds) {
  std::set<std::string> seen;
  for (std::uint64_t seed = 1; seed <= 12 && seen.size() < 3; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.rounds = 4;  // topology is drawn up front; keep the runs short
    seen.insert(run_schedule(config).topology);
  }
  EXPECT_EQ(seen.size(), 3u) << "star, star+mesh, and hierarchy should all be drawn";
}

TEST(SimDeterminismTest, SameSeedProducesIdenticalTraceAndState) {
  for (const std::uint64_t seed : {3ull, 42ull, 777ull}) {
    ScheduleConfig config;
    config.seed = seed;
    const ScheduleResult first = run_schedule(config);
    const ScheduleResult second = run_schedule(config);

    EXPECT_EQ(first.trace_digest, second.trace_digest) << "seed " << seed;
    EXPECT_EQ(first.state_digest, second.state_digest) << "seed " << seed;
    EXPECT_EQ(first.passed, second.passed) << "seed " << seed;
    EXPECT_EQ(first.requests, second.requests) << "seed " << seed;
    EXPECT_EQ(first.crashes, second.crashes) << "seed " << seed;

    // Digest equality must reflect event-by-event equality, not a hash
    // fluke over differing traces.
    ASSERT_EQ(first.trace.size(), second.trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < first.trace.size(); ++i) {
      EXPECT_EQ(EventTrace::format(first.trace.events()[i]),
                EventTrace::format(second.trace.events()[i]))
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(SimDeterminismTest, DifferentSeedsProduceDifferentRuns) {
  ScheduleConfig a, b;
  a.seed = 5;
  b.seed = 6;
  EXPECT_NE(run_schedule(a).trace_digest, run_schedule(b).trace_digest);
}

TEST(SimDeterminismTest, SameSeedProducesIdenticalTelemetryExports) {
  // Span ids, timestamps, and histogram contents all come from the seeded
  // simulation, so the serialized Chrome trace and metrics snapshot must be
  // byte-identical across same-seed runs.
  ScheduleConfig config;
  config.seed = 42;
  config.capture_telemetry = true;
  const ScheduleResult first = run_schedule(config);
  const ScheduleResult second = run_schedule(config);

  EXPECT_FALSE(first.chrome_trace.empty());
  EXPECT_FALSE(first.metrics_snapshot.empty());
  EXPECT_EQ(first.chrome_trace, second.chrome_trace);
  EXPECT_EQ(first.metrics_snapshot, second.metrics_snapshot);

  // Off by default: no serialization cost on plain runs.
  ScheduleConfig plain;
  plain.seed = 42;
  EXPECT_TRUE(run_schedule(plain).chrome_trace.empty());
}

// The harness exists to catch replication bugs. Prove it does: disabling
// retransmission (acks recorded at send time, so lost sync messages are
// never re-sent) must be flagged — as divergence after quiescence, as an
// acked-op loss, or as an exception escaping the replication plane — and
// the failing seed must be reported for replay. The planted bug lives in
// the push protocol's ack bookkeeping; digest sync's floors are the
// peer's own advertisements, which would (correctly) heal right over it,
// so these runs pin the push baseline.
TEST(SimRegressionCatchTest, OptimisticAcksRegressionIsCaught) {
  std::size_t caught = 0;
  std::vector<std::uint64_t> failing;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.optimistic_acks = true;
    config.digest_sync = false;
    const ScheduleResult result = run_schedule(config);
    if (!result.passed) {
      ++caught;
      failing.push_back(seed);
      EXPECT_FALSE(result.violations.empty());
      // The report carries the seed — the whole point of the harness.
      EXPECT_NE(result.summary().find("seed=" + std::to_string(seed)), std::string::npos);
      EXPECT_NE(result.summary().find("FAIL"), std::string::npos);
    }
  }
  // Not every seed need trip over a lost message, but most must.
  EXPECT_GE(caught, 5u) << "retransmission-disabled regression escaped the harness";
}

TEST(SimRegressionCatchTest, ConvergenceInvariantCatchesSilentDivergence) {
  // Seed 24 (found by sweep) diverges *silently* under push-mode
  // optimistic acks: no exception escapes and no acked write is lost,
  // just replicas that still disagree after forced quiescence — exactly
  // what the convergence invariant exists to catch.
  ScheduleConfig config;
  config.seed = 24;
  config.optimistic_acks = true;
  config.digest_sync = false;
  const ScheduleResult result = run_schedule(config);
  ASSERT_FALSE(result.passed) << result.summary();
  bool convergence_violation = false;
  for (const Violation& v : result.violations) {
    if (v.invariant == "convergence") convergence_violation = true;
  }
  EXPECT_TRUE(convergence_violation) << result.summary();
}

// Every seed in tests/seeds/regressions.txt once exposed a real
// replication bug (the file says which); replaying the corpus keeps the
// exact schedules that caught them in the gate forever. Each seed runs
// under both sync protocols — some of the recorded bugs were push-only,
// some digest-only, and the schedule is identical either way.
TEST(SimRegressionCatchTest, RegressionSeedCorpusStaysGreen) {
  std::ifstream corpus(std::string(EDGSTR_TESTS_DIR) + "/seeds/regressions.txt");
  ASSERT_TRUE(corpus.is_open()) << "tests/seeds/regressions.txt missing";
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(corpus, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    seeds.push_back(std::stoull(line.substr(start)));
  }
  ASSERT_FALSE(seeds.empty()) << "empty regression corpus";
  for (const std::uint64_t seed : seeds) {
    for (const bool digest : {true, false}) {
      ScheduleConfig config;
      config.seed = seed;
      config.digest_sync = digest;
      const ScheduleResult result = run_schedule(config);
      EXPECT_TRUE(result.passed) << "regression seed resurfaced ("
                                 << (digest ? "digest" : "push")
                                 << " sync): " << result.summary();
    }
  }
}

TEST(SimTraceTest, DigestIsOrderSensitive) {
  EventTrace a, b;
  a.record(1.0, "write", "x");
  a.record(2.0, "sync", "y");
  b.record(2.0, "sync", "y");
  b.record(1.0, "write", "x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SimTraceTest, DumpElidesTheMiddleOfLongTraces) {
  EventTrace trace;
  for (int i = 0; i < 100; ++i) trace.record(i, "e", std::to_string(i));
  const std::string dump = trace.dump(10);
  EXPECT_NE(dump.find("..."), std::string::npos);
  EXPECT_NE(dump.find("e 0"), std::string::npos);
  EXPECT_NE(dump.find("e 99"), std::string::npos);
}

}  // namespace
}  // namespace edgstr::sim
