// Simulation-harness tests: fixed-seed smoke runs, the determinism
// contract (same seed => byte-identical trace and state), and the
// harness-catches-a-real-regression guarantee.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <utility>
#include <vector>

#include "sim/schedule.h"

namespace edgstr::sim {
namespace {

// Every failure message leads with the seed: paste it into
// `sim_explore --trace --seed N` to replay the exact run.

TEST(SimSmokeTest, FixedSeedsPassAllInvariants) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99991ull}) {
    ScheduleConfig config;
    config.seed = seed;
    const ScheduleResult result = run_schedule(config);
    EXPECT_TRUE(result.passed) << result.summary();
    // The run must have actually exercised the plane, not vacuously passed.
    EXPECT_GT(result.writes_acked, 0u) << result.summary();
    EXPECT_GT(result.requests, 0u) << result.summary();
  }
}

TEST(SimSmokeTest, EveryTopologyAppearsAcrossSeeds) {
  std::set<std::string> seen;
  for (std::uint64_t seed = 1; seed <= 12 && seen.size() < 3; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.rounds = 4;  // topology is drawn up front; keep the runs short
    seen.insert(run_schedule(config).topology);
  }
  EXPECT_EQ(seen.size(), 3u) << "star, star+mesh, and hierarchy should all be drawn";
}

TEST(SimDeterminismTest, SameSeedProducesIdenticalTraceAndState) {
  for (const std::uint64_t seed : {3ull, 42ull, 777ull}) {
    ScheduleConfig config;
    config.seed = seed;
    const ScheduleResult first = run_schedule(config);
    const ScheduleResult second = run_schedule(config);

    EXPECT_EQ(first.trace_digest, second.trace_digest) << "seed " << seed;
    EXPECT_EQ(first.state_digest, second.state_digest) << "seed " << seed;
    EXPECT_EQ(first.passed, second.passed) << "seed " << seed;
    EXPECT_EQ(first.requests, second.requests) << "seed " << seed;
    EXPECT_EQ(first.crashes, second.crashes) << "seed " << seed;

    // Digest equality must reflect event-by-event equality, not a hash
    // fluke over differing traces.
    ASSERT_EQ(first.trace.size(), second.trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < first.trace.size(); ++i) {
      EXPECT_EQ(EventTrace::format(first.trace.events()[i]),
                EventTrace::format(second.trace.events()[i]))
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(SimDeterminismTest, DifferentSeedsProduceDifferentRuns) {
  ScheduleConfig a, b;
  a.seed = 5;
  b.seed = 6;
  EXPECT_NE(run_schedule(a).trace_digest, run_schedule(b).trace_digest);
}

TEST(SimDeterminismTest, SameSeedProducesIdenticalTelemetryExports) {
  // Span ids, timestamps, and histogram contents all come from the seeded
  // simulation, so the serialized Chrome trace and metrics snapshot must be
  // byte-identical across same-seed runs.
  ScheduleConfig config;
  config.seed = 42;
  config.capture_telemetry = true;
  const ScheduleResult first = run_schedule(config);
  const ScheduleResult second = run_schedule(config);

  EXPECT_FALSE(first.chrome_trace.empty());
  EXPECT_FALSE(first.metrics_snapshot.empty());
  EXPECT_EQ(first.chrome_trace, second.chrome_trace);
  EXPECT_EQ(first.metrics_snapshot, second.metrics_snapshot);

  // Off by default: no serialization cost on plain runs.
  ScheduleConfig plain;
  plain.seed = 42;
  EXPECT_TRUE(run_schedule(plain).chrome_trace.empty());
}

// The harness exists to catch replication bugs. Prove it does: disabling
// retransmission (acks recorded at send time, so lost sync messages are
// never re-sent) must be flagged — as divergence after quiescence, as an
// acked-op loss, or as an exception escaping the replication plane — and
// the failing seed must be reported for replay. The planted bug lives in
// the push protocol's ack bookkeeping; digest sync's floors are the
// peer's own advertisements, which would (correctly) heal right over it,
// so these runs pin the push baseline.
TEST(SimRegressionCatchTest, OptimisticAcksRegressionIsCaught) {
  std::size_t caught = 0;
  std::vector<std::uint64_t> failing;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.optimistic_acks = true;
    config.digest_sync = false;
    const ScheduleResult result = run_schedule(config);
    if (!result.passed) {
      ++caught;
      failing.push_back(seed);
      EXPECT_FALSE(result.violations.empty());
      // The report carries the seed — the whole point of the harness.
      EXPECT_NE(result.summary().find("seed=" + std::to_string(seed)), std::string::npos);
      EXPECT_NE(result.summary().find("FAIL"), std::string::npos);
    }
  }
  // Not every seed need trip over a lost message, but most must.
  EXPECT_GE(caught, 5u) << "retransmission-disabled regression escaped the harness";
}

TEST(SimRegressionCatchTest, ConvergenceInvariantCatchesSilentDivergence) {
  // Seed 24 (found by sweep) diverges *silently* under push-mode
  // optimistic acks: no exception escapes and no acked write is lost,
  // just replicas that still disagree after forced quiescence — exactly
  // what the convergence invariant exists to catch.
  ScheduleConfig config;
  config.seed = 24;
  config.optimistic_acks = true;
  config.digest_sync = false;
  const ScheduleResult result = run_schedule(config);
  ASSERT_FALSE(result.passed) << result.summary();
  bool convergence_violation = false;
  for (const Violation& v : result.violations) {
    if (v.invariant == "convergence") convergence_violation = true;
  }
  EXPECT_TRUE(convergence_violation) << result.summary();
}

// Every seed in tests/seeds/regressions.txt once exposed a real
// replication bug (the file says which); replaying the corpus keeps the
// exact schedules that caught them in the gate forever. Each seed runs
// under both sync protocols — some of the recorded bugs were push-only,
// some digest-only, and the schedule is identical either way. A line may
// carry a workload-shape prefix ("churn 19"): those seeds replay
// migration/handoff bugs, which only a shaped schedule can reach.
TEST(SimRegressionCatchTest, RegressionSeedCorpusStaysGreen) {
  std::ifstream corpus(std::string(EDGSTR_TESTS_DIR) + "/seeds/regressions.txt");
  ASSERT_TRUE(corpus.is_open()) << "tests/seeds/regressions.txt missing";
  std::vector<std::pair<workload::WorkloadShape, std::uint64_t>> seeds;
  std::string line;
  while (std::getline(corpus, line)) {
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    workload::WorkloadShape shape = workload::WorkloadShape::kUniform;
    const std::size_t space = line.find(' ', start);
    if (space != std::string::npos && !std::isdigit(static_cast<unsigned char>(line[start]))) {
      ASSERT_TRUE(workload::parse_workload_shape(line.substr(start, space - start), &shape))
          << "bad shape in corpus line: " << line;
      start = line.find_first_not_of(" \t", space);
      ASSERT_NE(start, std::string::npos) << "shape without seed: " << line;
    }
    seeds.emplace_back(shape, std::stoull(line.substr(start)));
  }
  ASSERT_FALSE(seeds.empty()) << "empty regression corpus";
  bool saw_shaped = false;
  for (const auto& [shape, seed] : seeds) {
    saw_shaped = saw_shaped || shape != workload::WorkloadShape::kUniform;
    for (const bool digest : {true, false}) {
      ScheduleConfig config;
      config.seed = seed;
      config.digest_sync = digest;
      config.workload = shape;
      const ScheduleResult result = run_schedule(config);
      EXPECT_TRUE(result.passed) << "regression seed resurfaced ("
                                 << (digest ? "digest" : "push")
                                 << " sync): " << result.summary();
    }
  }
  EXPECT_TRUE(saw_shaped) << "migration regression seeds missing from the corpus";
}

// ------------------------------------------------- workload & variants --

TEST(SimWorkloadTest, ShapesKeepTheBaseScheduleIntact) {
  // Shape draws come from a separate RNG stream, so the topology and the
  // fault schedule for a seed are identical under every shape — shapes
  // add adversity on top, they never reshuffle the run underneath.
  for (const std::uint64_t seed : {3ull, 19ull, 42ull}) {
    ScheduleConfig base;
    base.seed = seed;
    const ScheduleResult uniform = run_schedule(base);
    for (const workload::WorkloadShape shape :
         {workload::WorkloadShape::kZipf, workload::WorkloadShape::kFlash,
          workload::WorkloadShape::kChurn}) {
      ScheduleConfig shaped = base;
      shaped.workload = shape;
      const ScheduleResult result = run_schedule(shaped);
      EXPECT_EQ(result.topology, uniform.topology) << "seed " << seed;
      EXPECT_EQ(result.edges, uniform.edges) << "seed " << seed;
      EXPECT_EQ(result.crashes, uniform.crashes) << "seed " << seed;
      EXPECT_EQ(result.partitions, uniform.partitions) << "seed " << seed;
      EXPECT_TRUE(result.passed) << result.summary();
    }
  }
}

TEST(SimWorkloadTest, ShapedRunsAreSeedDeterministic) {
  for (const workload::WorkloadShape shape :
       {workload::WorkloadShape::kZipf, workload::WorkloadShape::kFlash,
        workload::WorkloadShape::kChurn}) {
    ScheduleConfig config;
    config.seed = 19;
    config.workload = shape;
    const ScheduleResult first = run_schedule(config);
    const ScheduleResult second = run_schedule(config);
    EXPECT_EQ(first.trace_digest, second.trace_digest);
    EXPECT_EQ(first.state_digest, second.state_digest);
    EXPECT_EQ(first.migrations, second.migrations);
  }
}

TEST(SimWorkloadTest, ChurnExercisesTheMigrationInvariant) {
  // Seed 195 (hierarchy) performs repeated cross-edge migrations with
  // successful handoffs; the migration-ryw invariant must actually run
  // (migrations > 0) and hold.
  ScheduleConfig config;
  config.seed = 195;
  config.workload = workload::WorkloadShape::kChurn;
  const ScheduleResult result = run_schedule(config);
  EXPECT_TRUE(result.passed) << result.summary();
  EXPECT_GT(result.migrations, 10u) << result.summary();
  EXPECT_LT(result.handoffs_failed, result.migrations) << result.summary();
}

TEST(SimVariantTest, ShadowsAreScheduleInvisible) {
  // The variant shadows replay off-network from CoW pre-state; turning
  // the cross-check off must not move a single byte of the schedule.
  for (const std::uint64_t seed : {7ull, 24ull}) {
    ScheduleConfig on, off;
    on.seed = off.seed = seed;
    off.variant_check = false;
    const ScheduleResult checked = run_schedule(on);
    const ScheduleResult plain = run_schedule(off);
    EXPECT_EQ(checked.trace_digest, plain.trace_digest) << "seed " << seed;
    EXPECT_EQ(checked.state_digest, plain.state_digest) << "seed " << seed;
    EXPECT_GT(checked.variant_checks, 0u);
    EXPECT_EQ(plain.variant_checks, 0u);
  }
}

TEST(SimVariantTest, PlantedVariantFaultIsCaught) {
  // Mirrors OptimisticAcksRegressionIsCaught for the execution engine: a
  // semantic fault planted on the legacy shadow (an unconditional UPDATE
  // skew on every replay) must surface as variant-agreement violations on
  // virtually every seed, each carrying the offending request.
  std::size_t caught = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScheduleConfig config;
    config.seed = seed;
    config.variant_fault = true;
    const ScheduleResult result = run_schedule(config);
    if (result.passed) continue;
    bool variant_violation = false;
    for (const Violation& v : result.violations) {
      if (v.invariant == "variant-agreement") variant_violation = true;
    }
    if (variant_violation) ++caught;
    EXPECT_GT(result.variant_divergences, 0u) << result.summary();
  }
  EXPECT_GE(caught, 4u) << "planted engine fault escaped the variant harness";
}

TEST(SimTraceTest, DigestIsOrderSensitive) {
  EventTrace a, b;
  a.record(1.0, "write", "x");
  a.record(2.0, "sync", "y");
  b.record(2.0, "sync", "y");
  b.record(1.0, "write", "x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SimTraceTest, DumpElidesTheMiddleOfLongTraces) {
  EventTrace trace;
  for (int i = 0; i < 100; ++i) trace.record(i, "e", std::to_string(i));
  const std::string dump = trace.dump(10);
  EXPECT_NE(dump.find("..."), std::string::npos);
  EXPECT_NE(dump.find("e 0"), std::string::npos);
  EXPECT_NE(dump.find("e 99"), std::string::npos);
}

}  // namespace
}  // namespace edgstr::sim
