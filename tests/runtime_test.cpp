#include <gtest/gtest.h>

#include "runtime/node.h"
#include "runtime/proxy.h"
#include "runtime/sync_engine.h"

namespace edgstr::runtime {
namespace {

const char* kServer = R"JS(
var count = 0;
db.query("CREATE TABLE events (n)");
app.post("/bump", function (req, res) {
  var by = req.params.by;
  compute(100);
  count = count + by;
  db.query("INSERT INTO events (n) VALUES (?)", [count]);
  res.send({ count: count });
});
app.get("/fail", function (req, res) {
  throw "deliberate failure";
});
app.get("/read", function (req, res) {
  res.send({ count: count });
});
)JS";

http::HttpRequest bump(double by) {
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/bump";
  req.params = json::Value::object({{"by", by}});
  return req;
}

// --------------------------------------------------------- ServiceRuntime --

TEST(ServiceRuntimeTest, HandlesRequestsAgainstLiveState) {
  ServiceRuntime svc(kServer);
  EXPECT_DOUBLE_EQ(svc.handle(bump(2)).response.body["count"].as_number(), 2.0);
  EXPECT_DOUBLE_EQ(svc.handle(bump(3)).response.body["count"].as_number(), 5.0);
  EXPECT_EQ(svc.requests_served(), 2u);
}

TEST(ServiceRuntimeTest, ReportsComputeUnits) {
  ServiceRuntime svc(kServer);
  EXPECT_DOUBLE_EQ(svc.handle(bump(1)).compute_units, 100.0);
}

TEST(ServiceRuntimeTest, CatchesHandlerFailures) {
  ServiceRuntime svc(kServer);
  http::HttpRequest req;
  req.path = "/fail";
  const ExecutionResult result = svc.handle(req);
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.response.status, 500);
  EXPECT_EQ(svc.failures(), 1u);
}

TEST(ServiceRuntimeTest, StateSnapshotRoundTrip) {
  ServiceRuntime svc(kServer);
  svc.handle(bump(7));
  const trace::Snapshot snap = svc.capture_state();
  ServiceRuntime other(kServer);
  other.restore_state(snap);
  http::HttpRequest req;
  req.path = "/read";
  EXPECT_DOUBLE_EQ(other.handle(req).response.body["count"].as_number(), 7.0);
}

TEST(ServiceRuntimeTest, RoutesEnumerated) {
  ServiceRuntime svc(kServer);
  EXPECT_EQ(svc.routes().size(), 3u);
  EXPECT_TRUE(svc.has_route({http::Verb::kPost, "/bump"}));
}

// -------------------------------------------------------------------- Node --

TEST(NodeTest, ExecutionTimeScalesWithComputeAndDevice) {
  netsim::SimClock clock;
  NodeSpec spec;
  spec.name = "n";
  spec.seconds_per_unit = 0.001;
  spec.request_overhead_s = 0.01;
  Node node(clock, spec);
  node.host(std::make_unique<ServiceRuntime>(kServer));

  double finished = -1;
  node.execute(bump(1), [&](ExecutionResult) { finished = clock.now(); });
  clock.run();
  EXPECT_NEAR(finished, 0.01 + 100 * 0.001, 1e-9);
  EXPECT_EQ(node.requests_completed(), 1u);
}

TEST(NodeTest, FifoQueueing) {
  netsim::SimClock clock;
  NodeSpec spec;
  spec.name = "n";
  spec.seconds_per_unit = 0.001;
  spec.request_overhead_s = 0.0;
  Node node(clock, spec);
  node.host(std::make_unique<ServiceRuntime>(kServer));
  double t1 = -1, t2 = -1;
  node.execute(bump(1), [&](ExecutionResult) { t1 = clock.now(); });
  node.execute(bump(1), [&](ExecutionResult) { t2 = clock.now(); });
  EXPECT_EQ(node.active_connections(), 2u);
  clock.run();
  EXPECT_NEAR(t1, 0.1, 1e-9);
  EXPECT_NEAR(t2, 0.2, 1e-9);  // queued behind the first
  EXPECT_EQ(node.active_connections(), 0u);
}

TEST(NodeTest, PowerStateRules) {
  netsim::SimClock clock;
  NodeSpec spec;
  spec.name = "n";
  Node node(clock, spec);
  node.host(std::make_unique<ServiceRuntime>(kServer));
  node.set_power_state(PowerState::kLowPower);
  EXPECT_THROW(node.execute(bump(1), [](ExecutionResult) {}), std::logic_error);
  node.set_power_state(PowerState::kActive);
  node.execute(bump(1), [](ExecutionResult) {});
  EXPECT_THROW(node.set_power_state(PowerState::kLowPower), std::logic_error);  // busy
  clock.run();
  node.set_power_state(PowerState::kLowPower);  // now allowed
}

TEST(NodeTest, EnergyIntegratesPowerStates) {
  netsim::SimClock clock;
  NodeSpec spec;
  spec.name = "n";
  spec.active_power_w = 4.0;
  spec.idle_power_w = 2.0;
  spec.lowpower_power_w = 0.5;
  Node node(clock, spec);
  // 10 s idle-active, then 10 s parked.
  clock.schedule(10.0, [&] { node.set_power_state(PowerState::kLowPower); });
  clock.schedule(20.0, [] {});
  clock.run();
  EXPECT_NEAR(node.time_active(), 10.0, 1e-9);
  EXPECT_NEAR(node.time_low_power(), 10.0, 1e-9);
  EXPECT_NEAR(node.consumed_energy_j(), 10 * 2.0 + 10 * 0.5, 1e-6);
}

TEST(NodeTest, ExecuteWithoutServiceThrows) {
  netsim::SimClock clock;
  Node node(clock, NodeSpec{});
  EXPECT_THROW(node.execute(bump(1), [](ExecutionResult) {}), std::logic_error);
}

// ------------------------------------------------------------- TwoTierPath --

TEST(TwoTierPathTest, LatencyReflectsWanTransfer) {
  netsim::Network net(1);
  netsim::LinkConfig wan;
  wan.latency_s = 0.1;
  wan.bandwidth_bps = 10000;
  wan.jitter_s = 0;
  net.connect("client", "cloud", wan);
  NodeSpec spec;
  spec.name = "cloud";
  spec.seconds_per_unit = 1e-6;
  spec.request_overhead_s = 0;
  Node cloud(net.clock(), spec);
  cloud.host(std::make_unique<ServiceRuntime>(kServer));
  TwoTierPath path(net, "client", cloud);

  double latency = -1;
  http::HttpRequest req = bump(1);
  req.payload_bytes = 10000;  // ~1 s serialization
  path.request(req, [&](http::HttpResponse resp, double l) {
    EXPECT_TRUE(resp.ok());
    latency = l;
  });
  net.clock().run();
  // ~1s upload + 2x 0.1s latency + tiny response.
  EXPECT_GT(latency, 1.1);
  EXPECT_LT(latency, 1.5);
  EXPECT_EQ(path.stats().requests, 1u);
}

// --------------------------------------------------------------- EdgeProxy --

struct ProxyWorld {
  netsim::Network net{1};
  Node edge;
  Node cloud;
  ProxyWorld()
      : edge(net.clock(), make_spec("edge", 1e-4)), cloud(net.clock(), make_spec("cloud", 1e-5)) {
    net.connect("client", "edge", netsim::LinkConfig::lan());
    net.connect("edge", "cloud", netsim::LinkConfig::limited_wan());
    net.connect("client", "cloud", netsim::LinkConfig::limited_wan());
    edge.host(std::make_unique<ServiceRuntime>(kServer));
    cloud.host(std::make_unique<ServiceRuntime>(kServer));
  }
  static NodeSpec make_spec(const std::string& name, double spu) {
    NodeSpec s;
    s.name = name;
    s.seconds_per_unit = spu;
    s.request_overhead_s = 0;
    return s;
  }
};

TEST(EdgeProxyTest, ServesReplicatedRouteLocally) {
  ProxyWorld w;
  EdgeProxy proxy(w.net, "client", w.edge, w.cloud, {{http::Verb::kPost, "/bump"}});
  double latency = -1;
  proxy.request(bump(1), [&](http::HttpResponse resp, double l) {
    EXPECT_TRUE(resp.ok());
    latency = l;
  });
  w.net.clock().run();
  EXPECT_EQ(proxy.stats().served_at_edge, 1u);
  EXPECT_EQ(proxy.stats().forwarded_to_cloud, 0u);
  EXPECT_LT(latency, 0.1);  // LAN only
}

TEST(EdgeProxyTest, ForwardsUnreplicatedRoutes) {
  ProxyWorld w;
  EdgeProxy proxy(w.net, "client", w.edge, w.cloud, {{http::Verb::kPost, "/bump"}});
  http::HttpRequest req;
  req.path = "/read";
  double latency = -1;
  proxy.request(req, [&](http::HttpResponse resp, double l) {
    EXPECT_TRUE(resp.ok());
    latency = l;
  });
  w.net.clock().run();
  EXPECT_EQ(proxy.stats().forwarded_to_cloud, 1u);
  EXPECT_GT(latency, 0.5);  // paid the WAN round trip
}

TEST(EdgeProxyTest, FailureFallsBackToCloud) {
  ProxyWorld w;
  // /fail is nominally replicated, but the edge handler throws.
  EdgeProxy proxy(w.net, "client", w.edge, w.cloud, {{http::Verb::kGet, "/fail"}});
  http::HttpRequest req;
  req.path = "/fail";
  int status = 0;
  proxy.request(req, [&](http::HttpResponse resp, double) { status = resp.status; });
  w.net.clock().run();
  // Forwarded; the cloud also fails, and its answer is relayed verbatim —
  // the cloud is assumed to handle failures (§IV-F).
  EXPECT_EQ(proxy.stats().failures_forwarded, 1u);
  EXPECT_EQ(status, 500);
}

TEST(EdgeProxyTest, ParkedEdgeForwardsEverything) {
  ProxyWorld w;
  EdgeProxy proxy(w.net, "client", w.edge, w.cloud, {{http::Verb::kPost, "/bump"}});
  w.edge.set_power_state(PowerState::kLowPower);
  proxy.request(bump(1), [&](http::HttpResponse resp, double) { EXPECT_TRUE(resp.ok()); });
  w.net.clock().run();
  EXPECT_EQ(proxy.stats().served_at_edge, 0u);
  EXPECT_EQ(proxy.stats().forwarded_to_cloud, 1u);
}

// ------------------------------------------------------------- SyncEngine --

struct SyncWorld {
  netsim::Network net{7};
  ServiceRuntime cloud_svc{kServer};
  ServiceRuntime edge_svc{kServer};
  std::shared_ptr<ReplicaState> cloud_state;
  std::shared_ptr<ReplicaState> edge_state;
  SyncEngine engine{net, "cloud"};

  SyncWorld() {
    net.connect("edge0", "cloud", netsim::LinkConfig::limited_wan());
    cloud_state = std::make_shared<ReplicaState>("cloud", &cloud_svc, std::set<std::string>{},
                                                 std::set<std::string>{"*"});
    edge_state = std::make_shared<ReplicaState>("edge0", &edge_svc, std::set<std::string>{},
                                                std::set<std::string>{"*"});
    const trace::Snapshot snap = cloud_svc.capture_state();
    cloud_state->attach_existing();
    edge_state->initialize_from_snapshot(snap);
    engine.set_cloud(cloud_state);
    engine.add_edge("edge0", edge_state);
  }
};

TEST(SyncEngineTest, EdgeChangesReachCloud) {
  SyncWorld w;
  w.edge_svc.handle(bump(5));
  const int rounds = w.engine.sync_until_converged();
  EXPECT_EQ(rounds, 1);
  http::HttpRequest req;
  req.path = "/read";
  EXPECT_DOUBLE_EQ(w.cloud_svc.handle(req).response.body["count"].as_number(), 5.0);
  EXPECT_GT(w.engine.total_sync_bytes(), 0u);
}

TEST(SyncEngineTest, CloudChangesReachEdge) {
  SyncWorld w;
  w.cloud_svc.handle(bump(9));
  w.engine.sync_until_converged();
  http::HttpRequest req;
  req.path = "/read";
  EXPECT_DOUBLE_EQ(w.edge_svc.handle(req).response.body["count"].as_number(), 9.0);
}

TEST(SyncEngineTest, IdleRoundsSendNoOps) {
  SyncWorld w;
  w.engine.sync_until_converged();
  w.engine.reset_traffic_stats();
  w.engine.tick();
  w.net.clock().run();
  // Idle sync messages carry only version vectors (framing), no ops.
  EXPECT_LT(w.engine.total_sync_bytes(), 600u);
}

TEST(SyncEngineTest, DatabaseRowsConvergeAcrossTiers) {
  SyncWorld w;
  w.edge_svc.handle(bump(1));
  w.edge_svc.handle(bump(2));
  w.cloud_svc.handle(bump(10));
  w.engine.sync_until_converged(8);
  EXPECT_TRUE(w.edge_state->converged_with(*w.cloud_state));
  const auto cloud_rows = w.cloud_svc.database().execute("SELECT * FROM events").rows.size();
  const auto edge_rows = w.edge_svc.database().execute("SELECT * FROM events").rows.size();
  EXPECT_EQ(cloud_rows, edge_rows);
  EXPECT_EQ(cloud_rows, 3u);
}

TEST(SyncEngineTest, PeriodicSyncRunsInBackground) {
  SyncWorld w;
  w.edge_svc.handle(bump(4));
  w.edge_state->record_local();
  w.engine.start(0.5);
  w.net.clock().run_until(3.0);
  w.engine.stop();
  EXPECT_TRUE(w.edge_state->converged_with(*w.cloud_state));
  // sync_until_converged must refuse while periodic mode could still be on.
  w.engine.start(0.5);
  EXPECT_THROW(w.engine.sync_until_converged(), std::logic_error);
  w.engine.stop();
}

}  // namespace
}  // namespace edgstr::runtime
// NOTE: appended suite — op-log compaction.
namespace edgstr::runtime {
namespace {

TEST(SyncCompactionTest, AckedOpsAreDroppedAndSyncStillWorks) {
  SyncWorld w;
  for (int i = 0; i < 10; ++i) w.edge_svc.handle(bump(1));
  w.engine.sync_until_converged(8);
  // Acks ride the *next* message after application, so run two extra idle
  // rounds for the acknowledgement vectors to circulate (the digest
  // direction alternates per round; one round only refreshes one side).
  for (int i = 0; i < 2; ++i) {
    w.engine.tick();
    w.net.clock().run();
  }

  const std::size_t edge_ops_before = w.edge_state->total_op_count();
  EXPECT_GT(edge_ops_before, 0u);
  const std::size_t dropped = w.engine.compact_logs();
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(w.edge_state->total_op_count(), edge_ops_before);

  // New activity after compaction still syncs correctly.
  w.edge_svc.handle(bump(100));
  EXPECT_GE(w.engine.sync_until_converged(8), 1);
  http::HttpRequest req;
  req.path = "/read";
  EXPECT_DOUBLE_EQ(w.cloud_svc.handle(req).response.body["count"].as_number(), 110.0);
}

TEST(SyncCompactionTest, UnackedOpsSurviveCompaction) {
  SyncWorld w;
  w.engine.sync_until_converged(8);  // establish acks at zero activity
  w.edge_svc.handle(bump(3));
  w.edge_state->record_local();
  // The cloud has not acked these new ops: compaction must keep them.
  const std::size_t ops = w.edge_state->total_op_count();
  w.engine.compact_logs();
  EXPECT_EQ(w.edge_state->total_op_count(), ops);
  EXPECT_GE(w.engine.sync_until_converged(8), 1);
}

TEST(SyncCompactionTest, OpLogFloorReportsServability) {
  crdt::OpLog log("a");
  for (int i = 0; i < 5; ++i) log.record(log.make_local(json::Value(i)));
  crdt::VersionVector acked;
  acked["a"] = 3;
  EXPECT_EQ(log.compact(acked), 3u);
  EXPECT_EQ(log.size(), 2u);
  // A peer at seq >= 3 can still be served; a fresh peer cannot.
  crdt::VersionVector caught_up;
  caught_up["a"] = 3;
  EXPECT_TRUE(log.can_serve(caught_up));
  EXPECT_FALSE(log.can_serve({}));
  EXPECT_EQ(log.compact_floor().at("a"), 3u);
  // changes_since for the caught-up peer returns exactly the kept ops.
  EXPECT_EQ(log.changes_since(caught_up).size(), 2u);
}

TEST(SyncCompactionTest, VersionMinIsPointwiseAndConservative) {
  crdt::VersionVector a, b;
  a["x"] = 5;
  a["y"] = 2;
  b["x"] = 3;  // y missing from b
  const crdt::VersionVector m = crdt::version_min(a, b);
  EXPECT_EQ(m.at("x"), 3u);
  EXPECT_EQ(m.at("y"), 0u);  // missing components floor to zero
}

}  // namespace
}  // namespace edgstr::runtime
