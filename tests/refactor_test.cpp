#include <gtest/gtest.h>

#include "minijs/parser.h"
#include "minijs/printer.h"
#include "refactor/codegen.h"
#include "refactor/dependence.h"
#include "refactor/extract.h"
#include "refactor/normalize.h"
#include "trace/fuzzer.h"

namespace edgstr::refactor {
namespace {

// The Figure-4-style service: unmarshal from req, compute, marshal result.
const char* kServer = R"JS(
var total = 0;
db.query("CREATE TABLE audit (n)");
function double(x) { return x * 2; }
app.post("/calc", function (req, res) {
  var n = req.params.n;
  var twice = double(n);
  total = total + twice;
  db.query("INSERT INTO audit (n) VALUES (?)", [twice]);
  res.send({ twice: twice, total: total });
});
)JS";

trace::FuzzReport fuzz_calc(trace::ProfilingHarness& harness) {
  http::ServiceProfile profile;
  profile.route = {http::Verb::kPost, "/calc"};
  profile.exemplar_params.push_back(json::Value::object({{"n", 10}}));
  profile.exemplar_results.push_back(json::Value());
  profile.invocation_count = 1;
  trace::Fuzzer fuzzer(harness, util::Rng(3));
  return fuzzer.fuzz(profile, 4);
}

// -------------------------------------------------------------- normalize --

TEST(NormalizeTest, HoistsNonTrivialCallArguments) {
  minijs::Program prog = minijs::parse_program(
      "app.get(\"/t\", function (req, res) { res.send({ v: req.params.x + 1 }); });");
  minijs::Program norm = normalize(prog);
  EXPECT_EQ(count_temporaries(prog), 0u);
  EXPECT_GE(count_temporaries(norm), 1u);
  const std::string printed = minijs::print_program(norm);
  EXPECT_NE(printed.find("var tv1"), std::string::npos);
  EXPECT_NE(printed.find("res.send(tv1)"), std::string::npos);
}

TEST(NormalizeTest, PreservesSemantics) {
  const char* source = R"JS(
    var g = 3;
    function f(a) { return a + g; }
    app.get("/t", function (req, res) {
      var acc = [];
      for (var i = 0; i < 3; i = i + 1) {
        acc.push(f(i * 10));
      }
      res.send({ acc: acc, top: f(acc[0] + acc[1]) });
    });
  )JS";
  auto run = [](const std::string& src) {
    trace::ProfilingHarness harness(src);
    http::HttpRequest req;
    req.path = "/t";
    req.params = json::Value::object({});
    return harness.invoke(http::Route{http::Verb::kGet, "/t"}, req).body;
  };
  const json::Value original = run(source);
  const json::Value normalized =
      run(minijs::print_program(normalize(minijs::parse_program(source))));
  EXPECT_EQ(original, normalized);
}

TEST(NormalizeTest, IsIdempotent) {
  minijs::Program prog = minijs::parse_program(
      "app.get(\"/t\", function (req, res) { res.send({ a: len([1,2]) }); });");
  const minijs::Program once = normalize(prog);
  const minijs::Program twice = normalize(once);
  EXPECT_EQ(minijs::print_program(once), minijs::print_program(twice));
}

TEST(NormalizeTest, FunctionLiteralArgumentsStayInline) {
  minijs::Program norm = normalize(minijs::parse_program(
      "app.get(\"/t\", function (req, res) { res.send(1); });"));
  // Handler must still be findable as a literal second argument.
  EXPECT_NE(find_handler(norm, {http::Verb::kGet, "/t"}), nullptr);
}

TEST(NormalizeTest, LoopHeadersNotHoisted) {
  const char* source = R"JS(
    app.get("/t", function (req, res) {
      var n = 0;
      while (n < len([1, 2, 3])) { n = n + 1; }
      res.send({ n: n });
    });
  )JS";
  // Would loop forever (or break) if the condition were hoisted once.
  trace::ProfilingHarness harness(
      minijs::print_program(normalize(minijs::parse_program(source))));
  http::HttpRequest req;
  req.path = "/t";
  const auto resp = harness.invoke(http::Route{http::Verb::kGet, "/t"}, req);
  EXPECT_DOUBLE_EQ(resp.body["n"].as_number(), 3.0);
}

// ----------------------------------------------------------- find_handler --

TEST(FindHandlerTest, LocatesByVerbAndPath) {
  minijs::Program prog = minijs::parse_program(R"JS(
    app.get("/a", function (req, res) { res.send(1); });
    app.post("/a", function (req, res) { res.send(2); });
  )JS");
  EXPECT_NE(find_handler(prog, {http::Verb::kGet, "/a"}), nullptr);
  EXPECT_NE(find_handler(prog, {http::Verb::kPost, "/a"}), nullptr);
  EXPECT_EQ(find_handler(prog, {http::Verb::kPut, "/a"}), nullptr);
  EXPECT_EQ(find_handler(prog, {http::Verb::kGet, "/b"}), nullptr);
}

// ------------------------------------------------------------- dependence --

class DependenceFixture : public ::testing::Test {
 protected:
  DependenceFixture()
      : harness(minijs::print_program(normalize(minijs::parse_program(kServer)))) {}
  trace::ProfilingHarness harness;
};

TEST_F(DependenceFixture, IdentifiesEntryAndExit) {
  DependenceAnalyzer analyzer(harness.interpreter().program());
  const ExtractionPlan plan = analyzer.analyze(fuzz_calc(harness));
  ASSERT_TRUE(plan.ok) << plan.error;
  EXPECT_FALSE(plan.entry_is_fallback);
  EXPECT_EQ(plan.unmar_var, "n");  // var n = req.params.n
  EXPECT_FALSE(plan.exit_is_fallback);
  // Exit marshals the response value (tv holding the send argument).
  EXPECT_FALSE(plan.mar_var.empty());
  EXPECT_GT(plan.included.size(), 2u);
}

TEST_F(DependenceFixture, TracksStateNeeds) {
  DependenceAnalyzer analyzer(harness.interpreter().program());
  const ExtractionPlan plan = analyzer.analyze(fuzz_calc(harness));
  ASSERT_TRUE(plan.ok);
  EXPECT_EQ(plan.needed_tables, (std::set<std::string>{"audit"}));
  EXPECT_EQ(plan.mutated_tables, (std::set<std::string>{"audit"}));
  EXPECT_TRUE(plan.needed_globals.count("total"));
  EXPECT_TRUE(plan.mutated_globals.count("total"));
  EXPECT_TRUE(plan.is_stateful());
  EXPECT_TRUE(plan.called_functions.count("double"));
  EXPECT_GT(plan.fact_count, 0u);
  EXPECT_GT(plan.derived_dep_count, 0u);
}

TEST_F(DependenceFixture, FailsGracefullyWithOneRun) {
  http::ServiceProfile profile;
  profile.route = {http::Verb::kPost, "/calc"};
  profile.exemplar_params.push_back(json::Value::object({{"n", 1}}));
  trace::Fuzzer fuzzer(harness, util::Rng(3));
  const trace::FuzzReport report = fuzzer.fuzz(profile, 1);
  DependenceAnalyzer analyzer(harness.interpreter().program());
  const ExtractionPlan plan = analyzer.analyze(report);
  EXPECT_FALSE(plan.ok);
  EXPECT_NE(plan.error.find("two successful"), std::string::npos);
}

TEST(DependenceTest, UnexecutedBranchGlobalsIncludedStatically) {
  const char* source = R"JS(
    var rare = 42;
    app.post("/svc", function (req, res) {
      var x = req.params.x;
      var out = 0;
      if (x > 1000000) { out = rare; } else { out = x; }
      res.send({ out: out });
    });
  )JS";
  trace::ProfilingHarness harness(
      minijs::print_program(normalize(minijs::parse_program(source))));
  http::ServiceProfile profile;
  profile.route = {http::Verb::kPost, "/svc"};
  profile.exemplar_params.push_back(json::Value::object({{"x", 5}}));
  trace::Fuzzer fuzzer(harness, util::Rng(3));
  DependenceAnalyzer analyzer(harness.interpreter().program());
  const ExtractionPlan plan = analyzer.analyze(fuzzer.fuzz(profile, 3));
  ASSERT_TRUE(plan.ok) << plan.error;
  // 'rare' is only read on the unexercised branch; the static closure pass
  // must still replicate it.
  EXPECT_TRUE(plan.needed_globals.count("rare"));
}

// ---------------------------------------------------------------- extract --

TEST_F(DependenceFixture, ExtractBuildsStandaloneFunction) {
  DependenceAnalyzer analyzer(harness.interpreter().program());
  const ExtractionPlan plan = analyzer.analyze(fuzz_calc(harness));
  const ExtractedFunction fn = extract_function(harness.interpreter().program(), plan);
  ASSERT_TRUE(fn.ok) << fn.error;
  EXPECT_EQ(fn.name, "ftn_calc_post");
  EXPECT_EQ(fn.request_param, "req");
  const std::string printed = minijs::print_stmt(fn.decl, 0);
  EXPECT_NE(printed.find("return"), std::string::npos);
  EXPECT_EQ(printed.find("res.send"), std::string::npos);  // marshal rewritten
  EXPECT_EQ(printed.find("res.status"), std::string::npos);
}

TEST_F(DependenceFixture, ExtractedFunctionComputesSameResult) {
  DependenceAnalyzer analyzer(harness.interpreter().program());
  const ExtractionPlan plan = analyzer.analyze(fuzz_calc(harness));
  const ExtractedFunction fn = extract_function(harness.interpreter().program(), plan);
  ASSERT_TRUE(fn.ok);

  // Run the extracted function in a fresh interpreter with the same state.
  const std::string replica_src =
      "var total = 0;\n"
      "db.query(\"CREATE TABLE audit (n)\");\n"
      "function double(x) { return x * 2; }\n" +
      minijs::print_stmt(fn.decl, 0);
  trace::ProfilingHarness replica(replica_src);
  minijs::JsValue req = minijs::JsValue::new_object();
  auto params = std::make_shared<minijs::JsObject>();
  params->set("n", minijs::JsValue(10.0));
  req.as_object()->set("params", minijs::JsValue(params));
  const minijs::JsValue out = replica.interpreter().call_global(fn.name, {req});
  EXPECT_DOUBLE_EQ(out.as_object()->get("twice").as_number(), 20.0);
  EXPECT_DOUBLE_EQ(out.as_object()->get("total").as_number(), 20.0);
}

TEST(ExtractTest, FunctionNaming) {
  EXPECT_EQ(function_name_for({http::Verb::kPost, "/predict"}), "ftn_predict_post");
  EXPECT_EQ(function_name_for({http::Verb::kGet, "/a/b-c"}), "ftn_a_b_c_get");
}

TEST(ExtractTest, FailsForMissingHandler) {
  minijs::Program prog = minijs::parse_program("var x = 1;");
  ExtractionPlan plan;
  plan.ok = true;
  plan.route = {http::Verb::kGet, "/ghost"};
  const ExtractedFunction fn = extract_function(prog, plan);
  EXPECT_FALSE(fn.ok);
}

// ---------------------------------------------------------------- codegen --

TEST(CodegenTest, TemplateSubstitution) {
  const std::string out = render_template("a {{x}} b {{y}} c {{unknown}} d",
                                          {{"x", "1"}, {"y", "2"}});
  EXPECT_EQ(out, "a 1 b 2 c  d");
}

TEST_F(DependenceFixture, GeneratedReplicaParsesAndServes) {
  DependenceAnalyzer analyzer(harness.interpreter().program());
  const ExtractionPlan plan = analyzer.analyze(fuzz_calc(harness));
  const ExtractedFunction fn = extract_function(harness.interpreter().program(), plan);
  const GeneratedReplica replica = ReplicaCodegen().generate(
      "calc-app", harness.interpreter().program(), {ServiceCodegen{plan, fn}});

  EXPECT_EQ(replica.served_routes().size(), 1u);
  // The generated source is valid MiniJS that registers the route and
  // produces the original result once state is restored.
  trace::ProfilingHarness edge(replica.source);
  trace::restore_globals(edge.interpreter(), harness.init_snapshot().globals_json());
  edge.database().restore(harness.init_snapshot().database_json());
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/calc";
  req.params = json::Value::object({{"n", 10}});
  const auto resp = edge.invoke(http::Route{http::Verb::kPost, "/calc"}, req);
  EXPECT_DOUBLE_EQ(resp.body["twice"].as_number(), 20.0);
}

}  // namespace
}  // namespace edgstr::refactor
