// Durable op log: CRC-framed records, power-loss recovery at every write
// offset, snapshot-gated compaction, rewrite crash-safety, and the
// fail_sync planted fault the sim's durable-op-loss invariant catches.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "durability/oplog_store.h"
#include "durability/storage.h"

namespace edgstr::durability {
namespace {

crdt::Op make_op(const std::string& origin, std::uint64_t seq, double value) {
  crdt::Op op;
  op.origin = origin;
  op.seq = seq;
  op.stamp = crdt::Stamp{seq, origin};
  op.payload = json::Value::object({{"k", "key" + std::to_string(seq)}, {"v", value}});
  return op;
}

crdt::Snapshot make_snapshot(const json::Value& state, crdt::VersionVector covered,
                             std::uint64_t lamport) {
  crdt::Snapshot snap;
  snap.state = state;
  snap.covered = std::move(covered);
  snap.lamport = lamport;
  snap.digest = crdt::Snapshot::content_digest(state);
  return snap;
}

/// End offsets of every complete frame in a log image (the byte positions
/// recovery may truncate to). Recomputed here from the wire layout — u32 LE
/// length, u32 crc, payload — so the test checks the format, not the code.
std::vector<std::size_t> frame_ends(const std::string& data) {
  std::vector<std::size_t> ends;
  std::size_t at = 0;
  while (data.size() - at >= 8) {
    std::size_t len = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) | static_cast<unsigned char>(data[at + static_cast<std::size_t>(i)]);
    }
    if (data.size() - at - 8 < len) break;
    at += 8 + len;
    ends.push_back(at);
  }
  return ends;
}

// -------------------------------------------------------------------- crc --

TEST(Crc32Test, MatchesTheIeeeCheckValue) {
  // The standard CRC-32/IEEE check vector; a wrong polynomial, init, or
  // reflection would make on-disk logs unreadable by any external tool.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

// ---------------------------------------------------------------- framing --

TEST(OpLogStoreTest, AppendSyncRecoverRoundtrips) {
  MemBackend backend;
  OpLogStore store(&backend);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) store.append_op("tables", make_op("e0", seq, 1.0));
  store.sync();

  const OpLogStore::Recovered rec = store.recover();
  EXPECT_EQ(rec.records, 5u);
  EXPECT_EQ(rec.truncated_records, 0u);
  EXPECT_FALSE(rec.snapshots.count("tables"));
  ASSERT_EQ(rec.ops.at("tables").size(), 5u);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    const crdt::Op& op = rec.ops.at("tables")[seq - 1];
    EXPECT_EQ(op.origin, "e0");
    EXPECT_EQ(op.seq, seq);
    EXPECT_EQ(op.payload["k"].as_string(), "key" + std::to_string(seq));
  }
  EXPECT_EQ(store.appended_ops(), 5u);
  EXPECT_EQ(store.recoveries(), 1u);
}

TEST(OpLogStoreTest, RecoverIsIdempotentAndAppendsExtendIt) {
  MemBackend backend;
  OpLogStore store(&backend);
  store.append_op("tables", make_op("e0", 1, 1.0));
  store.sync();

  const OpLogStore::Recovered first = store.recover();
  const OpLogStore::Recovered again = store.recover();
  EXPECT_EQ(first.op_count(), 1u);
  EXPECT_EQ(again.op_count(), 1u);  // recover . recover = recover

  store.append_op("tables", make_op("e0", 2, 2.0));
  store.sync();
  EXPECT_EQ(store.recover().op_count(), 2u);  // appends between recoveries extend
}

TEST(OpLogStoreTest, SnapshotRecordSupersedesCoveredOps) {
  MemBackend backend;
  OpLogStore store(&backend);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) store.append_op("tables", make_op("e0", seq, 1.0));
  store.append_snapshot("tables",
                        make_snapshot(json::Value::object({{"rows", 3}}), {{"e0", 2}}, 9));
  store.append_op("tables", make_op("e0", 4, 4.0));
  store.sync();

  const OpLogStore::Recovered rec = store.recover();
  ASSERT_TRUE(rec.snapshots.count("tables"));
  EXPECT_EQ(rec.snapshots.at("tables").covered.at("e0"), 2u);
  EXPECT_EQ(rec.snapshots.at("tables").lamport, 9u);
  // The snapshot stands in for seqs 1..2; 3 (logged before the snapshot
  // but past its cover) and 4 replay on top.
  ASSERT_EQ(rec.ops.at("tables").size(), 2u);
  EXPECT_EQ(rec.ops.at("tables")[0].seq, 3u);
  EXPECT_EQ(rec.ops.at("tables")[1].seq, 4u);
}

// ------------------------------------------------------------- power loss --

// The flagship property: for EVERY byte offset a power loss can cut the
// unsynced tail at, recovery yields exactly the complete-frame prefix —
// never a torn op, never a lost synced one — and persists the truncation.
TEST(OpLogStoreTest, PowerLossAtEveryOffsetRecoversTheCleanPrefix) {
  // Build the reference image once: 3 synced ops, then 4 unsynced ones.
  MemBackend reference;
  OpLogStore ref_store(&reference);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ref_store.append_op("tables", make_op("e0", seq, double(seq)));
  }
  ref_store.sync();
  const std::uint64_t durable = reference.size() - reference.unsynced_bytes();
  for (std::uint64_t seq = 4; seq <= 7; ++seq) {
    ref_store.append_op("tables", make_op("e0", seq, double(seq)));
  }
  const std::string full = reference.read_all();
  const std::uint64_t unsynced = reference.unsynced_bytes();
  ASSERT_GT(unsynced, 0u);
  const std::vector<std::size_t> ends = frame_ends(full);
  ASSERT_EQ(ends.size(), 7u);

  for (std::uint64_t keep = 0; keep <= unsynced; ++keep) {
    // MemBackend(bytes) starts with `bytes` durable — exactly the platter
    // image power_loss(keep) leaves behind.
    const std::string platter = full.substr(0, durable + keep);
    MemBackend backend(platter);
    OpLogStore store(&backend);
    const OpLogStore::Recovered rec = store.recover();

    std::size_t complete = 0, clean_end = 0;
    for (const std::size_t end : ends) {
      if (end <= platter.size()) {
        ++complete;
        clean_end = end;
      }
    }
    ASSERT_GE(complete, 3u) << "a synced op was lost at keep=" << keep;
    ASSERT_EQ(rec.op_count(), complete) << "keep=" << keep;
    // Recovered ops are exactly the op-sequence prefix, in order.
    const std::vector<crdt::Op>& ops = rec.ops.at("tables");
    for (std::size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(ops[i].seq, i + 1) << "keep=" << keep;
    }
    if (platter.size() == clean_end) {
      EXPECT_EQ(rec.truncated_records, 0u) << "keep=" << keep;
    } else {
      EXPECT_EQ(rec.truncated_records, 1u) << "keep=" << keep;
      EXPECT_EQ(rec.truncated_bytes, platter.size() - clean_end) << "keep=" << keep;
    }
    // The truncation is persisted: the torn tail can never resurface.
    EXPECT_EQ(backend.size(), clean_end) << "keep=" << keep;
    const OpLogStore::Recovered again = store.recover();
    EXPECT_EQ(again.op_count(), complete) << "keep=" << keep;
    EXPECT_EQ(again.truncated_records, 0u) << "keep=" << keep;
  }
}

TEST(OpLogStoreTest, CorruptMiddleRecordTruncatesEverythingAfterIt) {
  MemBackend reference;
  OpLogStore ref_store(&reference);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    ref_store.append_op("tables", make_op("e0", seq, double(seq)));
  }
  std::string image = reference.read_all();
  const std::vector<std::size_t> ends = frame_ends(image);
  ASSERT_EQ(ends.size(), 5u);
  // Flip one payload byte inside record 3: its CRC fails, and the scan must
  // stop there even though records 4 and 5 are intact bytes downstream —
  // after a torn write nothing past the tear is trustworthy.
  image[ends[2] - 1] ^= 0x01;
  MemBackend backend(image);
  OpLogStore store(&backend);
  const OpLogStore::Recovered rec = store.recover();
  EXPECT_EQ(rec.op_count(), 2u);
  EXPECT_EQ(rec.truncated_records, 1u);
  EXPECT_EQ(rec.truncated_bytes, image.size() - ends[1]);
}

// -------------------------------------------------------------- compaction --

TEST(OpLogStoreTest, CompactionDropsCoveredOpsAndShrinksTheLog) {
  MemBackend backend;
  OpLogStore store(&backend);
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    store.append_op("tables", make_op("e0", seq, double(seq)));
  }
  store.sync();
  const std::uint64_t before = store.bytes();

  std::map<std::string, crdt::Snapshot> snaps;
  snaps["tables"] = make_snapshot(json::Value::object({{"rows", 8}}), {{"e0", 8}}, 20);
  EXPECT_EQ(store.compact(snaps), 8u);
  EXPECT_LT(store.bytes(), before);
  EXPECT_EQ(store.compactions(), 1u);

  const OpLogStore::Recovered rec = store.recover();
  ASSERT_TRUE(rec.snapshots.count("tables"));
  ASSERT_EQ(rec.ops.at("tables").size(), 2u);
  EXPECT_EQ(rec.ops.at("tables")[0].seq, 9u);
  EXPECT_EQ(rec.ops.at("tables")[1].seq, 10u);
}

TEST(OpLogStoreTest, CrashMidCompactionRecoversTheOldImage) {
  // rewrite() is atomic-replace: until a sync() commits the rebuilt log,
  // the old content stays durable. A compaction whose commit never lands
  // (fail_sync models the crash window) must lose neither the old nor the
  // new log — power loss falls back to the pre-compaction image.
  MemBackend backend;
  OpLogStore store(&backend);
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    store.append_op("tables", make_op("e0", seq, double(seq)));
  }
  store.sync();

  backend.set_fail_sync(true);  // the compaction's commit sync is a lie
  std::map<std::string, crdt::Snapshot> snaps;
  snaps["tables"] = make_snapshot(json::Value::object({{"rows", 6}}), {{"e0", 6}}, 12);
  store.compact(snaps);
  backend.set_fail_sync(false);
  backend.power_loss(0);

  const OpLogStore::Recovered rec = store.recover();
  EXPECT_FALSE(rec.snapshots.count("tables"));  // the new image never committed
  EXPECT_EQ(rec.op_count(), 6u);                // the old one is fully intact
}

TEST(OpLogStoreTest, UnsyncedPlainRewriteAlsoFallsBackToTheOldImage) {
  MemBackend backend;
  OpLogStore store(&backend);
  store.append_op("tables", make_op("e0", 1, 1.0));
  store.sync();
  const std::string old_image = backend.read_all();

  backend.rewrite("replacement that never reaches the platter");
  EXPECT_GT(backend.unsynced_bytes(), 0u);
  backend.power_loss(999);  // keep-bytes are meaningless for a lost rewrite
  EXPECT_EQ(backend.read_all(), old_image);
  EXPECT_EQ(store.recover().op_count(), 1u);
}

// ------------------------------------------------------------- fail_sync --

TEST(OpLogStoreTest, LyingFsyncLosesEverythingWithThePower) {
  // The planted fault behind the sim's durable-op-loss invariant: sync()
  // claims success but makes nothing durable, so every "fsynced" op dies.
  MemBackend backend;
  backend.set_fail_sync(true);
  OpLogStore store(&backend);
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    store.append_op("tables", make_op("e0", seq, double(seq)));
    store.sync();
  }
  EXPECT_EQ(store.fsyncs(), 4u);            // the store believes the disk
  EXPECT_GT(backend.unsynced_bytes(), 0u);  // the platter never saw a byte

  backend.power_loss(0);
  EXPECT_EQ(store.recover().op_count(), 0u);
}

// ------------------------------------------------------------ FileBackend --

TEST(FileBackendTest, SurvivesCloseAndReopen) {
  const std::string path = std::string(::testing::TempDir()) + "edgstr_oplog_roundtrip.log";
  std::remove(path.c_str());
  {
    FileBackend backend(path);
    OpLogStore store(&backend);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      store.append_op("tables", make_op("e0", seq, double(seq)));
    }
    store.append_snapshot("globals",
                          make_snapshot(json::Value::object({{"count", 5}}), {{"e0", 5}}, 11));
    store.sync();
  }
  {
    FileBackend backend(path);
    OpLogStore store(&backend);
    const OpLogStore::Recovered rec = store.recover();
    EXPECT_EQ(rec.ops.at("tables").size(), 5u);
    ASSERT_TRUE(rec.snapshots.count("globals"));
    EXPECT_EQ(rec.snapshots.at("globals").state["count"].as_number(), 5.0);

    // Compaction (write-temp + rename) must leave a log the next open reads.
    std::map<std::string, crdt::Snapshot> snaps;
    snaps["tables"] = make_snapshot(json::Value::object({{"rows", 4}}), {{"e0", 4}}, 9);
    EXPECT_EQ(store.compact(snaps), 4u);
  }
  {
    FileBackend backend(path);
    OpLogStore store(&backend);
    const OpLogStore::Recovered rec = store.recover();
    ASSERT_TRUE(rec.snapshots.count("tables"));
    ASSERT_EQ(rec.ops.at("tables").size(), 1u);
    EXPECT_EQ(rec.ops.at("tables")[0].seq, 5u);
  }
  std::remove(path.c_str());
}

TEST(FileBackendTest, TruncatedFileRecoversItsCleanPrefix) {
  const std::string path = std::string(::testing::TempDir()) + "edgstr_oplog_torn.log";
  std::remove(path.c_str());
  std::string image;
  {
    FileBackend backend(path);
    OpLogStore store(&backend);
    for (std::uint64_t seq = 1; seq <= 3; ++seq) {
      store.append_op("tables", make_op("e0", seq, double(seq)));
    }
    store.sync();
    image = backend.read_all();
  }
  // Tear the file mid-record, as a real power loss would leave it.
  const std::vector<std::size_t> ends = frame_ends(image);
  ASSERT_EQ(ends.size(), 3u);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(image.data(), 1, ends[1] + 5, f);  // 2 records + a torn third
    std::fclose(f);
  }
  {
    FileBackend backend(path);
    OpLogStore store(&backend);
    const OpLogStore::Recovered rec = store.recover();
    EXPECT_EQ(rec.op_count(), 2u);
    EXPECT_EQ(rec.truncated_records, 1u);
    EXPECT_EQ(backend.size(), ends[1]);  // truncation persisted to the file
  }
  std::remove(path.c_str());
}

TEST(OpLogStoreTest, NullBackendIsRejected) {
  EXPECT_THROW(OpLogStore(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace edgstr::durability
