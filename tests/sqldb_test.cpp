#include <gtest/gtest.h>

#include "sqldb/database.h"

namespace edgstr::sqldb {
namespace {

class DatabaseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute("CREATE TABLE users (id, name, age)");
    db.execute("INSERT INTO users (id, name, age) VALUES (1, 'ada', 36)");
    db.execute("INSERT INTO users (id, name, age) VALUES (2, 'bob', 25)");
    db.execute("INSERT INTO users (id, name, age) VALUES (3, 'cyd', 31)");
    db.drain_mutations();
  }
  Database db;
};

TEST(SqlValueTest, ComparisonSemantics) {
  EXPECT_EQ(SqlValue(1).compare(SqlValue(1.0)), 0);  // numeric cross-type
  EXPECT_LT(SqlValue(1).compare(SqlValue(2)), 0);
  EXPECT_GT(SqlValue("b").compare(SqlValue("a")), 0);
  EXPECT_EQ(SqlValue().compare(SqlValue()), 0);      // NULL == NULL
  EXPECT_LT(SqlValue().compare(SqlValue(0)), 0);     // NULL orders first
  EXPECT_LT(SqlValue(99).compare(SqlValue("a")), 0); // numbers before text
}

TEST(SqlValueTest, LikePatterns) {
  EXPECT_TRUE(SqlValue("hello world").like("hello%"));
  EXPECT_TRUE(SqlValue("hello world").like("%world"));
  EXPECT_TRUE(SqlValue("hello").like("h_llo"));
  EXPECT_TRUE(SqlValue("abc").like("%b%"));
  EXPECT_FALSE(SqlValue("abc").like("b%"));
  EXPECT_FALSE(SqlValue(42).like("%"));  // non-text never matches
}

TEST(SqlValueTest, JsonRoundTrip) {
  for (const SqlValue& v : {SqlValue(), SqlValue(7), SqlValue(2.5), SqlValue("txt")}) {
    EXPECT_EQ(SqlValue::from_json(v.to_json()).compare(v), 0);
  }
}

TEST(SqlParserTest, RejectsGarbage) {
  EXPECT_THROW(parse_sql("SELEKT * FROM t"), SqlError);
  EXPECT_THROW(parse_sql("SELECT FROM"), SqlError);
  EXPECT_THROW(parse_sql("INSERT INTO t"), SqlError);
  EXPECT_THROW(parse_sql(""), SqlError);
  EXPECT_FALSE(looks_like_sql("just some text"));
  EXPECT_TRUE(looks_like_sql("SELECT a FROM b"));
}

TEST(SqlParserTest, ClassifiesMutations) {
  EXPECT_TRUE(is_mutation(parse_sql("INSERT INTO t (a) VALUES (1)")));
  EXPECT_TRUE(is_mutation(parse_sql("UPDATE t SET a = 1")));
  EXPECT_TRUE(is_mutation(parse_sql("DELETE FROM t")));
  EXPECT_FALSE(is_mutation(parse_sql("SELECT a FROM t")));
  EXPECT_EQ(target_table(parse_sql("SELECT a FROM tbl")), "tbl");
  EXPECT_EQ(target_table(parse_sql("COMMIT")), "");
}

TEST_F(DatabaseFixture, SelectAll) {
  const ResultSet rs = db.execute("SELECT * FROM users");
  EXPECT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"id", "name", "age"}));
}

TEST_F(DatabaseFixture, SelectWhereAndProjection) {
  const ResultSet rs = db.execute("SELECT name FROM users WHERE age > 30");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"name"}));
}

TEST_F(DatabaseFixture, SelectOrderByDescLimit) {
  const ResultSet rs = db.execute("SELECT name FROM users ORDER BY age DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_text(), "ada");
  EXPECT_EQ(rs.rows[1][0].as_text(), "cyd");
}

TEST_F(DatabaseFixture, PlaceholdersBindInOrder) {
  const ResultSet rs =
      db.execute("SELECT name FROM users WHERE age >= ? AND age <= ?", {SqlValue(25), SqlValue(31)});
  EXPECT_EQ(rs.rows.size(), 2u);
  EXPECT_THROW(db.execute("SELECT * FROM users WHERE id = ?"), SqlError);  // missing bind
}

TEST_F(DatabaseFixture, UpdateAffectsMatchingRows) {
  const ResultSet rs = db.execute("UPDATE users SET age = 40 WHERE name = 'bob'");
  EXPECT_EQ(rs.affected, 1u);
  EXPECT_EQ(db.execute("SELECT age FROM users WHERE name = 'bob'").rows[0][0].as_int(), 40);
}

TEST_F(DatabaseFixture, DeleteRemovesRows) {
  const ResultSet rs = db.execute("DELETE FROM users WHERE age < 30");
  EXPECT_EQ(rs.affected, 1u);
  EXPECT_EQ(db.execute("SELECT * FROM users").rows.size(), 2u);
}

TEST_F(DatabaseFixture, LikeInWhere) {
  const ResultSet rs = db.execute("SELECT name FROM users WHERE name LIKE '%d%'");
  EXPECT_EQ(rs.rows.size(), 2u);  // ada, cyd
}

TEST_F(DatabaseFixture, InsertWithoutColumnListUsesTableOrder) {
  db.execute("INSERT INTO users VALUES (4, 'dee', 28)");
  EXPECT_EQ(db.execute("SELECT * FROM users").rows.size(), 4u);
  EXPECT_THROW(db.execute("INSERT INTO users VALUES (5)"), SqlError);
}

TEST_F(DatabaseFixture, UnknownTableOrColumnThrows) {
  EXPECT_THROW(db.execute("SELECT * FROM ghosts"), SqlError);
  EXPECT_THROW(db.execute("SELECT ghost FROM users"), SqlError);
  EXPECT_THROW(db.execute("CREATE TABLE users (x)"), SqlError);  // duplicate
}

// ---- transactions (the shadow-execution mechanism of §III-C) ------------

TEST_F(DatabaseFixture, RollbackRestoresTables) {
  db.execute("START TRANSACTION");
  db.execute("INSERT INTO users (id, name, age) VALUES (9, 'tmp', 1)");
  db.execute("UPDATE users SET age = 99 WHERE id = 1");
  EXPECT_EQ(db.execute("SELECT * FROM users").rows.size(), 4u);
  db.execute("ROLLBACK");
  EXPECT_EQ(db.execute("SELECT * FROM users").rows.size(), 3u);
  EXPECT_EQ(db.execute("SELECT age FROM users WHERE id = 1").rows[0][0].as_int(), 36);
}

TEST_F(DatabaseFixture, RollbackDiscardsMutationLog) {
  db.execute("BEGIN");
  db.execute("INSERT INTO users (id, name, age) VALUES (9, 'tmp', 1)");
  db.execute("ROLLBACK");
  EXPECT_TRUE(db.drain_mutations().empty());
}

TEST_F(DatabaseFixture, CommitKeepsChangesAndLog) {
  db.execute("BEGIN");
  db.execute("INSERT INTO users (id, name, age) VALUES (9, 'tmp', 1)");
  db.execute("COMMIT");
  EXPECT_EQ(db.execute("SELECT * FROM users").rows.size(), 4u);
  EXPECT_EQ(db.drain_mutations().size(), 1u);
}

TEST_F(DatabaseFixture, TransactionErrors) {
  EXPECT_THROW(db.execute("COMMIT"), SqlError);
  EXPECT_THROW(db.execute("ROLLBACK"), SqlError);
  db.execute("BEGIN");
  EXPECT_THROW(db.execute("BEGIN"), SqlError);  // no nesting
  db.execute("ROLLBACK");
}

// ---- snapshots -----------------------------------------------------------

TEST_F(DatabaseFixture, SnapshotRestoreRoundTrip) {
  const json::Value snap = db.snapshot();
  db.execute("DELETE FROM users");
  db.execute("DROP TABLE users");
  db.restore(snap);
  EXPECT_EQ(db.execute("SELECT * FROM users").rows.size(), 3u);
  Database other;
  other.restore(snap);
  EXPECT_TRUE(db == other);
}

TEST_F(DatabaseFixture, RestorePreservesRidCounter) {
  const json::Value snap = db.snapshot();
  Database other;
  other.restore(snap);
  // New inserts in the restored DB must not collide with existing rids.
  other.execute("INSERT INTO users (id, name, age) VALUES (4, 'new', 20)");
  const auto muts = other.drain_mutations();
  ASSERT_EQ(muts.size(), 1u);
  EXPECT_GE(muts[0].rid, 4u);
}

TEST_F(DatabaseFixture, StateSizeTracksContent) {
  const std::uint64_t before = db.state_size_bytes();
  db.execute("INSERT INTO users (id, name, age) VALUES (10, 'someone-with-a-long-name', 50)");
  EXPECT_GT(db.state_size_bytes(), before);
}

// ---- mutation log + replication -----------------------------------------

TEST_F(DatabaseFixture, MutationLogCapturesKindsAndCells) {
  db.execute("INSERT INTO users (id, name, age) VALUES (4, 'dee', 28)");
  db.execute("UPDATE users SET age = 29 WHERE id = 4");
  db.execute("DELETE FROM users WHERE id = 4");
  const auto muts = db.drain_mutations();
  ASSERT_EQ(muts.size(), 3u);
  EXPECT_EQ(muts[0].kind, RowMutation::Kind::kInsert);
  EXPECT_EQ(muts[1].kind, RowMutation::Kind::kUpdate);
  EXPECT_EQ(muts[1].cells[2].as_int(), 29);
  EXPECT_EQ(muts[2].kind, RowMutation::Kind::kDelete);
  EXPECT_EQ(muts[0].rid, muts[2].rid);
}

TEST_F(DatabaseFixture, ApplyReplicatedIsIdempotent) {
  RowMutation m{RowMutation::Kind::kInsert, "users", 77, {SqlValue(9), SqlValue("zed"), SqlValue(1)}};
  db.apply_replicated(m);
  db.apply_replicated(m);  // duplicate delivery
  EXPECT_EQ(db.execute("SELECT * FROM users WHERE id = 9").rows.size(), 1u);
  // Replicated application does not re-enter the mutation log.
  EXPECT_TRUE(db.drain_mutations().empty());
}

TEST_F(DatabaseFixture, ApplyReplicatedUpdateResurrects) {
  RowMutation m{RowMutation::Kind::kUpdate, "users", 88, {SqlValue(8), SqlValue("ghost"), SqlValue(2)}};
  db.apply_replicated(m);  // unknown rid: update-wins resurrect
  EXPECT_EQ(db.execute("SELECT * FROM users WHERE id = 8").rows.size(), 1u);
}

}  // namespace
}  // namespace edgstr::sqldb
