#include <gtest/gtest.h>

#include "vfs/vfs.h"

namespace edgstr::vfs {
namespace {

TEST(VfsTest, WriteReadRoundTrip) {
  Vfs fs;
  fs.write("data/a.txt", "hello");
  EXPECT_TRUE(fs.exists("data/a.txt"));
  EXPECT_EQ(fs.read("data/a.txt"), "hello");
}

TEST(VfsTest, ReadMissingThrows) {
  Vfs fs;
  EXPECT_THROW(fs.read("ghost"), std::out_of_range);
}

TEST(VfsTest, AppendCreatesAndExtends) {
  Vfs fs;
  fs.append("log", "a");
  fs.append("log", "b");
  EXPECT_EQ(fs.read("log"), "ab");
}

TEST(VfsTest, VersionBumpsOnEveryWrite) {
  Vfs fs;
  EXPECT_EQ(fs.version("f"), 0u);
  fs.write("f", "1");
  EXPECT_EQ(fs.version("f"), 1u);
  fs.append("f", "2");
  EXPECT_EQ(fs.version("f"), 2u);
  fs.write("f", "3");
  EXPECT_EQ(fs.version("f"), 3u);
}

TEST(VfsTest, RemoveReportsExistence) {
  Vfs fs;
  fs.write("f", "x");
  EXPECT_TRUE(fs.remove("f"));
  EXPECT_FALSE(fs.remove("f"));
  EXPECT_FALSE(fs.exists("f"));
}

TEST(VfsTest, FingerprintTracksContent) {
  Vfs fs;
  fs.write("f", "abc");
  const std::uint64_t fp1 = fs.fingerprint("f");
  fs.write("f", "abd");
  EXPECT_NE(fs.fingerprint("f"), fp1);
  EXPECT_EQ(fs.fingerprint("missing"), 0u);
}

TEST(VfsTest, TotalBytesAndList) {
  Vfs fs;
  fs.write("a", "12345");
  fs.write("b", "123");
  EXPECT_EQ(fs.total_bytes(), 8u);
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"a", "b"}));
}

TEST(VfsTest, AccessTrackingRecordsKinds) {
  Vfs fs;
  fs.write("a", "1");
  fs.start_tracking();
  fs.read("a");
  fs.write("b", "2");
  fs.append("b", "3");
  fs.remove("a");
  const auto accesses = fs.stop_tracking();
  ASSERT_EQ(accesses.size(), 4u);
  EXPECT_EQ(accesses[0].kind, FileAccess::Kind::kRead);
  EXPECT_EQ(accesses[1].kind, FileAccess::Kind::kWrite);
  EXPECT_EQ(accesses[2].kind, FileAccess::Kind::kAppend);
  EXPECT_EQ(accesses[3].kind, FileAccess::Kind::kRemove);
  // Tracking stopped: no further records.
  fs.write("c", "4");
  EXPECT_FALSE(fs.tracking());
}

TEST(VfsTest, SnapshotRestoreRoundTrip) {
  Vfs fs;
  fs.write("m/model.bin", "weights");
  fs.write("d/log.txt", "entry1");
  const json::Value snap = fs.snapshot();
  fs.write("d/log.txt", "changed");
  fs.write("extra", "x");
  fs.restore(snap);
  EXPECT_EQ(fs.read("d/log.txt"), "entry1");
  EXPECT_FALSE(fs.exists("extra"));
  Vfs other;
  other.restore(snap);
  EXPECT_TRUE(fs == other);
}

TEST(VfsTest, CopyFromSubset) {
  Vfs src;
  src.write("keep", "k");
  src.write("skip", "s");
  Vfs dst;
  dst.copy_from(src, {"keep", "nonexistent"});
  EXPECT_TRUE(dst.exists("keep"));
  EXPECT_FALSE(dst.exists("skip"));
}

TEST(VfsTest, PathClassifier) {
  EXPECT_TRUE(Vfs::looks_like_path("models/det.bin"));
  EXPECT_TRUE(Vfs::looks_like_path("data/notes.log"));
  EXPECT_TRUE(Vfs::looks_like_path("/etc/conf.d/app"));
  EXPECT_TRUE(Vfs::looks_like_path("./rel.txt"));
  EXPECT_TRUE(Vfs::looks_like_path("https://host/file.bin"));
  EXPECT_FALSE(Vfs::looks_like_path("SELECT * FROM t"));
  EXPECT_FALSE(Vfs::looks_like_path("hello world"));
  EXPECT_FALSE(Vfs::looks_like_path(""));
}

TEST(VfsTest, EqualityComparesContents) {
  Vfs a, b;
  a.write("f", "same");
  b.write("f", "same");
  EXPECT_TRUE(a == b);
  b.write("f", "diff");
  EXPECT_FALSE(a == b);
  b.write("f", "same");
  b.write("g", "extra");
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace edgstr::vfs
