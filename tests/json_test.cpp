#include <gtest/gtest.h>

#include "json/parse.h"
#include "json/value.h"

namespace edgstr::json {
namespace {

TEST(JsonValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_TRUE(Value::array({1, 2}).is_array());
  EXPECT_TRUE(Value::object({{"a", 1}}).is_object());
}

TEST(JsonValueTest, TypeMismatchThrows) {
  EXPECT_THROW(Value(1.0).as_string(), std::logic_error);
  EXPECT_THROW(Value("x").as_number(), std::logic_error);
  EXPECT_THROW(Value().as_array(), std::logic_error);
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder) {
  Value v = Value::object({{"z", 1}, {"a", 2}, {"m", 3}});
  std::vector<std::string> keys;
  for (const auto& [k, val] : v.as_object()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonValueTest, ObjectSetOverwrites) {
  Object obj;
  obj.set("k", Value(1));
  obj.set("k", Value(2));
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_DOUBLE_EQ(obj.at("k").as_number(), 2.0);
}

TEST(JsonValueTest, ObjectEraseAndMissingKey) {
  Object obj;
  obj.set("k", Value(1));
  EXPECT_TRUE(obj.erase("k"));
  EXPECT_FALSE(obj.erase("k"));
  EXPECT_THROW(obj.at("k"), std::out_of_range);
}

TEST(JsonValueTest, FindReturnsNullptrWhenAbsent) {
  Value v = Value::object({{"a", 1}});
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_EQ(Value(3.0).find("a"), nullptr);  // non-object
}

TEST(JsonValueTest, EqualityIgnoresObjectKeyOrder) {
  Value a = Value::object({{"x", 1}, {"y", 2}});
  Value b = Value::object({{"y", 2}, {"x", 1}});
  EXPECT_EQ(a, b);
}

TEST(JsonValueTest, EqualityDeep) {
  Value a = Value::object({{"arr", Value::array({1, Value::object({{"k", "v"}})})}});
  Value b = Value::object({{"arr", Value::array({1, Value::object({{"k", "v"}})})}});
  Value c = Value::object({{"arr", Value::array({1, Value::object({{"k", "w"}})})}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(JsonDumpTest, CompactRendering) {
  Value v = Value::object({{"n", 1}, {"s", "x"}, {"b", true}, {"nil", nullptr},
                           {"a", Value::array({1, 2})}});
  EXPECT_EQ(v.dump(), R"({"n":1,"s":"x","b":true,"nil":null,"a":[1,2]})");
}

TEST(JsonDumpTest, EscapesSpecialCharacters) {
  EXPECT_EQ(Value("a\"b\\c\nd").dump(), R"("a\"b\\c\nd")");
}

TEST(JsonDumpTest, IntegersRenderWithoutDecimalPoint) {
  EXPECT_EQ(Value(42.0).dump(), "42");
  EXPECT_EQ(Value(-3.0).dump(), "-3");
}

TEST(JsonDumpTest, WireSizeMatchesDump) {
  Value v = Value::object({{"k", Value::array({1, 2, 3})}, {"s", "hello"}});
  EXPECT_EQ(v.wire_size(), v.dump().size());
}

TEST(JsonParseTest, RoundTripsComplexDocument) {
  const std::string text =
      R"({"a":[1,2.5,"three",null,true],"nested":{"deep":{"x":-1e3}},"empty":[],"eo":{}})";
  Value v = parse(text);
  EXPECT_EQ(parse(v.dump()), v);
  EXPECT_DOUBLE_EQ(v["nested"]["deep"]["x"].as_number(), -1000.0);
  EXPECT_EQ(v["a"][2].as_string(), "three");
}

TEST(JsonParseTest, ParsesEscapes) {
  Value v = parse(R"("line1\nline2\t\"quoted\"")");
  EXPECT_EQ(v.as_string(), "line1\nline2\t\"quoted\"");
}

TEST(JsonParseTest, ParsesUnicodeEscapes) {
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);
  EXPECT_THROW(parse("'single'"), ParseError);
}

TEST(JsonParseTest, TryParseReturnsNulloptOnFailure) {
  EXPECT_FALSE(try_parse("{oops").has_value());
  EXPECT_TRUE(try_parse("{}").has_value());
}

TEST(JsonParseTest, NumbersWithExponents) {
  EXPECT_DOUBLE_EQ(parse("1.5e3").as_number(), 1500.0);
  EXPECT_DOUBLE_EQ(parse("-2E-2").as_number(), -0.02);
}

TEST(JsonParseTest, WhitespaceTolerant) {
  Value v = parse("  {\n\t\"a\" : [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v["a"].as_array().size(), 2u);
}

TEST(JsonParseTest, PrettyPrintReparses) {
  Value v = Value::object({{"list", Value::array({1, 2})}, {"o", Value::object({{"k", "v"}})}});
  EXPECT_EQ(parse(v.dump_pretty()), v);
}

TEST(JsonValueTest, ArrayIndexOutOfRangeThrows) {
  Value v = Value::array({1});
  EXPECT_THROW(v[std::size_t{5}], std::out_of_range);
}

}  // namespace
}  // namespace edgstr::json
