// Behavioral tests for the seven subject applications: every service
// answers its workload request with the expected fields and state effects.
// These double as the "original regression tests that come with the apps"
// the paper replays for RQ1.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "trace/state_capture.h"

namespace edgstr::apps {
namespace {

/// Runs one request against a fresh instance of the app.
http::HttpResponse run_one(const SubjectApp& app, const http::HttpRequest& req) {
  trace::ProfilingHarness harness(app.server_source);
  return harness.invoke(http::Route{req.verb, req.path}, req);
}

/// Runs the full workload in order against one live instance.
std::vector<http::HttpResponse> run_workload(const SubjectApp& app) {
  trace::ProfilingHarness harness(app.server_source);
  std::vector<http::HttpResponse> out;
  for (const http::HttpRequest& req : app.workload) {
    out.push_back(harness.invoke(http::Route{req.verb, req.path}, req));
  }
  return out;
}

TEST(AppInventoryTest, SevenAppsFortyTwoServices) {
  EXPECT_EQ(all_subject_apps().size(), 7u);
  EXPECT_EQ(total_service_count(), 42u);
}

TEST(AppInventoryTest, EveryWorkloadRequestSucceeds) {
  for (const SubjectApp* app : all_subject_apps()) {
    const auto responses = run_workload(*app);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      EXPECT_TRUE(responses[i].ok())
          << app->name << " request #" << i << " (" << app->workload[i].path
          << ") -> " << responses[i].status << " " << responses[i].body.dump();
    }
  }
}

TEST(AppInventoryTest, ServerSourcesRegisterExactlyTheDocumentedServices) {
  for (const SubjectApp* app : all_subject_apps()) {
    trace::ProfilingHarness harness(app->server_source);
    EXPECT_EQ(harness.interpreter().routes().size(), app->services.size()) << app->name;
    for (const http::Route& svc : app->services) {
      EXPECT_TRUE(harness.interpreter().has_route(svc))
          << app->name << " missing " << svc.to_string();
    }
  }
}

TEST(FobojetTest, PredictIsDeterministicPerImage) {
  const SubjectApp& app = fobojet();
  const http::HttpRequest req = app.workload.front();
  const http::HttpResponse a = run_one(app, req);
  const http::HttpResponse b = run_one(app, req);
  EXPECT_EQ(a.body["detection"]["label"], b.body["detection"]["label"]);
  EXPECT_GE(a.body["detection"]["score"].as_number(), 0.0);
  EXPECT_LE(a.body["detection"]["score"].as_number(), 1.01);
  EXPECT_EQ(a.body["detection"]["box"].as_array().size(), 4u);
}

TEST(FobojetTest, DifferentImagesCanDiffer) {
  const SubjectApp& app = fobojet();
  http::HttpRequest r1 = app.workload[0];
  http::HttpRequest r2 = app.workload[1];  // different payload size
  const http::HttpResponse a = run_one(app, r1);
  const http::HttpResponse b = run_one(app, r2);
  EXPECT_FALSE(a.body["detection"] == b.body["detection"]);
}

TEST(FobojetTest, HistoryReflectsDetections) {
  const SubjectApp& app = fobojet();
  trace::ProfilingHarness harness(app.server_source);
  for (int i = 0; i < 3; ++i) {
    harness.invoke({http::Verb::kPost, "/predict"}, app.workload[i]);
  }
  http::HttpRequest hist;
  hist.verb = http::Verb::kGet;
  hist.path = "/history";
  hist.params = json::Value::object({{"limit", 2}});
  const http::HttpResponse resp = harness.invoke({http::Verb::kGet, "/history"}, hist);
  EXPECT_EQ(resp.body["history"].as_array().size(), 2u);
  // Newest first (ORDER BY ts DESC).
  EXPECT_DOUBLE_EQ(resp.body["history"][std::size_t{0}]["ts"].as_number(), 3.0);
}

TEST(MnistTest, BatchPredictCountsMatch) {
  const SubjectApp& app = mnist_rest();
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/batch-predict";
  req.params = json::Value::object({{"count", 5}});
  req.payload_bytes = 5 * app.typical_payload_bytes;
  const http::HttpResponse resp = run_one(app, req);
  EXPECT_EQ(resp.body["digits"].as_array().size(), 5u);
  for (const json::Value& d : resp.body["digits"].as_array()) {
    EXPECT_GE(d.as_number(), 0);
    EXPECT_LE(d.as_number(), 9);
  }
}

TEST(BookwormTest, ReviewsAggregateAverage) {
  const SubjectApp& app = bookworm();
  trace::ProfilingHarness harness(app.server_source);
  auto review = [&](int stars) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/review";
    req.params = json::Value::object({{"book", 1}, {"stars", stars}, {"text", "t"}});
    harness.invoke({http::Verb::kPost, "/review"}, req);
  };
  review(2);
  review(4);
  http::HttpRequest get;
  get.verb = http::Verb::kGet;
  get.path = "/reviews";
  get.params = json::Value::object({{"book", 1}});
  const http::HttpResponse resp = harness.invoke({http::Verb::kGet, "/reviews"}, get);
  EXPECT_DOUBLE_EQ(resp.body["average"].as_number(), 3.0);
  EXPECT_EQ(resp.body["reviews"].as_array().size(), 2u);
}

TEST(MedChemTest, LipinskiVerdicts) {
  const SubjectApp& app = med_chem_rules();
  auto check = [&](double mw, double logp, int donors, int acceptors) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/check-lipinski";
    req.params = json::Value::object(
        {{"mw", mw}, {"logp", logp}, {"donors", donors}, {"acceptors", acceptors}});
    return run_one(app, req).body;
  };
  const json::Value druglike = check(342.4, 2.7, 2, 6);
  EXPECT_TRUE(druglike["druglike"].as_bool());
  EXPECT_DOUBLE_EQ(druglike["violations"].as_number(), 0.0);
  const json::Value bad = check(612.0, 6.1, 7, 12);
  EXPECT_FALSE(bad["druglike"].as_bool());
  EXPECT_DOUBLE_EQ(bad["violations"].as_number(), 4.0);
}

TEST(SensorHubTest, SummaryAndAlertsReflectIngestedValues) {
  const SubjectApp& app = sensor_hub();
  trace::ProfilingHarness harness(app.server_source);
  http::HttpRequest ingest;
  ingest.verb = http::Verb::kPost;
  ingest.path = "/ingest";
  ingest.params = json::Value::object(
      {{"sensor", "t9"}, {"values", json::Value::array({70, 80, 90})}});
  harness.invoke({http::Verb::kPost, "/ingest"}, ingest);

  http::HttpRequest summary;
  summary.verb = http::Verb::kGet;
  summary.path = "/summary";
  summary.params = json::Value::object({{"sensor", "t9"}});
  const json::Value s = harness.invoke({http::Verb::kGet, "/summary"}, summary).body;
  EXPECT_DOUBLE_EQ(s["count"].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(s["mean"].as_number(), 80.0);
  EXPECT_DOUBLE_EQ(s["peak"].as_number(), 90.0);

  http::HttpRequest alerts;
  alerts.verb = http::Verb::kGet;
  alerts.path = "/alerts";
  alerts.params = json::Value::object({{"since", 0}});
  const json::Value a = harness.invoke({http::Verb::kGet, "/alerts"}, alerts).body;
  // Default threshold 75: readings 80 and 90 alert.
  EXPECT_EQ(a["alerts"].as_array().size(), 2u);
}

TEST(SensorHubTest, ThresholdChangesAlerting) {
  const SubjectApp& app = sensor_hub();
  trace::ProfilingHarness harness(app.server_source);
  http::HttpRequest ingest;
  ingest.verb = http::Verb::kPost;
  ingest.path = "/ingest";
  ingest.params = json::Value::object(
      {{"sensor", "t1"}, {"values", json::Value::array({50, 60})}});
  harness.invoke({http::Verb::kPost, "/ingest"}, ingest);

  http::HttpRequest set;
  set.verb = http::Verb::kPost;
  set.path = "/threshold";
  set.params = json::Value::object({{"level", 55}});
  harness.invoke({http::Verb::kPost, "/threshold"}, set);

  http::HttpRequest alerts;
  alerts.verb = http::Verb::kGet;
  alerts.path = "/alerts";
  alerts.params = json::Value::object({{"since", 0}});
  EXPECT_EQ(harness.invoke({http::Verb::kGet, "/alerts"}, alerts).body["alerts"]
                .as_array().size(), 1u);
}

TEST(GeoTaggerTest, NearbyFiltersByDistance) {
  const SubjectApp& app = geo_tagger();
  trace::ProfilingHarness harness(app.server_source);
  auto tag = [&](double lat, double lon) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/tag";
    req.params = json::Value::object({{"lat", lat}, {"lon", lon}});
    req.payload_bytes = 100000;
    harness.invoke({http::Verb::kPost, "/tag"}, req);
  };
  tag(10.0, 10.0);
  tag(50.0, 50.0);
  http::HttpRequest nearby;
  nearby.verb = http::Verb::kGet;
  nearby.path = "/nearby";
  nearby.params = json::Value::object({{"lat", 10.1}, {"lon", 10.1}});
  const json::Value resp = harness.invoke({http::Verb::kGet, "/nearby"}, nearby).body;
  EXPECT_EQ(resp["nearby"].as_array().size(), 1u);
}

TEST(TextNotesTest, SentimentScoring) {
  const SubjectApp& app = text_notes();
  auto note = [&](const std::string& text) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/note";
    req.params = json::Value::object({{"text", text}});
    return run_one(app, req).body["sentiment"].as_number();
  };
  EXPECT_DOUBLE_EQ(note("what a good great day"), 2.0);
  EXPECT_DOUBLE_EQ(note("awful bad hate"), -3.0);
  EXPECT_DOUBLE_EQ(note("nothing notable"), 0.0);
}

TEST(TextNotesTest, SearchAndDelete) {
  const SubjectApp& app = text_notes();
  trace::ProfilingHarness harness(app.server_source);
  auto post = [&](const std::string& text) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/note";
    req.params = json::Value::object({{"text", text}});
    harness.invoke({http::Verb::kPost, "/note"}, req);
  };
  post("buy milk");
  post("good milk tea");
  post("trail run");

  http::HttpRequest search;
  search.verb = http::Verb::kPost;
  search.path = "/search";
  search.params = json::Value::object({{"term", "milk"}});
  EXPECT_EQ(harness.invoke({http::Verb::kPost, "/search"}, search).body["matches"]
                .as_array().size(), 2u);

  http::HttpRequest del;
  del.verb = http::Verb::kDelete;
  del.path = "/note";
  del.params = json::Value::object({{"id", 1}});
  EXPECT_DOUBLE_EQ(
      harness.invoke({http::Verb::kDelete, "/note"}, del).body["removed"].as_number(), 1.0);
  EXPECT_EQ(harness.invoke({http::Verb::kPost, "/search"}, search).body["matches"]
                .as_array().size(), 1u);
}

TEST(AppModelFilesTest, HeavyAppsCarryRealisticModels) {
  // The models are what make S_app (cross-ISA sync) heavy.
  struct Expect {
    const SubjectApp* app;
    const char* path;
    std::size_t min_bytes;
  };
  const Expect expectations[] = {
      {&fobojet(), "models/ssd_mobilenet.bin", 2 * 1024 * 1024},
      {&mnist_rest(), "models/mnist_cnn.bin", 700 * 1024},
      {&geo_tagger(), "models/scene_net.bin", 1280 * 1024},
  };
  for (const Expect& e : expectations) {
    trace::ProfilingHarness harness(e.app->server_source);
    ASSERT_TRUE(harness.filesystem().exists(e.path)) << e.app->name;
    EXPECT_GE(harness.filesystem().read(e.path).size(), e.min_bytes) << e.app->name;
  }
}

}  // namespace
}  // namespace edgstr::apps
