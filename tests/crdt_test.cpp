#include <gtest/gtest.h>

#include "crdt/files.h"
#include "crdt/gcounter.h"
#include "crdt/json_doc.h"
#include "crdt/lww.h"
#include "crdt/orset.h"
#include "crdt/table.h"
#include "crdt/vector_clock.h"

namespace edgstr::crdt {
namespace {

// ----------------------------------------------------------- VectorClock --

TEST(VectorClockTest, IncrementAndCompare) {
  VectorClock a, b;
  a.increment("r1");
  EXPECT_EQ(a.compare(b), Ordering::kAfter);
  EXPECT_EQ(b.compare(a), Ordering::kBefore);
  b.merge(a);
  EXPECT_EQ(a.compare(b), Ordering::kEqual);
  a.increment("r1");
  b.increment("r2");
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
}

TEST(VectorClockTest, MergeIsPointwiseMax) {
  VectorClock a, b;
  a.set("x", 5);
  a.set("y", 1);
  b.set("y", 3);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 3u);
  EXPECT_EQ(a.get("unknown"), 0u);
}

TEST(VectorClockTest, JsonRoundTrip) {
  VectorClock a;
  a.set("r1", 7);
  a.set("r2", 2);
  EXPECT_EQ(VectorClock::from_json(a.to_json()), a);
}

// ----------------------------------------------------------------- Stamp --

TEST(StampTest, TotalOrderWithReplicaTieBreak) {
  EXPECT_LT((Stamp{1, "b"}), (Stamp{2, "a"}));
  EXPECT_LT((Stamp{2, "a"}), (Stamp{2, "b"}));
  EXPECT_EQ((Stamp{3, "x"}), (Stamp{3, "x"}));
}

// ----------------------------------------------------------------- OpLog --

TEST(OpLogTest, LocalOpsGetContiguousSeqs) {
  OpLog log("r1");
  Op a = log.make_local(json::Value(1));
  log.record(a);
  Op b = log.make_local(json::Value(2));
  log.record(b);
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(b.seq, 2u);
  EXPECT_LT(a.stamp, b.stamp);
}

TEST(OpLogTest, DuplicateDeliveryIgnored) {
  OpLog a("a"), b("b");
  Op op = a.make_local(json::Value("x"));
  a.record(op);
  EXPECT_TRUE(b.record(op));
  EXPECT_FALSE(b.record(op));
  EXPECT_TRUE(b.seen("a", 1));
}

TEST(OpLogTest, GapDetectionThrows) {
  OpLog a("a"), b("b");
  Op op1 = a.make_local(json::Value(1));
  a.record(op1);
  Op op2 = a.make_local(json::Value(2));
  a.record(op2);
  EXPECT_THROW(b.record(op2), std::logic_error);  // op1 missing
}

TEST(OpLogTest, ChangesSinceFiltersByVersion) {
  OpLog a("a");
  for (int i = 0; i < 3; ++i) a.record(a.make_local(json::Value(i)));
  VersionVector known;
  known["a"] = 1;
  const auto delta = a.changes_since(known);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].seq, 2u);
  EXPECT_EQ(delta[1].seq, 3u);
}

TEST(OpLogTest, LamportAdvancesPastRemoteStamps) {
  OpLog a("a"), b("b");
  for (int i = 0; i < 5; ++i) a.record(a.make_local(json::Value(i)));
  for (const Op& op : a.changes_since({})) b.record(op);
  Op next = b.make_local(json::Value("after"));
  EXPECT_GT(next.stamp.counter, 5u - 1);  // strictly after everything seen
}

// ------------------------------------------------------------------- LWW --

TEST(LwwRegisterTest, LaterStampWins) {
  LwwRegister a;
  a.set(json::Value("old"), Stamp{1, "r1"});
  a.set(json::Value("new"), Stamp{2, "r2"});
  EXPECT_EQ(a.value().as_string(), "new");
  a.set(json::Value("stale"), Stamp{1, "r3"});  // ignored
  EXPECT_EQ(a.value().as_string(), "new");
}

TEST(LwwMapTest, PutGetRemove) {
  LwwMap m;
  m.put("k", json::Value(1), Stamp{1, "a"});
  EXPECT_TRUE(m.contains("k"));
  m.remove("k", Stamp{2, "a"});
  EXPECT_FALSE(m.contains("k"));
  // A write older than the tombstone loses.
  m.put("k", json::Value(2), Stamp{1, "b"});
  EXPECT_FALSE(m.contains("k"));
  // A newer write resurrects.
  m.put("k", json::Value(3), Stamp{3, "b"});
  EXPECT_TRUE(m.contains("k"));
}

TEST(LwwMapTest, MergeResolvesByStamp) {
  LwwMap a, b;
  a.put("k", json::Value("from-a"), Stamp{5, "a"});
  b.put("k", json::Value("from-b"), Stamp{3, "b"});
  b.merge(a);
  a.merge(b);
  EXPECT_EQ(*a.get("k"), json::Value("from-a"));
  EXPECT_TRUE(a == b);
}

// ----------------------------------------------------------------- OrSet --

TEST(OrSetTest, AddRemoveContains) {
  OrSet s;
  s.add("x", "r1");
  EXPECT_TRUE(s.contains("x"));
  s.remove("x");
  EXPECT_FALSE(s.contains("x"));
}

TEST(OrSetTest, AddWinsOverConcurrentRemove) {
  OrSet a, b;
  a.add("x", "a");
  b.merge(a);
  // Concurrently: a removes x, b re-adds x (new tag).
  a.remove("x");
  b.add("x", "b");
  a.merge(b);
  b.merge(a);
  EXPECT_TRUE(a.contains("x"));  // b's tag survives a's tombstones
  EXPECT_TRUE(a == b);
}

TEST(OrSetTest, JsonRoundTrip) {
  OrSet s;
  s.add("x", "r1");
  s.add("y", "r1");
  s.remove("x");
  const OrSet restored = OrSet::from_json(s.to_json());
  EXPECT_TRUE(restored == s);
}

// -------------------------------------------------------------- GCounter --

TEST(GCounterTest, IncrementAndMerge) {
  GCounter a, b;
  a.increment("r1", 3);
  b.increment("r2", 4);
  a.merge(b);
  b.merge(a);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.local("r1"), 3u);
}

TEST(PnCounterTest, SupportsDecrement) {
  PnCounter a, b;
  a.increment("r1", 10);
  b.decrement("r2", 4);
  a.merge(b);
  EXPECT_EQ(a.value(), 6);
  const PnCounter restored = PnCounter::from_json(a.to_json());
  EXPECT_EQ(restored.value(), 6);
}

// -------------------------------------------------------------- CrdtJson --

TEST(CrdtJsonTest, SetGetAndChanges) {
  CrdtJson a("edge0");
  a.initialize(json::Value::object({{"hits", 0}}));
  a.set("hits", json::Value(5));
  EXPECT_EQ(*a.get("hits"), json::Value(5));
  const auto changes = a.getChanges({});
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].origin, "edge0");
}

TEST(CrdtJsonTest, TwoReplicasConverge) {
  CrdtJson a("a"), b("b");
  const json::Value base = json::Value::object({{"x", 1}});
  a.initialize(base);
  b.initialize(base);
  a.set("x", json::Value(10));
  b.set("y", json::Value(20));
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_EQ(*a.get("x"), json::Value(10));
  EXPECT_EQ(*a.get("y"), json::Value(20));
}

TEST(CrdtJsonTest, ConcurrentWritesResolveDeterministically) {
  CrdtJson a("a"), b("b");
  a.initialize(json::Value::object({}));
  b.initialize(json::Value::object({}));
  a.set("k", json::Value("from-a"));
  b.set("k", json::Value("from-b"));
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_TRUE(a.converged_with(b));  // same winner on both sides
}

TEST(CrdtJsonTest, SyncFromDiffsState) {
  CrdtJson a("a");
  a.initialize(json::Value::object({{"x", 1}, {"y", 2}}));
  // x changed, y unchanged, z new.
  const std::size_t ops =
      a.sync_from(json::Value::object({{"x", 9}, {"y", 2}, {"z", 3}}));
  EXPECT_EQ(ops, 2u);
  // Removed key.
  EXPECT_EQ(a.sync_from(json::Value::object({{"x", 9}, {"y", 2}})), 1u);
  EXPECT_FALSE(a.get("z"));
}

TEST(CrdtJsonTest, ApplyIsIdempotentAndSkipsOwnOps) {
  CrdtJson a("a"), b("b");
  a.initialize(json::Value::object({}));
  b.initialize(json::Value::object({}));
  a.set("k", json::Value(1));
  const auto changes = a.getChanges({});
  EXPECT_EQ(b.applyChanges(changes), 1u);
  EXPECT_EQ(b.applyChanges(changes), 0u);
  EXPECT_EQ(a.applyChanges(changes), 0u);  // own ops echoed back
}

// ------------------------------------------------------------- CrdtTable --

class CrdtTableFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sqldb::Database seed;
    seed.execute("CREATE TABLE t (k, v)");
    seed.execute("INSERT INTO t (k, v) VALUES ('base', 0)");
    snapshot = seed.snapshot();
  }
  json::Value snapshot;
};

TEST_F(CrdtTableFixture, InitializeRestoresBaseline) {
  sqldb::Database db;
  CrdtTable table("e0", &db);
  table.initialize(snapshot);
  EXPECT_EQ(db.execute("SELECT * FROM t").rows.size(), 1u);
  EXPECT_EQ(table.live_rows(), 1u);
}

TEST_F(CrdtTableFixture, LocalInsertPropagates) {
  sqldb::Database da, dc;
  CrdtTable a("edge", &da), c("cloud", &dc);
  a.initialize(snapshot);
  c.initialize(snapshot);

  da.execute("INSERT INTO t (k, v) VALUES ('new', 42)");
  EXPECT_EQ(a.record_local_mutations(), 1u);
  c.applyChanges(a.getChanges(c.version()));
  EXPECT_EQ(dc.execute("SELECT v FROM t WHERE k = 'new'").rows[0][0].as_int(), 42);
  EXPECT_TRUE(a.converged_with(c));
}

TEST_F(CrdtTableFixture, ConcurrentInsertsBothSurvive) {
  sqldb::Database da, db_, dc;
  CrdtTable a("e0", &da), b("e1", &db_), c("cloud", &dc);
  a.initialize(snapshot);
  b.initialize(snapshot);
  c.initialize(snapshot);

  da.execute("INSERT INTO t (k, v) VALUES ('from-a', 1)");
  db_.execute("INSERT INTO t (k, v) VALUES ('from-b', 2)");
  a.record_local_mutations();
  b.record_local_mutations();

  // Star sync through the cloud.
  c.applyChanges(a.getChanges(c.version()));
  c.applyChanges(b.getChanges(c.version()));
  a.applyChanges(c.getChanges(a.version()));
  b.applyChanges(c.getChanges(b.version()));

  for (sqldb::Database* d : {&da, &db_, &dc}) {
    EXPECT_EQ(d->execute("SELECT * FROM t").rows.size(), 3u);  // base + 2
  }
  EXPECT_TRUE(a.converged_with(c));
  EXPECT_TRUE(b.converged_with(c));
  EXPECT_TRUE(a.converged_with(b));
}

TEST_F(CrdtTableFixture, ConcurrentUpdateSameRowLwwResolves) {
  sqldb::Database da, db_;
  CrdtTable a("a", &da), b("b", &db_);
  a.initialize(snapshot);
  b.initialize(snapshot);

  da.execute("UPDATE t SET v = 100 WHERE k = 'base'");
  db_.execute("UPDATE t SET v = 200 WHERE k = 'base'");
  a.record_local_mutations();
  b.record_local_mutations();
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));

  EXPECT_TRUE(a.converged_with(b));
  const auto va = da.execute("SELECT v FROM t WHERE k = 'base'").rows[0][0].as_int();
  const auto vb = db_.execute("SELECT v FROM t WHERE k = 'base'").rows[0][0].as_int();
  EXPECT_EQ(va, vb);
  EXPECT_TRUE(va == 100 || va == 200);
}

TEST_F(CrdtTableFixture, DeletePropagates) {
  sqldb::Database da, dc;
  CrdtTable a("edge", &da), c("cloud", &dc);
  a.initialize(snapshot);
  c.initialize(snapshot);
  da.execute("DELETE FROM t WHERE k = 'base'");
  a.record_local_mutations();
  c.applyChanges(a.getChanges(c.version()));
  EXPECT_TRUE(dc.execute("SELECT * FROM t").rows.empty());
  EXPECT_TRUE(a.converged_with(c));
}

TEST_F(CrdtTableFixture, AttachExistingKeysLiveState) {
  sqldb::Database dc;
  dc.restore(snapshot);
  CrdtTable c("cloud", &dc);
  c.attach_existing();
  sqldb::Database de;
  CrdtTable e("edge", &de);
  e.initialize(snapshot);
  // Cloud updates the baseline row; the edge must apply it to the same row.
  dc.execute("UPDATE t SET v = 7 WHERE k = 'base'");
  c.record_local_mutations();
  e.applyChanges(c.getChanges(e.version()));
  EXPECT_EQ(de.execute("SELECT v FROM t WHERE k = 'base'").rows[0][0].as_int(), 7);
  EXPECT_EQ(de.execute("SELECT * FROM t").rows.size(), 1u);  // no duplicate
}

// ------------------------------------------------------------- CrdtFiles --

TEST(CrdtFilesTest, WriteDetectionAndPropagation) {
  vfs::Vfs fa, fb;
  fa.write("data/log.txt", "init");
  const json::Value snap = fa.snapshot();
  CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap);
  b.initialize(snap);

  fa.write("data/log.txt", "updated");
  EXPECT_EQ(a.record_local_changes(), 1u);
  b.applyChanges(a.getChanges(b.version()));
  EXPECT_EQ(fb.read("data/log.txt"), "updated");
  EXPECT_TRUE(a.converged_with(b));
}

TEST(CrdtFilesTest, RemovalPropagates) {
  vfs::Vfs fa, fb;
  fa.write("f", "x");
  const json::Value snap = fa.snapshot();
  CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap);
  b.initialize(snap);
  fa.remove("f");
  a.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  EXPECT_FALSE(fb.exists("f"));
}

TEST(CrdtFilesTest, ConcurrentWritesConvergeToOneWinner) {
  vfs::Vfs fa, fb;
  fa.write("f", "0");
  const json::Value snap = fa.snapshot();
  CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap);
  b.initialize(snap);
  fa.write("f", "from-a");
  fb.write("f", "from-b");
  a.record_local_changes();
  b.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_EQ(fa.read("f"), fb.read("f"));
}

TEST(CrdtFilesTest, FilterExcludesUnreplicatedPaths) {
  vfs::Vfs fa;
  fa.write("replicated.txt", "r");
  fa.write("private.txt", "p");
  CrdtFiles a("a", &fa);
  a.attach_existing({"replicated.txt"});
  fa.write("replicated.txt", "r2");
  fa.write("private.txt", "p2");
  EXPECT_EQ(a.record_local_changes(), 1u);  // only the replicated path
}

}  // namespace
}  // namespace edgstr::crdt
// NOTE: appended suite — RGA list CRDT and CrdtFiles append-merge.
#include "crdt/rga.h"

namespace edgstr::crdt {
namespace {

TEST(RgaTest, PushBackPreservesOrder) {
  Rga list("a");
  list.push_back(json::Value(1));
  list.push_back(json::Value(2));
  list.push_back(json::Value(3));
  EXPECT_EQ(list.to_json().dump(), "[1,2,3]");
  EXPECT_EQ(list.size(), 3u);
}

TEST(RgaTest, InsertAfterAnchor) {
  Rga list("a");
  const ElementId first = list.push_back(json::Value("x"));
  list.push_back(json::Value("z"));
  list.insert_after(first, json::Value("y"));
  EXPECT_EQ(list.to_json().dump(), R"(["x","y","z"])");
}

TEST(RgaTest, EraseTombstones) {
  Rga list("a");
  const ElementId id = list.push_back(json::Value(1));
  list.push_back(json::Value(2));
  list.erase(id);
  EXPECT_EQ(list.to_json().dump(), "[2]");
  list.erase(id);  // idempotent
  EXPECT_EQ(list.size(), 1u);
}

TEST(RgaTest, TwoReplicasConvergeOnConcurrentAppends) {
  Rga a("a"), b("b");
  a.push_back(json::Value("from-a-1"));
  b.push_back(json::Value("from-b-1"));
  a.push_back(json::Value("from-a-2"));
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_EQ(a.size(), 3u);  // nothing lost
}

TEST(RgaTest, ConcurrentInsertAfterSameAnchorDeterministic) {
  Rga a("a"), b("b");
  const ElementId anchor = a.push_back(json::Value("base"));
  b.applyChanges(a.getChanges(b.version()));
  a.insert_after(anchor, json::Value("A"));
  b.insert_after(anchor, json::Value("B"));
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_EQ(a.size(), 3u);
}

TEST(RgaTest, ApplyIsIdempotent) {
  Rga a("a"), b("b");
  a.push_back(json::Value(7));
  const auto changes = a.getChanges({});
  EXPECT_EQ(b.applyChanges(changes), 1u);
  EXPECT_EQ(b.applyChanges(changes), 0u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(RgaTest, ThreeWayRelayConverges) {
  Rga a("a"), b("b"), c("hub");
  a.push_back(json::Value("a1"));
  b.push_back(json::Value("b1"));
  c.applyChanges(a.getChanges(c.version()));
  c.applyChanges(b.getChanges(c.version()));
  a.applyChanges(c.getChanges(a.version()));
  b.applyChanges(c.getChanges(b.version()));
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_TRUE(a.converged_with(c));
}

// ---------------------------------------------------- CrdtFiles appends --

TEST(CrdtFilesAppendTest, ConcurrentAppendsBothSurvive) {
  vfs::Vfs fa, fb;
  fa.write("notes.log", "base;");
  const json::Value snap = fa.snapshot();
  CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap);
  b.initialize(snap);

  fa.append("notes.log", "from-a;");
  fb.append("notes.log", "from-b;");
  a.record_local_changes();
  b.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));

  EXPECT_TRUE(a.converged_with(b));
  const std::string merged = fa.read("notes.log");
  EXPECT_EQ(merged, fb.read("notes.log"));
  // Under whole-file LWW one of these would have been lost.
  EXPECT_NE(merged.find("from-a;"), std::string::npos);
  EXPECT_NE(merged.find("from-b;"), std::string::npos);
  EXPECT_EQ(merged.find("base;"), 0u);
}

TEST(CrdtFilesAppendTest, SequentialAppendsStayChronological) {
  vfs::Vfs fa, fb;
  fa.write("audit.log", "");
  const json::Value snap = fa.snapshot();
  CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap);
  b.initialize(snap);

  fa.append("audit.log", "1;");
  a.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  fb.append("audit.log", "2;");
  b.record_local_changes();
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_EQ(fa.read("audit.log"), "1;2;");
  EXPECT_EQ(fb.read("audit.log"), "1;2;");
}

TEST(CrdtFilesAppendTest, RewriteSupersedesOlderAppends) {
  vfs::Vfs fa, fb;
  fa.write("roll.log", "old;");
  const json::Value snap = fa.snapshot();
  CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap);
  b.initialize(snap);

  fa.append("roll.log", "tail;");
  a.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  // Log rotation on a: truncate-and-rewrite wins over the old tail.
  fa.write("roll.log", "rotated;");
  a.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_EQ(fb.read("roll.log"), "rotated;");
}

TEST(CrdtFilesAppendTest, NonLogPathsKeepLww) {
  vfs::Vfs fa, fb;
  fa.write("data/state.txt", "v0");
  const json::Value snap = fa.snapshot();
  CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap);
  b.initialize(snap);
  fa.append("data/state.txt", "-a");
  fb.append("data/state.txt", "-b");
  a.record_local_changes();
  b.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_TRUE(a.converged_with(b));
  // .txt is whole-file LWW: exactly one writer wins, no merge.
  const std::string content = fa.read("data/state.txt");
  EXPECT_TRUE(content == "v0-a" || content == "v0-b");
}

TEST(CrdtFilesAppendTest, CustomSuffixConfiguration) {
  vfs::Vfs fa, fb;
  fa.write("events.jsonl", "");
  const json::Value snap = fa.snapshot();
  CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap);
  b.initialize(snap);
  a.set_append_merge_suffixes({".jsonl"});
  b.set_append_merge_suffixes({".jsonl"});
  fa.append("events.jsonl", "{\"e\":1}\n");
  fb.append("events.jsonl", "{\"e\":2}\n");
  a.record_local_changes();
  b.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  a.applyChanges(b.getChanges(a.version()));
  EXPECT_TRUE(a.converged_with(b));
  EXPECT_NE(fa.read("events.jsonl").find("{\"e\":1}"), std::string::npos);
  EXPECT_NE(fa.read("events.jsonl").find("{\"e\":2}"), std::string::npos);
}

}  // namespace
}  // namespace edgstr::crdt
