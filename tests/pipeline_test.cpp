#include <gtest/gtest.h>

#include "apps/app.h"
#include "edgstr/baselines.h"
#include "edgstr/pipeline.h"
#include "edgstr/transform.h"

namespace edgstr::core {
namespace {

TEST(RecordTrafficTest, CapturesOneRecordPerRequest) {
  const apps::SubjectApp& app = apps::bookworm();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  EXPECT_EQ(traffic.size(), app.workload.size());
  EXPECT_FALSE(traffic.infer_services().empty());
}

TEST(PipelineTest, TransformFobojetReplicatesAllServices) {
  const apps::SubjectApp& app = apps::fobojet();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.services.size(), app.services.size());
  EXPECT_EQ(result.replicable_count(), app.services.size());
  EXPECT_FALSE(result.replica.source.empty());
  EXPECT_FALSE(result.cloud_source.empty());
}

TEST(PipelineTest, FiltersInitSnapshotToNeeds) {
  const apps::SubjectApp& app = apps::fobojet();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok);
  // The filtered snapshot is never larger than the full working state.
  EXPECT_LE(result.init_snapshot.size_bytes(), result.full_snapshot.size_bytes());
}

TEST(PipelineTest, HeavyServiceProfilesComputeCost) {
  const apps::SubjectApp& app = apps::fobojet();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  const ServiceAnalysis* predict = result.find_service({http::Verb::kPost, "/predict"});
  ASSERT_NE(predict, nullptr);
  EXPECT_GT(predict->mean_compute_units, 100.0);  // model inference is heavy
  const ServiceAnalysis* labels = result.find_service({http::Verb::kGet, "/labels"});
  ASSERT_NE(labels, nullptr);
  EXPECT_LT(labels->mean_compute_units, 1.0);
}

TEST(PipelineTest, EmptyTrafficFails) {
  http::TrafficRecorder empty;
  const TransformResult result = Pipeline().transform("x", "var a = 1;", empty);
  EXPECT_FALSE(result.ok);
}

TEST(PipelineTest, AdvisorCanRejectStatefulServices) {
  PipelineConfig config;
  config.advisor = [](const ServiceStateInfo& info) { return !info.stateful; };
  const apps::SubjectApp& app = apps::fobojet();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline(config).transform(app.name, app.server_source, traffic);
  // /predict and /feedback mutate state -> rejected; read-only ones remain.
  ASSERT_TRUE(result.ok);
  const ServiceAnalysis* predict = result.find_service({http::Verb::kPost, "/predict"});
  ASSERT_NE(predict, nullptr);
  EXPECT_FALSE(predict->replicable);
  EXPECT_TRUE(predict->advisor_rejected);
  const ServiceAnalysis* labels = result.find_service({http::Verb::kGet, "/labels"});
  ASSERT_NE(labels, nullptr);
  EXPECT_TRUE(labels->replicable);
}

TEST(PipelineTest, StateInfoNamesMutationStatements) {
  const apps::SubjectApp& app = apps::fobojet();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  const ServiceAnalysis* predict = result.find_service({http::Verb::kPost, "/predict"});
  ASSERT_NE(predict, nullptr);
  EXPECT_TRUE(predict->state_info.stateful);
  EXPECT_FALSE(predict->state_info.mutation_statements.empty());
  // The consultation text is renderable.
  const std::string text = render_consultation(predict->state_info);
  EXPECT_NE(text.find("eventually"), std::string::npos);
}

TEST(PipelineTest, ReportRenders) {
  const apps::SubjectApp& app = apps::mnist_rest();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  const std::string report = render_transform_report(result);
  EXPECT_NE(report.find("mnist-rest"), std::string::npos);
  EXPECT_NE(report.find("/predict-digit"), std::string::npos);
}

TEST(SubjectAppsTest, PaperScaleInventory) {
  EXPECT_EQ(apps::all_subject_apps().size(), 7u);
  EXPECT_EQ(apps::total_service_count(), 42u);  // the paper's 42 services
}

TEST(SubjectAppsTest, WorkloadsCoverEveryService) {
  for (const apps::SubjectApp* app : apps::all_subject_apps()) {
    std::set<http::Route> covered;
    for (const http::HttpRequest& req : app->workload) {
      covered.insert(http::Route{req.verb, req.path});
    }
    for (const http::Route& svc : app->services) {
      EXPECT_TRUE(covered.count(svc))
          << app->name << " workload misses " << svc.to_string();
    }
  }
}

TEST(CrossIsaTest, WholeStateBytesDominateDeltas) {
  const apps::SubjectApp& app = apps::fobojet();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  const CrossIsaSync cross = CrossIsaSync::from_snapshot(result.full_snapshot);
  EXPECT_EQ(cross.bytes_per_invocation(), 2 * result.full_snapshot.size_bytes());
  EXPECT_EQ(cross.bytes_for_rounds(10), 10 * cross.bytes_per_invocation());
}

}  // namespace
}  // namespace edgstr::core
// NOTE: appended suite — live-session replay coverage (§III-A).
#include "edgstr/deployment.h"

namespace edgstr::core {
namespace {

TEST(PipelineTest, LiveReplayCatchesStateDependentAccesses) {
  // /export only touches its file when earlier requests populated the
  // table; isolated fuzzing from the init state never sees that access.
  const char* source = R"JS(
    db.query("CREATE TABLE items (v)");
    app.post("/add", function (req, res) {
      var v = req.params.v;
      db.query("INSERT INTO items (v) VALUES (?)", [v]);
      res.send({ added: v });
    });
    app.get("/export", function (req, res) {
      var tag = req.params.tag;
      var rows = db.query("SELECT v FROM items");
      var n = 0;
      for (var i = 0; i < rows.length; i = i + 1) {
        fs.appendFile("data/export.log", str(rows[i].v));
        n = n + 1;
      }
      res.send({ exported: n, tag: tag });
    });
  )JS";
  std::vector<http::HttpRequest> workload;
  for (int v : {1, 2}) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/add";
    req.params = json::Value::object({{"v", v}});
    workload.push_back(req);
  }
  {
    http::HttpRequest req;
    req.path = "/export";
    req.params = json::Value::object({{"tag", 7}});
    workload.push_back(req);
  }
  const http::TrafficRecorder traffic = record_traffic(source, workload);
  const TransformResult result = Pipeline().transform("exporty", source, traffic);
  ASSERT_TRUE(result.ok) << result.error;
  const ServiceAnalysis* exp = result.find_service({http::Verb::kGet, "/export"});
  ASSERT_NE(exp, nullptr);
  ASSERT_TRUE(exp->replicable) << exp->failure_reason;
  // The live replay (requests in captured order) exposes the file write.
  EXPECT_TRUE(exp->plan.mutated_files.count("data/export.log"));
  EXPECT_TRUE(result.replicated_files.count("data/export.log"));
  // And the table read is known too.
  EXPECT_TRUE(exp->plan.needed_tables.count("items"));
}

TEST(PipelineTest, ReplicatedFileStaysConsistentAcrossTiers) {
  // End-to-end: with /export's file replicated, edge-side exports reach
  // the cloud's copy after sync.
  const apps::SubjectApp& app = apps::sensor_hub();
  const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
  const TransformResult result = Pipeline().transform(app.name, app.server_source, traffic);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.replicated_files.count("data/export.csv"));

  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(result, config);
  // Populate rows, then export at the edge.
  for (const http::HttpRequest& req : app.workload) three.request_sync(req);
  ASSERT_GE(three.sync().sync_until_converged(8), 1);
  EXPECT_EQ(three.cloud().service()->filesystem().read("data/export.csv"),
            three.edge(0).service()->filesystem().read("data/export.csv"));
  EXPECT_FALSE(three.cloud().service()->filesystem().read("data/export.csv").empty());
}

}  // namespace
}  // namespace edgstr::core
