#include <gtest/gtest.h>

#include "apps/app.h"
#include "edgstr/deployment.h"
#include "edgstr/pipeline.h"

namespace edgstr::core {
namespace {

const TransformResult& transform_notes() {
  static const TransformResult result = [] {
    const apps::SubjectApp& app = apps::text_notes();
    const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
    return Pipeline().transform(app.name, app.server_source, traffic);
  }();
  return result;
}

TEST(TwoTierDeploymentTest, ServesRequests) {
  DeploymentConfig config;
  TwoTierDeployment two(transform_notes().cloud_source, config);
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/note";
  req.params = json::Value::object({{"text", "good"}});
  double latency = 0;
  const http::HttpResponse resp = two.request_sync(req, &latency);
  EXPECT_TRUE(resp.ok());
  EXPECT_GT(latency, 0.0);
  EXPECT_EQ(two.path().stats().requests, 1u);
  EXPECT_EQ(two.cloud().name(), std::string(kCloudHost));
}

TEST(ThreeTierDeploymentTest, RejectsFailedTransforms) {
  TransformResult bad;
  bad.ok = false;
  DeploymentConfig config;
  EXPECT_THROW(ThreeTierDeployment(bad, config), std::invalid_argument);
}

TEST(ThreeTierDeploymentTest, BuildsRequestedEdgeCount) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi3(),
                         cluster::DeviceProfile::rpi3()};
  ThreeTierDeployment three(transform_notes(), config);
  EXPECT_EQ(three.edges().size(), 3u);
  EXPECT_EQ(three.edge(1).name(), edge_host(1));
  // Cloud + 3 edges registered in the replication graph, star-linked.
  EXPECT_EQ(three.replication().endpoint_count(), 4u);
  EXPECT_EQ(three.replication().link_count(), 3u);
  // Each edge is network-connected to both client and cloud.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(three.network().connected(kClientHost, edge_host(i)));
    EXPECT_TRUE(three.network().connected(edge_host(i), kCloudHost));
  }
}

TEST(ThreeTierDeploymentTest, ServedRoutesMatchReplica) {
  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(transform_notes(), config);
  EXPECT_EQ(three.served_routes().size(), transform_notes().replica.served_routes().size());
  EXPECT_TRUE(three.served_routes().count({http::Verb::kPost, "/note"}));
}

TEST(ThreeTierDeploymentTest, FreshDeploymentIsConverged) {
  DeploymentConfig config;
  config.start_sync = false;
  ThreeTierDeployment three(transform_notes(), config);
  EXPECT_TRUE(three.converged());  // identical init snapshots everywhere
}

TEST(ThreeTierDeploymentTest, RequestsRoutableToSpecificEdges) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
  ThreeTierDeployment three(transform_notes(), config);
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/note";
  req.params = json::Value::object({{"text", "hello"}});
  three.request_sync(req, 1);  // via edge 1's proxy
  EXPECT_EQ(three.proxy(1).stats().served_at_edge, 1u);
  EXPECT_EQ(three.proxy(0).stats().requests, 0u);
}

TEST(ThreeTierDeploymentTest, PeriodicSyncStartsWhenConfigured) {
  DeploymentConfig config;
  config.start_sync = true;
  config.sync_interval_s = 0.5;
  ThreeTierDeployment three(transform_notes(), config);
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/note";
  req.params = json::Value::object({{"text", "synced"}});
  three.request_sync(req, 0);
  three.network().clock().run_until(three.network().clock().now() + 3.0);
  three.sync().stop();
  three.network().clock().run_until(three.network().clock().now() + 3.0);
  EXPECT_TRUE(three.converged());
  EXPECT_GT(three.sync().sync_messages(), 0u);
}

TEST(ThreeTierDeploymentTest, EnergyMeterAndBalancerWired) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi3()};
  ThreeTierDeployment three(transform_notes(), config);
  EXPECT_EQ(three.balancer().nodes().size(), 2u);
  EXPECT_EQ(three.balancer().active_node_count(), 2u);
  three.network().clock().schedule(10.0, [] {});
  three.network().clock().run();
  EXPECT_GT(three.energy_meter().total_energy_j(), 0.0);
}

TEST(ThreeTierDeploymentTest, EdgeDeviceHeterogeneityRespected) {
  DeploymentConfig config;
  config.start_sync = false;
  config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi3()};
  ThreeTierDeployment three(transform_notes(), config);
  EXPECT_LT(three.edge(0).spec().seconds_per_unit, three.edge(1).spec().seconds_per_unit);
  EXPECT_NEAR(three.edge(1).spec().seconds_per_unit / three.edge(0).spec().seconds_per_unit,
              1.8, 0.01);
}

}  // namespace
}  // namespace edgstr::core
