#include <gtest/gtest.h>

#include "minijs/interpreter.h"
#include "json/parse.h"
#include "minijs/lexer.h"
#include "minijs/parser.h"
#include "minijs/printer.h"

namespace edgstr::minijs {
namespace {

/// Runs a program that must end with `app.get("/t", ...)` and invokes it.
json::Value run_service(const std::string& source, json::Value params = json::Value::object({}),
                        std::uint64_t payload = 0) {
  Interpreter interp(parse_program(source));
  sqldb::Database db;
  vfs::Vfs fs;
  interp.bind_database(&db);
  interp.bind_vfs(&fs);
  interp.run_toplevel();
  http::HttpRequest req;
  req.verb = http::Verb::kGet;
  req.path = "/t";
  req.params = std::move(params);
  req.payload_bytes = payload;
  return interp.invoke(http::Route{http::Verb::kGet, "/t"}, req).body;
}

/// Evaluates an expression via a trivial service.
json::Value eval_expr(const std::string& expr) {
  return run_service("app.get(\"/t\", function (req, res) { res.send(" + expr + "); });");
}

TEST(MiniJsLexer, RejectsBadInput) {
  EXPECT_THROW(lex("var x = 'unterminated"), LexError);
  EXPECT_THROW(lex("@"), LexError);
  EXPECT_THROW(lex("/* never closed"), LexError);
}

TEST(MiniJsLexer, CommentsAndKeywords) {
  const auto tokens = lex("// line\nvar x; /* block */ let y; const z;");
  int var_count = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kVar) ++var_count;
  }
  EXPECT_EQ(var_count, 3);  // var/let/const all map to kVar
}

TEST(MiniJsParser, RejectsMalformed) {
  EXPECT_THROW(parse_program("var = 3;"), ParseError);
  EXPECT_THROW(parse_program("if (x {"), ParseError);
  EXPECT_THROW(parse_program("function () {}"), ParseError);  // decl needs name
  EXPECT_THROW(parse_program("1 = 2;"), ParseError);          // bad assign target
}

TEST(MiniJsParser, StatementIdsAreUniqueAndDense) {
  Program prog = parse_program("var a = 1; function f(x) { return x; } if (a) { f(a); }");
  std::set<int> ids;
  visit_statements(prog, [&](const StmtPtr& s) { ids.insert(s->id); });
  EXPECT_EQ(static_cast<int>(ids.size()), prog.next_stmt_id - 1);
}

TEST(MiniJsInterp, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval_expr("1 + 2 * 3").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(eval_expr("(1 + 2) * 3").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(eval_expr("10 % 3").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(eval_expr("-4 + 1").as_number(), -3.0);
  EXPECT_DOUBLE_EQ(eval_expr("7 / 2").as_number(), 3.5);
}

TEST(MiniJsInterp, StringConcatAndComparison) {
  EXPECT_EQ(eval_expr("\"a\" + \"b\" + 3").as_string(), "ab3");
  EXPECT_EQ(eval_expr("\"a\" < \"b\"").as_bool(), true);
  EXPECT_EQ(eval_expr("\"abc\" == \"abc\"").as_bool(), true);
}

TEST(MiniJsInterp, LogicShortCircuits) {
  // RHS would throw if evaluated.
  EXPECT_EQ(eval_expr("false && missingVar").as_bool(), false);
  EXPECT_EQ(eval_expr("true || missingVar").as_bool(), true);
  EXPECT_EQ(eval_expr("!0").as_bool(), true);
  EXPECT_EQ(eval_expr("1 ? \"y\" : \"n\"").as_string(), "y");
}

TEST(MiniJsInterp, ControlFlow) {
  const json::Value v = run_service(R"JS(
    app.get("/t", function (req, res) {
      var total = 0;
      for (var i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i > 7) { break; }
        total = total + i;
      }
      var w = 0;
      while (w < 3) { w = w + 1; }
      res.send({ total: total, w: w });
    });
  )JS");
  EXPECT_DOUBLE_EQ(v["total"].as_number(), 1 + 3 + 5 + 7);
  EXPECT_DOUBLE_EQ(v["w"].as_number(), 3);
}

TEST(MiniJsInterp, FunctionsAndClosures) {
  const json::Value v = run_service(R"JS(
    function makeCounter() {
      var n = 0;
      return function () { n = n + 1; return n; };
    }
    var c = makeCounter();
    app.get("/t", function (req, res) {
      c(); c();
      res.send({ n: c() });
    });
  )JS");
  EXPECT_DOUBLE_EQ(v["n"].as_number(), 3);
}

TEST(MiniJsInterp, ThrowAndCatch) {
  const json::Value v = run_service(R"JS(
    app.get("/t", function (req, res) {
      var caught = "";
      try {
        throw "boom";
      } catch (e) {
        caught = e;
      }
      res.send({ caught: caught });
    });
  )JS");
  EXPECT_EQ(v["caught"].as_string(), "boom");
}

TEST(MiniJsInterp, UncaughtThrowSurfacesAsJsError) {
  Interpreter interp(parse_program(
      "app.get(\"/t\", function (req, res) { throw \"bad\"; });"));
  interp.run_toplevel();
  http::HttpRequest req;
  req.path = "/t";
  EXPECT_THROW(interp.invoke(http::Route{http::Verb::kGet, "/t"}, req), JsError);
}

TEST(MiniJsInterp, MissingResSendIsAnError) {
  Interpreter interp(parse_program("app.get(\"/t\", function (req, res) { var x = 1; });"));
  interp.run_toplevel();
  http::HttpRequest req;
  req.path = "/t";
  EXPECT_THROW(interp.invoke(http::Route{http::Verb::kGet, "/t"}, req), JsError);
}

TEST(MiniJsInterp, ArraysAndMethods) {
  const json::Value v = run_service(R"JS(
    app.get("/t", function (req, res) {
      var a = [3, 1, 2];
      a.push(4);
      var doubled = a.map(function (x) { return x * 2; });
      var big = a.filter(function (x) { return x >= 2; });
      res.send({
        len: a.length, joined: a.join("-"), idx: a.indexOf(2),
        doubled: doubled, big: big, slice: a.slice(1, 3), popped: a.pop()
      });
    });
  )JS");
  EXPECT_DOUBLE_EQ(v["len"].as_number(), 4);
  EXPECT_EQ(v["joined"].as_string(), "3-1-2-4");
  EXPECT_DOUBLE_EQ(v["idx"].as_number(), 2);
  EXPECT_EQ(v["doubled"].dump(), "[6,2,4,8]");
  EXPECT_EQ(v["big"].dump(), "[3,2,4]");
  EXPECT_EQ(v["slice"].dump(), "[1,2]");
  EXPECT_DOUBLE_EQ(v["popped"].as_number(), 4);
}

TEST(MiniJsInterp, StringMethods) {
  const json::Value v = run_service(R"JS(
    app.get("/t", function (req, res) {
      var s = " Hello World ";
      res.send({
        trim: s.trim(), up: s.trim().toUpperCase(), low: s.trim().toLowerCase(),
        parts: s.trim().split(" "), sub: s.trim().substring(0, 5),
        has: s.includes("World"), starts: s.trim().startsWith("Hello"),
        code: "A".charCodeAt(0)
      });
    });
  )JS");
  EXPECT_EQ(v["trim"].as_string(), "Hello World");
  EXPECT_EQ(v["up"].as_string(), "HELLO WORLD");
  EXPECT_EQ(v["parts"].dump(), R"(["Hello","World"])");
  EXPECT_EQ(v["sub"].as_string(), "Hello");
  EXPECT_TRUE(v["has"].as_bool());
  EXPECT_TRUE(v["starts"].as_bool());
  EXPECT_DOUBLE_EQ(v["code"].as_number(), 65);
}

TEST(MiniJsInterp, ObjectsAndIndexing) {
  const json::Value v = run_service(R"JS(
    app.get("/t", function (req, res) {
      var o = { a: 1, nested: { b: 2 } };
      o.c = 3;
      o["d"] = 4;
      o.nested.b = o.nested.b + 10;
      res.send({ o: o, keys: keys(o), missing: o.zzz });
    });
  )JS");
  EXPECT_DOUBLE_EQ(v["o"]["c"].as_number(), 3);
  EXPECT_DOUBLE_EQ(v["o"]["d"].as_number(), 4);
  EXPECT_DOUBLE_EQ(v["o"]["nested"]["b"].as_number(), 12);
  EXPECT_EQ(v["keys"].dump(), R"(["a","nested","c","d"])");
  EXPECT_TRUE(v["missing"].is_null());
}

TEST(MiniJsInterp, IncrementDecrementDesugar) {
  const json::Value v = run_service(R"JS(
    app.get("/t", function (req, res) {
      var x = 5;
      x++;
      ++x;
      x--;
      var y = 0;
      for (var i = 0; i < 3; i++) { y += 2; }
      y -= 1;
      res.send({ x: x, y: y });
    });
  )JS");
  EXPECT_DOUBLE_EQ(v["x"].as_number(), 6);
  EXPECT_DOUBLE_EQ(v["y"].as_number(), 5);
}

TEST(MiniJsInterp, BuiltinsJsonMathLen) {
  const json::Value v = run_service(R"JS(
    app.get("/t", function (req, res) {
      var obj = JSON.parse("{\"k\": [1, 2]}");
      res.send({
        str: JSON.stringify({ a: 1 }),
        k0: obj.k[0],
        fl: Math.floor(2.7), ce: Math.ceil(2.1), mx: Math.max(1, 5, 3),
        mn: Math.min(4, 2), pw: Math.pow(2, 10), ab: Math.abs(-3),
        ln: len([1, 2, 3]), s: str(42), n: num("3.5"), pi: parseInt("7.9")
      });
    });
  )JS");
  EXPECT_EQ(v["str"].as_string(), "{\"a\":1}");
  EXPECT_DOUBLE_EQ(v["k0"].as_number(), 1);
  EXPECT_DOUBLE_EQ(v["fl"].as_number(), 2);
  EXPECT_DOUBLE_EQ(v["ce"].as_number(), 3);
  EXPECT_DOUBLE_EQ(v["mx"].as_number(), 5);
  EXPECT_DOUBLE_EQ(v["mn"].as_number(), 2);
  EXPECT_DOUBLE_EQ(v["pw"].as_number(), 1024);
  EXPECT_DOUBLE_EQ(v["ab"].as_number(), 3);
  EXPECT_DOUBLE_EQ(v["ln"].as_number(), 3);
  EXPECT_EQ(v["s"].as_string(), "42");
  EXPECT_DOUBLE_EQ(v["n"].as_number(), 3.5);
  EXPECT_DOUBLE_EQ(v["pi"].as_number(), 7);
}

TEST(MiniJsInterp, BlobsCarrySizeAndFingerprint) {
  Interpreter interp(parse_program(R"JS(
    app.post("/b", function (req, res) {
      var img = req.payload;
      res.send({ size: img.size, h1: blobHash(img, "m"), h2: blobHash(img, "m") });
    });
  )JS"));
  interp.run_toplevel();
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/b";
  req.payload_bytes = 12345;
  const auto resp = interp.invoke(http::Route{http::Verb::kPost, "/b"}, req);
  EXPECT_DOUBLE_EQ(resp.body["size"].as_number(), 12345);
  EXPECT_EQ(resp.body["h1"], resp.body["h2"]);  // deterministic

  http::HttpRequest req2 = req;
  req2.payload_bytes = 54321;
  const auto resp2 = interp.invoke(http::Route{http::Verb::kPost, "/b"}, req2);
  EXPECT_FALSE(resp.body["h1"] == resp2.body["h1"]);  // input-dependent
}

TEST(MiniJsInterp, BlobsInResponseBecomePayloadBytes) {
  Interpreter interp(parse_program(R"JS(
    app.get("/t", function (req, res) {
      res.send({ thumb: blob(2048, 7), note: "ok" });
    });
  )JS"));
  interp.run_toplevel();
  http::HttpRequest req;
  req.path = "/t";
  const auto resp = interp.invoke(http::Route{http::Verb::kGet, "/t"}, req);
  EXPECT_EQ(resp.payload_bytes, 2048u);
  EXPECT_EQ(resp.body["note"].as_string(), "ok");
}

TEST(MiniJsInterp, ComputeUnitsAccrue) {
  Interpreter interp(parse_program(
      "app.get(\"/t\", function (req, res) { compute(25); compute(17); res.send({ok:1}); });"));
  interp.run_toplevel();
  http::HttpRequest req;
  req.path = "/t";
  interp.invoke(http::Route{http::Verb::kGet, "/t"}, req);
  EXPECT_DOUBLE_EQ(interp.drain_compute_units(), 42.0);
  EXPECT_DOUBLE_EQ(interp.drain_compute_units(), 0.0);
}

TEST(MiniJsInterp, StepLimitStopsRunawayLoops) {
  InterpreterConfig cfg;
  cfg.max_steps = 10000;
  Interpreter interp(parse_program(
      "app.get(\"/t\", function (req, res) { while (true) { var x = 1; } });"), cfg);
  interp.run_toplevel();
  http::HttpRequest req;
  req.path = "/t";
  EXPECT_THROW(interp.invoke(http::Route{http::Verb::kGet, "/t"}, req), JsError);
}

TEST(MiniJsInterp, UndefinedVariableThrows) {
  Interpreter interp(parse_program("var x = ghost + 1;"));
  EXPECT_THROW(interp.run_toplevel(), JsError);
}

TEST(MiniJsInterp, AssignToUndeclaredThrows) {
  Interpreter interp(parse_program("typo = 3;"));
  EXPECT_THROW(interp.run_toplevel(), JsError);
}

TEST(MiniJsInterp, RoutesRegisteredForAllVerbs) {
  Interpreter interp(parse_program(R"JS(
    app.get("/a", function (req, res) { res.send(1); });
    app.post("/a", function (req, res) { res.send(2); });
    app.put("/b", function (req, res) { res.send(3); });
    app.delete("/c", function (req, res) { res.send(4); });
  )JS"));
  interp.run_toplevel();
  EXPECT_EQ(interp.routes().size(), 4u);
  EXPECT_TRUE(interp.has_route({http::Verb::kDelete, "/c"}));
  EXPECT_FALSE(interp.has_route({http::Verb::kGet, "/c"}));
}

TEST(MiniJsInterp, UnknownRouteGives404) {
  Interpreter interp(parse_program("var x = 1;"));
  interp.run_toplevel();
  http::HttpRequest req;
  req.path = "/none";
  EXPECT_EQ(interp.invoke(http::Route{http::Verb::kGet, "/none"}, req).status, 404);
}

TEST(MiniJsInterp, MathRandomIsSeededDeterministic) {
  auto run = [] {
    InterpreterConfig cfg;
    cfg.rng_seed = 99;
    Interpreter interp(parse_program(
        "app.get(\"/t\", function (req, res) { res.send({ r: Math.random() }); });"), cfg);
    interp.run_toplevel();
    http::HttpRequest req;
    req.path = "/t";
    return interp.invoke(http::Route{http::Verb::kGet, "/t"}, req).body["r"].as_number();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(MiniJsInterp, ConsoleOutputCaptured) {
  Interpreter interp(parse_program("console.log(\"boot\", 42);"));
  interp.run_toplevel();
  ASSERT_EQ(interp.console_output().size(), 1u);
  EXPECT_EQ(interp.console_output()[0], "boot 42");
}

TEST(MiniJsPrinter, PrintParseFixpoint) {
  const std::string source = R"JS(
    var g = 10;
    function f(a, b) {
      if (a > b) { return a - b; } else { return b - a; }
    }
    app.get("/t", function (req, res) {
      var acc = [];
      for (var i = 0; i < g; i = i + 1) {
        acc.push(f(i, 5));
      }
      res.send({ acc: acc, flag: g > 5 ? "hi" : "lo" });
    });
  )JS";
  const std::string printed1 = print_program(parse_program(source));
  const std::string printed2 = print_program(parse_program(printed1));
  EXPECT_EQ(printed1, printed2);
}

TEST(MiniJsAst, CloneIsDeep) {
  Program prog = parse_program("var a = { k: [1, 2] };");
  Program copy = prog.clone();
  copy.body[0]->name = "changed";
  copy.body[0]->expr->entries[0].second->args[0]->number = 99;
  EXPECT_EQ(prog.body[0]->name, "a");
  EXPECT_DOUBLE_EQ(prog.body[0]->expr->entries[0].second->args[0]->number, 1.0);
}

TEST(MiniJsAst, RenumberAndFind) {
  Program prog = parse_program("var a = 1; var b = 2;");
  renumber_statements(prog, 100);
  EXPECT_EQ(prog.body[0]->id, 100);
  EXPECT_EQ(prog.body[1]->id, 101);
  EXPECT_EQ(find_statement(prog, 101)->name, "b");
  EXPECT_EQ(find_statement(prog, 999), nullptr);
}

TEST(MiniJsValue, DeepCopyDecouplesContainers) {
  auto arr = std::make_shared<JsArray>();
  arr->push_back(JsValue(1.0));
  JsValue original{arr};
  JsValue copy = original.deep_copy();
  copy.as_array()->push_back(JsValue(2.0));
  EXPECT_EQ(original.as_array()->size(), 1u);
}

TEST(MiniJsValue, EqualsIsStructural) {
  JsValue a = JsValue::from_json(json::parse(R"({"x":[1,{"y":2}]})"));
  JsValue b = JsValue::from_json(json::parse(R"({"x":[1,{"y":2}]})"));
  JsValue c = JsValue::from_json(json::parse(R"({"x":[1,{"y":3}]})"));
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
}

TEST(MiniJsValue, JsonRoundTripWithBlob) {
  Blob blob{4096, 777};
  auto obj = std::make_shared<JsObject>();
  obj->set("img", JsValue(blob));
  obj->set("n", JsValue(1.5));
  const JsValue v{obj};
  const JsValue back = JsValue::from_json(v.to_json());
  EXPECT_TRUE(back.as_object()->get("img").is_blob());
  EXPECT_EQ(back.as_object()->get("img").as_blob().size, 4096u);
  EXPECT_EQ(back.as_object()->get("img").as_blob().fingerprint, 777u);
}

TEST(MiniJsValue, WireSizeCountsBlobPayload) {
  auto obj = std::make_shared<JsObject>();
  obj->set("img", JsValue(Blob{1 << 20, 1}));
  const JsValue v{obj};
  EXPECT_GT(v.wire_size(), std::uint64_t{1} << 20);
}

}  // namespace
}  // namespace edgstr::minijs
// NOTE: appended suite — interpreter resource guards.
namespace edgstr::minijs {
namespace {

TEST(MiniJsInterp, RecursionDepthGuard) {
  InterpreterConfig cfg;
  cfg.max_call_depth = 64;
  Interpreter interp(parse_program(R"JS(
    function spiral(n) { return spiral(n + 1); }
    app.get("/t", function (req, res) { res.send({ v: spiral(0) }); });
  )JS"), cfg);
  interp.run_toplevel();
  http::HttpRequest req;
  req.path = "/t";
  try {
    interp.invoke(http::Route{http::Verb::kGet, "/t"}, req);
    FAIL() << "expected JsError";
  } catch (const JsError& err) {
    EXPECT_NE(std::string(err.what()).find("call depth"), std::string::npos);
  }
}

TEST(MiniJsInterp, BoundedRecursionStillWorks) {
  InterpreterConfig cfg;
  cfg.max_call_depth = 64;
  Interpreter interp(parse_program(R"JS(
    function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); }
    app.get("/t", function (req, res) { res.send({ v: fact(10) }); });
  )JS"), cfg);
  interp.run_toplevel();
  http::HttpRequest req;
  req.path = "/t";
  const auto resp = interp.invoke(http::Route{http::Verb::kGet, "/t"}, req);
  EXPECT_DOUBLE_EQ(resp.body["v"].as_number(), 3628800.0);
}

TEST(MiniJsInterp, DepthResetsAfterGuardTrips) {
  // A failed (too-deep) invocation must not poison the next one.
  InterpreterConfig cfg;
  cfg.max_call_depth = 16;
  Interpreter interp(parse_program(R"JS(
    function deep(n) { return n == 0 ? 0 : deep(n - 1); }
    app.get("/deep", function (req, res) { res.send({ v: deep(req.params.n) }); });
  )JS"), cfg);
  interp.run_toplevel();
  http::HttpRequest bad;
  bad.path = "/deep";
  bad.params = json::Value::object({{"n", 1000}});
  EXPECT_THROW(interp.invoke(http::Route{http::Verb::kGet, "/deep"}, bad), JsError);
  http::HttpRequest ok;
  ok.path = "/deep";
  ok.params = json::Value::object({{"n", 5}});
  EXPECT_DOUBLE_EQ(
      interp.invoke(http::Route{http::Verb::kGet, "/deep"}, ok).body["v"].as_number(), 0.0);
}

TEST(MiniJsBuiltins, PadBuildsExactSizes) {
  const json::Value v = run_service(R"JS(
    app.get("/t", function (req, res) {
      var exact = pad("abc", 7);
      res.send({ len: exact.length, text: exact, big: pad("x", 1000).length });
    });
  )JS");
  EXPECT_DOUBLE_EQ(v["len"].as_number(), 7.0);
  EXPECT_EQ(v["text"].as_string(), "abcabca");
  EXPECT_DOUBLE_EQ(v["big"].as_number(), 1000.0);
}

TEST(MiniJsBuiltins, PadRejectsEmptyPattern) {
  Interpreter interp(parse_program("var x = pad(\"\", 10);"));
  EXPECT_THROW(interp.run_toplevel(), JsError);
}

}  // namespace
}  // namespace edgstr::minijs
// NOTE: appended suite — printer coverage for every statement kind.
namespace edgstr::minijs {
namespace {

TEST(MiniJsPrinter, AllStatementKindsRoundTrip) {
  const std::string source = R"JS(
    var g;
    var h = null;
    function f(a) {
      try {
        if (a > 0) {
          throw "positive";
        } else {
          while (a < 0) {
            a = a + 1;
            if (a == -1) { break; }
            if (a == -2) { continue; }
          }
        }
      } catch (e) {
        return e;
      }
      return -a;
    }
    app.get("/t", function (req, res) {
      var arr = [1, { k: "v" }, [2, 3]];
      var t = req.params.x ? f(1) : f(-3);
      res.send({ t: t, neg: -arr[0], not: !false });
    });
  )JS";
  const std::string printed = print_program(parse_program(source));
  // Fixpoint: printing the reparse reproduces the same text.
  EXPECT_EQ(print_program(parse_program(printed)), printed);
  // And the printed program still runs identically.
  const json::Value direct = run_service(source, json::Value::object({{"x", 1}}));
  const json::Value reprinted = run_service(printed, json::Value::object({{"x", 1}}));
  EXPECT_EQ(direct, reprinted);
}

}  // namespace
}  // namespace edgstr::minijs
