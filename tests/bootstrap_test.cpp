// Snapshot-shipped cold-start bootstrap: consistent per-doc snapshots
// (cut/install equivalence for every doc type), the kSnapshot wire kind
// (roundtrip + hostile inputs), stale-snapshot rejection, and the
// deployment-level claim that a snapshot+tail rejoin reaches the exact
// same converged state as full op replay — on every topology, and across
// mid-bootstrap link loss.
#include <gtest/gtest.h>

#include <string>

#include "apps/app.h"
#include "crdt/files.h"
#include "crdt/json_doc.h"
#include "crdt/snapshot.h"
#include "crdt/table.h"
#include "crdt/wire.h"
#include "edgstr/deployment.h"
#include "edgstr/pipeline.h"
#include "runtime/replica_state.h"
#include "runtime/service_runtime.h"

namespace edgstr::core {
namespace {

// ------------------------------------------------- doc-level cut/install --

TEST(SnapshotCutInstallTest, JsonDocSnapshotReproducesStateAndVersion) {
  crdt::CrdtJson a("a"), b("b");
  const json::Value base = json::Value::object({{"count", 0}});
  a.initialize(base);
  b.initialize(base);
  for (int i = 1; i <= 20; ++i) a.set("count", json::Value(double(i)));
  a.set("mode", json::Value("live"));

  const crdt::Snapshot snap = a.cut_snapshot();
  EXPECT_EQ(snap.covered, a.version());
  b.install_snapshot(snap);
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(b.version(), snap.covered);
  EXPECT_EQ(*b.get("count"), json::Value(20.0));

  // The installer resumes cleanly past the snapshot: later ops from the
  // cutter apply as a plain delta.
  a.set("count", json::Value(21.0));
  EXPECT_EQ(b.applyChanges(a.getChanges(b.version())), 1u);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(SnapshotCutInstallTest, TableSnapshotReproducesRowsAndIdentities) {
  sqldb::Database seed;
  seed.execute("CREATE TABLE t (k, v)");
  seed.execute("INSERT INTO t (k, v) VALUES ('base', 0)");
  const json::Value db_snapshot = seed.snapshot();

  sqldb::Database da, db_;
  crdt::CrdtTable a("a", &da), b("b", &db_);
  a.initialize(db_snapshot);
  b.initialize(db_snapshot);
  da.execute("INSERT INTO t (k, v) VALUES ('x', 1)");
  da.execute("UPDATE t SET v = 100 WHERE k = 'base'");
  da.execute("INSERT INTO t (k, v) VALUES ('y', 2)");
  da.execute("DELETE FROM t WHERE k = 'x'");
  a.record_local_mutations();

  b.install_snapshot(a.cut_snapshot());
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(db_.execute("SELECT * FROM t").rows.size(), 2u);  // base + y
  EXPECT_EQ(db_.execute("SELECT v FROM t WHERE k = 'base'").rows[0][0].as_int(), 100);

  // Row identities survive the snapshot: a later update shipped as a delta
  // must land on the same row, not fork a duplicate.
  da.execute("UPDATE t SET v = 7 WHERE k = 'y'");
  a.record_local_mutations();
  b.applyChanges(a.getChanges(b.version()));
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(db_.execute("SELECT v FROM t WHERE k = 'y'").rows[0][0].as_int(), 7);
}

TEST(SnapshotCutInstallTest, FilesSnapshotReproducesTreeState) {
  vfs::Vfs fa, fb;
  fa.write("data/log.txt", "init");
  const json::Value snap_fs = fa.snapshot();
  crdt::CrdtFiles a("a", &fa), b("b", &fb);
  a.initialize(snap_fs);
  b.initialize(snap_fs);
  fa.write("data/log.txt", "updated");
  fa.write("data/new.txt", "fresh");
  a.record_local_changes();

  b.install_snapshot(a.cut_snapshot());
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(fb.read("data/log.txt"), "updated");
  EXPECT_EQ(fb.read("data/new.txt"), "fresh");

  fa.remove("data/new.txt");
  a.record_local_changes();
  b.applyChanges(a.getChanges(b.version()));
  EXPECT_FALSE(fb.exists("data/new.txt"));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(SnapshotCutInstallTest, SnapshotShedsHistoryTheBootstrapStateDrags) {
  // The size claim behind the whole feature, in miniature: overwrite one
  // key many times and the op history dwarfs the live state. The snapshot
  // serializes the state only; bootstrap_state() carries the retained log.
  crdt::CrdtJson a("a");
  a.initialize(json::Value::object({}));
  for (int i = 0; i < 200; ++i) a.set("hot", json::Value(double(i)));
  const std::size_t snapshot_bytes = a.cut_snapshot().to_json().dump().size();
  const std::size_t bootstrap_bytes = a.bootstrap_state().dump().size();
  EXPECT_LT(snapshot_bytes * 10, bootstrap_bytes)
      << "snapshot=" << snapshot_bytes << " bootstrap=" << bootstrap_bytes;
}

// ------------------------------------------------------ kSnapshot codec --

TEST(SnapshotWireTest, RoundtripsSnapshotsAndTailOps) {
  crdt::CrdtJson a("e0");
  a.initialize(json::Value::object({}));
  a.set("k1", json::Value(1.0));
  a.set("k2", json::Value(2.0));
  const crdt::Snapshot snap = a.cut_snapshot();
  a.set("k3", json::Value(3.0));  // the tail past the cut

  crdt::SyncMessage msg;
  msg.kind = crdt::SyncKind::kSnapshot;
  msg.from = "e0";
  msg.rejoin = true;
  msg.versions["globals"] = a.version();
  msg.snapshot = json::Value::object({{"globals", snap.to_json()}});
  msg.ops["globals"] = a.getChanges(snap.covered);
  ASSERT_EQ(msg.ops["globals"].size(), 1u);

  const crdt::SyncMessage decoded = crdt::decode_message(crdt::encode_message(msg));
  EXPECT_EQ(decoded.kind, crdt::SyncKind::kSnapshot);
  EXPECT_EQ(decoded.from, "e0");
  EXPECT_TRUE(decoded.rejoin);
  EXPECT_EQ(decoded.versions, msg.versions);
  EXPECT_EQ(decoded.snapshot.dump(), msg.snapshot.dump());
  ASSERT_EQ(decoded.op_count(), 1u);
  EXPECT_EQ(decoded.ops.at("globals")[0].seq, msg.ops.at("globals")[0].seq);
  EXPECT_EQ(decoded.ops.at("globals")[0].payload.dump(), msg.ops.at("globals")[0].payload.dump());

  // The verified snapshot reinstalls from the decoded bytes.
  crdt::CrdtJson b("e1");
  b.initialize(json::Value::object({}));
  b.install_snapshot(crdt::Snapshot::from_json(decoded.snapshot["globals"]));
  b.applyChanges(decoded.ops.at("globals"));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(SnapshotWireTest, HostileWireIsRejectedBeforeApply) {
  crdt::CrdtJson a("e0");
  a.initialize(json::Value::object({{"x", 1}}));
  crdt::SyncMessage msg;
  msg.kind = crdt::SyncKind::kSnapshot;
  msg.from = "e0";
  msg.versions["globals"] = a.version();
  msg.snapshot = json::Value::object({{"globals", a.cut_snapshot().to_json()}});
  const json::Value wire = crdt::encode_message(msg);

  // Kind confusion: a snapshot frame smuggling a bootstrap payload.
  json::Value confused = wire;
  confused.as_object().set("b", json::Value::object({}));
  EXPECT_THROW(crdt::decode_message(confused), crdt::WireError);

  // A snapshot message whose payload is not an object.
  json::Value scalar = wire;
  scalar.as_object().set("sn", json::Value(42.0));
  EXPECT_THROW(crdt::decode_message(scalar), crdt::WireError);

  // A per-doc entry missing its digest field: structurally rejected.
  json::Value undigested = wire;
  json::Value entry = undigested["sn"]["globals"];
  entry.as_object().erase("dig");
  undigested.as_object().set("sn", json::Value::object({{"globals", entry}}));
  EXPECT_THROW(crdt::decode_message(undigested), crdt::WireError);

  // An unknown kind tag.
  json::Value unknown = wire;
  unknown.as_object().set("k", json::Value("snapshotish"));
  EXPECT_THROW(crdt::decode_message(unknown), crdt::WireError);
}

TEST(SnapshotWireTest, TamperedContentDigestRefusesToInstall) {
  crdt::CrdtJson a("e0");
  a.initialize(json::Value::object({}));
  a.set("balance", json::Value(100.0));
  json::Value encoded = a.cut_snapshot().to_json();
  // Flip the state after the digest was stamped: a torn disk record or a
  // tampered wire frame. from_json must refuse it outright.
  json::Value state = encoded["state"];
  encoded.as_object().set("state", json::Value::object({{"balance", json::Value(1e6)}}));
  EXPECT_THROW(crdt::Snapshot::from_json(encoded), std::runtime_error);
  // Restoring the genuine state verifies again.
  encoded.as_object().set("state", state);
  EXPECT_NO_THROW(crdt::Snapshot::from_json(encoded));
}

// ------------------------------------------------- replica-level install --

const char* kCounterServer = R"JS(
var count = 0;
app.post("/bump", function (req, res) {
  count = count + req.params.by;
  res.send({ count: count });
});
)JS";

http::HttpRequest bump(double by) {
  http::HttpRequest req;
  req.verb = http::Verb::kPost;
  req.path = "/bump";
  req.params = json::Value::object({{"by", by}});
  return req;
}

TEST(SnapshotInstallTest, StaleSnapshotIsSkippedNotInstalled) {
  runtime::ServiceRuntime svc_a(kCounterServer), svc_b(kCounterServer);
  runtime::ReplicaState a("a", &svc_a, {}, {"*"});
  runtime::ReplicaState b("b", &svc_b, {}, {"*"});
  a.attach_existing();
  b.initialize_from_snapshot(svc_a.capture_state());

  svc_a.handle(bump(1));
  svc_a.handle(bump(2));
  a.record_local();

  // b is still at the baseline; its snapshot is strictly behind what a
  // holds. Installing it would silently destroy a's (possibly durable,
  // just-recovered) ops — the guard must skip the stale units and leave
  // a's state untouched (skip, not throw: a multi-unit message from a
  // legitimate responder can be stale on one unit and needed on another).
  const std::string before = a.state_digest();
  const crdt::SyncMessage stale = b.collect_snapshot_bootstrap();
  a.install_snapshot_message(stale);
  EXPECT_EQ(a.state_digest(), before);

  // The forward direction installs cleanly and converges the pair.
  const crdt::SyncMessage fresh = a.collect_snapshot_bootstrap();
  b.install_snapshot_message(fresh);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

// ------------------------------------------- deployment-level equivalence --

class BootstrapFixture : public ::testing::Test {
 protected:
  BootstrapFixture() {
    const apps::SubjectApp& app = apps::sensor_hub();
    const http::TrafficRecorder traffic = record_traffic(app.server_source, app.workload);
    result_ = Pipeline().transform(app.name, app.server_source, traffic);
    EXPECT_TRUE(result_.ok) << result_.error;
  }

  http::HttpRequest ingest(const std::string& sensor, double value) {
    http::HttpRequest req;
    req.verb = http::Verb::kPost;
    req.path = "/ingest";
    req.params = json::Value::object(
        {{"sensor", sensor}, {"values", json::Value::array({value})}});
    return req;
  }

  http::HttpRequest summary(const std::string& sensor) {
    http::HttpRequest req;
    req.verb = http::Verb::kGet;
    req.path = "/summary";
    req.params = json::Value::object({{"sensor", sensor}});
    return req;
  }

  struct RejoinOutcome {
    std::string edge_digest;
    std::string cloud_digest;
    double snapshot_rejoins = 0;
    double replay_rejoins = 0;  // delta + full-bootstrap rejoins
  };

  /// One compaction-forced rejoin: converge, compact every log past the
  /// reborn edge's checkpoint, crash edge 1, write more, restart, converge.
  RejoinOutcome run_rejoin(SyncTopology topology, std::uint64_t snapshot_ops) {
    DeploymentConfig config;
    config.start_sync = false;
    config.topology = topology;
    config.edge_devices = {cluster::DeviceProfile::rpi4(), cluster::DeviceProfile::rpi4()};
    config.bootstrap_snapshot_ops = snapshot_ops;
    ThreeTierDeployment three(result_, config);

    EXPECT_TRUE(three.request_sync(ingest("alpha", 1), 0).ok());
    EXPECT_TRUE(three.request_sync(ingest("beta", 2), 1).ok());
    EXPECT_GE(three.sync().sync_until_converged(16), 1);
    three.sync().compact_logs();
    three.crash_edge(1);
    EXPECT_TRUE(three.request_sync(ingest("gamma", 3), 0).ok());
    three.restart_edge(1);
    EXPECT_GE(three.sync().sync_until_converged(32), 1);
    EXPECT_TRUE(three.edge_serving(1));
    EXPECT_TRUE(three.converged());
    // The rejoined edge serves the full post-crash history.
    EXPECT_DOUBLE_EQ(three.request_sync(summary("gamma"), 1).body["count"].as_number(), 1.0);

    RejoinOutcome out;
    out.edge_digest = three.edge_state(1).state_digest();
    out.cloud_digest = three.cloud_state().state_digest();
    util::MetricsRegistry& m = three.replication().metrics();
    out.snapshot_rejoins = m.value("sync.rejoins.snapshot");
    out.replay_rejoins = m.value("sync.rejoins.delta") + m.value("sync.rejoins.bootstrap");
    return out;
  }

  TransformResult result_;
};

TEST_F(BootstrapFixture, SnapshotAndReplayRejoinsConvergeIdenticallyOnEveryTopology) {
  for (const SyncTopology topology :
       {SyncTopology::kStar, SyncTopology::kStarEdgeMesh, SyncTopology::kHierarchy}) {
    // threshold 1: any gap ships snapshot+tail; threshold 0: replay only.
    const RejoinOutcome snapshot = run_rejoin(topology, 1);
    const RejoinOutcome replay = run_rejoin(topology, 0);

    EXPECT_GE(snapshot.snapshot_rejoins, 1.0) << "topology " << int(topology);
    EXPECT_EQ(replay.snapshot_rejoins, 0.0) << "topology " << int(topology);
    EXPECT_GE(replay.replay_rejoins, 1.0) << "topology " << int(topology);

    // The whole point: both rejoin paths land on the same converged state.
    EXPECT_EQ(snapshot.edge_digest, replay.edge_digest) << "topology " << int(topology);
    EXPECT_EQ(snapshot.cloud_digest, replay.cloud_digest) << "topology " << int(topology);
    EXPECT_EQ(snapshot.edge_digest, snapshot.cloud_digest) << "topology " << int(topology);
  }
}

TEST_F(BootstrapFixture, MidBootstrapLinkLossRetriesUntilTheSnapshotLands) {
  DeploymentConfig config;
  config.start_sync = false;
  config.bootstrap_snapshot_ops = 1;
  ThreeTierDeployment three(result_, config);

  EXPECT_TRUE(three.request_sync(ingest("pre", 1), 0).ok());
  EXPECT_GE(three.sync().sync_until_converged(16), 1);
  three.sync().compact_logs();
  three.crash_edge(0);
  three.restart_edge(0);

  // Cut the WAN before the first rejoin round: every snapshot offer is
  // lost in flight, and the edge must stay parked rather than serve stale.
  three.network().partition("mid-bootstrap", {edge_host(0)}, {kCloudHost});
  for (int i = 0; i < 4; ++i) {
    three.sync().tick();
    three.network().clock().run();
  }
  EXPECT_FALSE(three.edge_serving(0));

  three.network().heal("mid-bootstrap");
  EXPECT_GE(three.sync().sync_until_converged(32), 1);
  EXPECT_TRUE(three.edge_serving(0));
  EXPECT_EQ(three.edge_state(0).state_digest(), three.cloud_state().state_digest());
  EXPECT_GE(three.replication().metrics().value("sync.rejoins.snapshot"), 1.0);
  EXPECT_DOUBLE_EQ(three.request_sync(summary("pre"), 0).body["count"].as_number(), 1.0);
}

TEST_F(BootstrapFixture, BootstrapMetricsTrackTheRecovery) {
  DeploymentConfig config;
  config.start_sync = false;
  config.bootstrap_snapshot_ops = 1;
  ThreeTierDeployment three(result_, config);

  EXPECT_TRUE(three.request_sync(ingest("m", 5), 0).ok());
  EXPECT_GE(three.sync().sync_until_converged(16), 1);
  three.sync().compact_logs();
  three.crash_edge(0);
  three.restart_edge(0);
  EXPECT_GE(three.sync().sync_until_converged(32), 1);

  util::MetricsRegistry& m = three.replication().metrics();
  EXPECT_GE(m.value("sync.rejoins.snapshot"), 1.0);
  EXPECT_GT(m.value("bootstrap.snapshot.bytes"), 0.0);
}

}  // namespace
}  // namespace edgstr::core
