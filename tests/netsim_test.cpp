#include <gtest/gtest.h>

#include "netsim/clock.h"
#include "netsim/network.h"

namespace edgstr::netsim {
namespace {

TEST(SimClockTest, EventsFireInTimeOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.schedule(3.0, [&] { order.push_back(3); });
  clock.schedule(1.0, [&] { order.push_back(1); });
  clock.schedule(2.0, [&] { order.push_back(2); });
  clock.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(SimClockTest, TiesFireFifo) {
  SimClock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.schedule(1.0, [&, i] { order.push_back(i); });
  }
  clock.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClockTest, NegativeDelayClampsToNow) {
  SimClock clock;
  clock.schedule(5.0, [] {});
  clock.run();
  bool fired = false;
  clock.schedule(-1.0, [&] { fired = true; });
  clock.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(SimClockTest, EventsCanScheduleEvents) {
  SimClock clock;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 4) clock.schedule(1.0, chain);
  };
  clock.schedule(1.0, chain);
  clock.run();
  EXPECT_EQ(count, 4);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
}

TEST(SimClockTest, RunUntilStopsAtDeadline) {
  SimClock clock;
  int fired = 0;
  clock.schedule(1.0, [&] { ++fired; });
  clock.schedule(10.0, [&] { ++fired; });
  clock.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  EXPECT_EQ(clock.pending(), 1u);
}

TEST(SimClockTest, RunUntilRejectsPastDeadline) {
  SimClock clock;
  clock.schedule(2.0, [] {});
  clock.run();
  EXPECT_THROW(clock.run_until(1.0), std::invalid_argument);
}

TEST(SimClockTest, StepReturnsFalseWhenEmpty) {
  SimClock clock;
  EXPECT_FALSE(clock.step());
}

TEST(LinkTest, NominalTransferTimeArithmetic) {
  SimClock clock;
  LinkConfig cfg;
  cfg.latency_s = 0.1;
  cfg.bandwidth_bps = 1000;  // bytes/s
  Link link(clock, cfg, util::Rng(1));
  EXPECT_DOUBLE_EQ(link.nominal_transfer_time(500), 0.5 + 0.1);
}

TEST(LinkTest, DeliveryIncludesSerializationAndLatency) {
  SimClock clock;
  LinkConfig cfg;
  cfg.latency_s = 0.05;
  cfg.bandwidth_bps = 1000;
  cfg.jitter_s = 0;
  Link link(clock, cfg, util::Rng(1));
  double delivered_at = -1;
  link.send(100, [&] { delivered_at = clock.now(); });
  clock.run();
  EXPECT_NEAR(delivered_at, 0.1 + 0.05, 1e-12);
}

TEST(LinkTest, FifoQueueingDelaysSecondMessage) {
  SimClock clock;
  LinkConfig cfg;
  cfg.latency_s = 0.0;
  cfg.bandwidth_bps = 100;  // 1s per 100 bytes
  cfg.jitter_s = 0;
  Link link(clock, cfg, util::Rng(1));
  double first = -1, second = -1;
  link.send(100, [&] { first = clock.now(); });
  link.send(100, [&] { second = clock.now(); });
  clock.run();
  EXPECT_NEAR(first, 1.0, 1e-9);
  EXPECT_NEAR(second, 2.0, 1e-9);  // had to wait for the first
}

TEST(LinkTest, StatsAccumulate) {
  SimClock clock;
  Link link(clock, LinkConfig::lan(), util::Rng(1));
  link.send(100, [] {});
  link.send(200, [] {});
  clock.run();
  EXPECT_EQ(link.stats().messages_sent, 2u);
  EXPECT_EQ(link.stats().bytes_sent, 300u);
  EXPECT_GT(link.stats().busy_time_s, 0.0);
}

TEST(LinkTest, LossDropsMessages) {
  SimClock clock;
  LinkConfig cfg = LinkConfig::lan();
  cfg.loss_probability = 1.0;
  Link link(clock, cfg, util::Rng(1));
  bool delivered = false;
  const SimTime t = link.send(10, [&] { delivered = true; });
  clock.run();
  EXPECT_LT(t, 0);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(link.stats().messages_dropped, 1u);
}

TEST(LinkTest, PresetsAreOrderedBySpeed) {
  EXPECT_GE(LinkConfig::lan().bandwidth_bps, LinkConfig::fast_wan().bandwidth_bps);
  EXPECT_GT(LinkConfig::fast_wan().bandwidth_bps, LinkConfig::limited_wan().bandwidth_bps);
  EXPECT_LT(LinkConfig::lan().latency_s, LinkConfig::fast_wan().latency_s);
  // §II-A: cross-continent RTT an order of magnitude above same-continent.
  EXPECT_GE(LinkConfig::intercontinental_wan().latency_s / LinkConfig::fast_wan().latency_s, 8.0);
}

TEST(NetworkTest, ConnectAndSendBetweenHosts) {
  Network net(1);
  net.connect("a", "b", LinkConfig::lan());
  EXPECT_TRUE(net.connected("a", "b"));
  EXPECT_TRUE(net.connected("b", "a"));
  EXPECT_FALSE(net.connected("a", "c"));
  bool delivered = false;
  net.send("a", "b", 100, [&] { delivered = true; });
  net.clock().run();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, DirectionsHaveIndependentQueues) {
  Network net(1);
  LinkConfig cfg;
  cfg.latency_s = 0;
  cfg.bandwidth_bps = 100;
  cfg.jitter_s = 0;
  net.connect("a", "b", cfg);
  double ab = -1, ba = -1;
  net.send("a", "b", 100, [&] { ab = net.clock().now(); });
  net.send("b", "a", 100, [&] { ba = net.clock().now(); });
  net.clock().run();
  // No cross-direction queueing: both take ~1s.
  EXPECT_NEAR(ab, 1.0, 1e-9);
  EXPECT_NEAR(ba, 1.0, 1e-9);
}

TEST(NetworkTest, UnknownChannelThrows) {
  Network net(1);
  EXPECT_THROW(net.channel("x", "y"), std::out_of_range);
  EXPECT_THROW(net.send("x", "y", 1, [] {}), std::out_of_range);
}

TEST(NetworkTest, ReconnectUpdatesConfig) {
  Network net(1);
  net.connect("a", "b", LinkConfig::lan());
  net.connect("a", "b", LinkConfig::limited_wan());
  EXPECT_EQ(net.channel("a", "b").forward().config().name, "limited-wan");
}

TEST(NetworkTest, TrafficAccounting) {
  Network net(1);
  net.connect("a", "b", LinkConfig::lan());
  net.send("a", "b", 500, [] {});
  net.send("b", "a", 250, [] {});
  net.clock().run();
  EXPECT_EQ(net.channel("a", "b").total_bytes(), 750u);
  net.reset_stats();
  EXPECT_EQ(net.channel("a", "b").total_bytes(), 0u);
}

}  // namespace
}  // namespace edgstr::netsim
